"""Serving chaos suite: saturating load plus replica faults, zero hangs.

The acceptance bar (see docs/serving.md): under injected replica-crash,
straggler, and poisoned-batch chaos at load, the server must *shed or
answer* every request — each submission reaches exactly one terminal
reply, no request hangs — while breaker-tripped replicas demote through
the healing ladder instead of dying, then recover to the full tier on
clean traffic, with the whole breaker -> degrade -> re-escalate trail
visible in the serialized trace.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import pytest

from repro import workloads
from repro.framework.faults import ServingFaultPlan, ServingFaultSpec
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer
from repro.serving import (LoadConfig, LoadGenerator, ServingConfig,
                           VirtualClock)
from repro.workloads import WORKLOAD_NAMES

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")

#: requests per scenario — enough to straddle every injected fault
REQUESTS = 24


def chaos_serve(name):
    """One serving run under the standard chaos storm: a replica crash,
    a straggling replica, and a double poisoned batch, all landing
    mid-load on a virtual clock."""
    model = workloads.create(name, config="tiny", seed=0)
    tracer = Tracer()
    server = model.serve(
        config=ServingConfig(replicas=2, default_deadline_ms=2000.0,
                             max_hedges=2, slow_batch_ms=25.0, seed=1),
        tracer=tracer, clock=VirtualClock())
    server.install_faults(ServingFaultPlan([
        ServingFaultSpec("replica_crash", replica=0, batch=1),
        ServingFaultSpec("slow_replica", replica=1,
                         latency_seconds=0.05, max_triggers=3),
        ServingFaultSpec("poisoned_batch", replica=0, max_triggers=2),
    ], seed=9))
    report = LoadGenerator(server, LoadConfig(
        requests=REQUESTS, qps=500.0, seed=4)).run()
    return model, tracer, server, report


def assert_survives_chaos(name, tmp_path):
    model, tracer, server, report = chaos_serve(name)

    # Zero hangs: every request terminates in exactly one reply, and
    # the outcome counts account for all of them.
    assert sorted(server.replies) == list(range(REQUESTS))
    assert (report.ok + report.shed + report.deadline
            + report.error) == REQUESTS

    # The chaos actually happened: the crash restarted replica 0 and
    # tripped breakers; the double poison cost replica 0 a tier.
    assert report.restarts >= 1
    assert report.breaker_opens >= 1
    assert any(e.tier == "structural"
               for e in tracer.degradation_events("tier_drop"))

    # Degrade-don't-die: clean post-storm traffic climbs every replica
    # back to the full tier (faults are exhausted by max_triggers).
    single = server.codec.split_feed(
        model.sample_feed(training=False))[0]
    for _ in range(12):
        server.submit(single, deadline_ms=0.0)
        server.drain()
        if all(r.tier == "full" for r in server.replicas):
            break
    assert [r.tier for r in server.replicas] == ["full", "full"]
    assert tracer.degradation_events("reescalate")

    # The serialized trace carries the whole breaker -> degrade ->
    # re-escalate trail next to the per-request SLO story.
    path = tmp_path / f"{name}_serving.jsonl"
    save_trace(tracer, path, metadata={"workload": name})
    loaded = load_trace(path)
    serving_kinds = {e.kind for e in loaded.serving_events()}
    assert {"reply", "hedge", "replica_restart",
            "breaker_open"} <= serving_kinds
    degradation_kinds = {e.kind for e in loaded.degradation_events()}
    assert {"tier_drop", "reescalate"} <= degradation_kinds
    replies = [e for e in loaded.serving_events() if e.kind == "reply"]
    assert len(replies) >= REQUESTS - report.shed


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_serving_survives_chaos_fast(name, tmp_path):
    assert_survives_chaos(name, tmp_path)


@pytest.mark.chaos
@pytest.mark.parametrize("name", [n for n in WORKLOAD_NAMES
                                  if n not in FAST_WORKLOADS])
def test_serving_survives_chaos_matrix(name, tmp_path):
    assert_survives_chaos(name, tmp_path)


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_chaos_serving_is_deterministic(name):
    """Two identical chaos runs produce identical event signatures."""
    _, _, first_server, first_report = chaos_serve(name)
    _, _, second_server, second_report = chaos_serve(name)
    assert tuple(e.signature() for e in first_server.events) \
        == tuple(e.signature() for e in second_server.events)
    assert first_report.to_json() == second_report.to_json()
