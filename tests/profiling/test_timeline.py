"""Tests for the EEG-style Chrome-trace timeline exporter."""

import json

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session
from repro.profiling.timeline import timeline_events, to_chrome_trace
from repro.profiling.tracer import Tracer


@pytest.fixture
def traced(fresh_graph):
    x = ops.placeholder((4, 8), name="x")
    w = ops.variable(np.zeros((8, 2), dtype=np.float32), name="w")
    loss = ops.reduce_mean(ops.square(ops.matmul(x, w)))
    train = GradientDescentOptimizer(0.1).minimize(loss)
    session = Session(fresh_graph, seed=0)
    tracer = Tracer()
    feed = {x: np.ones((4, 8), dtype=np.float32)}
    for _ in range(3):
        session.run([loss, train], feed_dict=feed, tracer=tracer)
    return tracer


class TestTimelineEvents:
    def test_event_count_matches_records(self, traced):
        events = timeline_events(traced)
        assert len(events) == len(traced.records)

    def test_events_are_sequential_within_step(self, traced):
        events = [e for e in timeline_events(traced) if e.step == 1]
        cursor = None
        for event in events:
            if cursor is not None:
                assert event.start_us >= cursor - 1e-9
            cursor = event.start_us + event.duration_us

    def test_steps_do_not_overlap(self, traced):
        events = timeline_events(traced)
        end_step0 = max(e.start_us + e.duration_us for e in events
                        if e.step == 0)
        start_step1 = min(e.start_us for e in events if e.step == 1)
        assert start_step1 >= end_step0 - 1e-6

    def test_categories_are_figure_groups(self, traced):
        events = timeline_events(traced)
        matmul_events = [e for e in events if e.op_type == "MatMul"]
        assert matmul_events
        assert all(e.category == "Matrix Operations" for e in matmul_events)


class TestChromeTrace:
    def test_valid_json_with_expected_phases(self, traced):
        blob = json.loads(to_chrome_trace(traced, process_name="toy"))
        events = blob["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(traced.records)
        assert all("ts" in e and "dur" in e for e in complete)

    def test_thread_lanes_per_step(self, traced):
        blob = json.loads(to_chrome_trace(traced))
        lanes = {e["tid"] for e in blob["traceEvents"] if e["ph"] == "X"}
        assert lanes == {0, 1, 2}

    def test_process_name_metadata(self, traced):
        blob = json.loads(to_chrome_trace(traced, process_name="speech"))
        meta = [e for e in blob["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"]
        assert meta[0]["args"]["name"] == "speech"


class TestMemoryTracking:
    def test_peak_bytes_recorded_per_step(self, traced):
        assert len(traced.step_peak_bytes) == 3
        assert all(peak > 0 for peak in traced.step_peak_bytes)
        assert traced.peak_live_bytes() == max(traced.step_peak_bytes)

    def test_session_exposes_last_peak(self, fresh_graph):
        x = ops.constant(np.ones((128, 128), dtype=np.float32))
        out = ops.reduce_sum(ops.matmul(x, x))
        session = Session(fresh_graph, seed=0)
        session.run(out)
        # At least the 64KB input and 64KB product were live at once.
        assert session.last_peak_live_bytes >= 2 * 128 * 128 * 4

    def test_peak_scales_with_tensor_size(self, fresh_graph):
        small_graph = fresh_graph
        x_small = ops.constant(np.ones((16, 16), dtype=np.float32))
        small_out = ops.matmul(x_small, x_small)
        x_big = ops.constant(np.ones((256, 256), dtype=np.float32))
        big_out = ops.matmul(x_big, x_big)
        session = Session(small_graph, seed=0)
        session.run(small_out)
        small_peak = session.last_peak_live_bytes
        session.run(big_out)
        big_peak = session.last_peak_live_bytes
        assert big_peak > 10 * small_peak
