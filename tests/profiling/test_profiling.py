"""Tests for the tracing and profiling stack."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.device_model import cpu, gpu
from repro.framework.graph import OpClass
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session
from repro.profiling import (FIGURE_GROUPS, GROUP_ORDER, OperationProfile,
                             Tracer, figure_group, shared_basis,
                             stability_report)
from repro.profiling.stability import per_step_type_seconds


def small_training_trace(fresh_graph, steps=4):
    """Trace a small dense training loop."""
    x = ops.placeholder((8, 16), name="x")
    w = ops.variable(np.zeros((16, 4), dtype=np.float32), name="w")
    loss = ops.reduce_mean(ops.square(ops.matmul(x, w)))
    train = GradientDescentOptimizer(0.1).minimize(loss)
    session = Session(fresh_graph, seed=0)
    tracer = Tracer()
    feed = np.ones((8, 16), dtype=np.float32)
    for _ in range(steps):
        session.run([loss, train], feed_dict={x: feed}, tracer=tracer)
    return tracer


class TestTaxonomy:
    def test_seven_figure_groups(self):
        assert GROUP_ORDER == ["A", "B", "C", "D", "E", "F", "G"]
        assert len(FIGURE_GROUPS) == 7

    def test_structural_classes_unmapped(self):
        assert OpClass.STATE not in FIGURE_GROUPS
        assert OpClass.CONTROL not in FIGURE_GROUPS

    def test_figure_group_of_op(self):
        matmul = ops.matmul(
            ops.constant(np.zeros((2, 2), dtype=np.float32)),
            ops.constant(np.zeros((2, 2), dtype=np.float32)))
        assert figure_group(matmul.op) == "A"
        assert figure_group(ops.constant(1.0).op) is None


class TestOperationProfile:
    def test_fractions_sum_to_one(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        total = sum(profile.fractions().values())
        assert total == pytest.approx(1.0)

    def test_fractions_sorted_descending(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        values = list(profile.fractions().values())
        assert values == sorted(values, reverse=True)

    def test_structural_ops_excluded(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        assert "Const" not in profile.seconds_by_type
        assert "Placeholder" not in profile.seconds_by_type
        assert "Variable" not in profile.seconds_by_type

    def test_modeled_profile_is_deterministic(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        a = OperationProfile.from_trace(tracer, "toy", device=cpu(1))
        b = OperationProfile.from_trace(tracer, "toy", device=cpu(1))
        assert a.seconds_by_type == b.seconds_by_type

    def test_gpu_profile_differs_from_cpu(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        cpu_profile = OperationProfile.from_trace(tracer, "toy",
                                                  device=cpu(1))
        gpu_profile = OperationProfile.from_trace(tracer, "toy",
                                                  device=gpu())
        assert cpu_profile.total_seconds != gpu_profile.total_seconds

    def test_dominance_curve_monotone_to_one(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        curve = profile.dominance_curve()
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(1.0)

    def test_types_for_coverage(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        k90 = profile.types_for_coverage(0.9)
        k50 = profile.types_for_coverage(0.5)
        assert 1 <= k50 <= k90 <= len(profile.seconds_by_type)

    def test_class_breakdown_covers_groups(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy", device=cpu(1))
        breakdown = profile.class_breakdown()
        assert set(breakdown) == set(GROUP_ORDER)
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-6)
        assert breakdown["A"] > 0.0  # matmul-dominated toy
        assert breakdown["F"] > 0.0  # optimizer present

    def test_min_type_fraction_drops_small_types(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy", device=cpu(1))
        full = sum(profile.class_breakdown(0.0).values())
        trimmed = sum(profile.class_breakdown(0.5).values())
        assert trimmed < full

    def test_vector_on_shared_basis(self, fresh_graph):
        tracer = small_training_trace(fresh_graph)
        profile = OperationProfile.from_trace(tracer, "toy")
        basis = shared_basis([profile])
        vector = profile.vector(basis)
        assert vector.shape == (len(basis),)
        assert vector.sum() == pytest.approx(1.0)
        missing = profile.vector(["NotARealOp"] + basis)
        assert missing[0] == 0.0

    def test_seconds_per_step_scales_with_steps(self, fresh_graph):
        tracer = small_training_trace(fresh_graph, steps=4)
        profile = OperationProfile.from_trace(tracer, "toy", device=cpu(1))
        per_step = profile.seconds_per_step()
        assert per_step == pytest.approx(profile.total_seconds / 4)


class TestStability:
    def test_per_step_seconds_shape(self, fresh_graph):
        tracer = small_training_trace(fresh_graph, steps=5)
        per_type = per_step_type_seconds(tracer)
        assert all(len(samples) == 5 for samples in per_type.values())

    def test_report_orders_by_weight_and_trims_warmup(self, fresh_graph):
        tracer = small_training_trace(fresh_graph, steps=6)
        stats = stability_report(tracer, warmup_steps=2, top_n=3)
        assert len(stats) <= 3
        assert all(len(s.samples) == 4 for s in stats)
        weights = [s.samples.sum() for s in stats]
        assert weights == sorted(weights, reverse=True)

    def test_stationarity_of_modeled_trace(self, fresh_graph):
        """Per-step op-type times are identical across steps when the work
        per step is identical — the limiting case of Fig. 1's claim."""
        tracer = small_training_trace(fresh_graph, steps=6)
        profile_by_step = per_step_type_seconds(tracer)
        # Use modeled times to remove measurement noise: every step of the
        # same graph does identical work.
        from repro.profiling.profile import OperationProfile
        a = OperationProfile.from_trace(tracer, device=cpu(1))
        assert a.num_steps == 6

    def test_histogram(self, fresh_graph):
        tracer = small_training_trace(fresh_graph, steps=5)
        stats = stability_report(tracer, warmup_steps=1, top_n=1)[0]
        counts, edges = stats.histogram(bins=5)
        assert counts.sum() == len(stats.samples)

    def test_drift_metric(self):
        from repro.profiling.stability import StabilityStats
        steady = StabilityStats("x", np.ones(10))
        assert steady.drift() == 0.0
        assert steady.coefficient_of_variation == 0.0
        drifting = StabilityStats("y", np.concatenate([np.ones(5),
                                                       np.full(5, 2.0)]))
        assert drifting.drift() == pytest.approx(1.0)

    def test_robust_dispersion_resists_outliers(self):
        from repro.profiling.stability import StabilityStats
        clean = np.full(20, 1.0)
        spiked = clean.copy()
        spiked[3] = 50.0  # one scheduler-preemption outlier
        clean_stats = StabilityStats("x", clean)
        spiked_stats = StabilityStats("x", spiked)
        # The raw cv explodes; the IQR-based measure barely moves.
        assert spiked_stats.coefficient_of_variation > 2.0
        assert spiked_stats.robust_dispersion < 0.1
        assert clean_stats.robust_dispersion == 0.0
        assert spiked_stats.median == pytest.approx(1.0)


class TestFrameworkOverhead:
    def test_overhead_small_for_heavy_ops(self, fresh_graph):
        """The executor's inter-op overhead must be a small fraction when
        operations are compute-heavy (the paper reports 1-2% for TF)."""
        a = ops.constant(np.ones((400, 400), dtype=np.float32))
        out = ops.matmul(ops.matmul(a, a), a)
        session = Session(fresh_graph, seed=0)
        tracer = Tracer()
        for _ in range(3):
            session.run(out, tracer=tracer)
        assert tracer.framework_overhead_fraction() < 0.2
