"""Tests for trace serialization."""

import json

import numpy as np
import pytest

from repro import workloads
from repro.framework.device_model import cpu, gpu
from repro.profiling.profile import OperationProfile
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer


@pytest.fixture(scope="module")
def traced_model():
    model = workloads.create("memnet", config="tiny", seed=0)
    tracer = Tracer()
    model.run_training(3, tracer=tracer)
    return model, tracer


class TestRoundtrip:
    def test_record_count_preserved(self, traced_model, tmp_path):
        _, tracer = traced_model
        path = tmp_path / "trace.jsonl"
        count = save_trace(tracer, path, metadata={"workload": "memnet"})
        loaded = load_trace(path)
        assert len(loaded.records) == count == len(tracer.compute_records())
        assert loaded.num_steps == 3
        assert loaded.metadata["workload"] == "memnet"

    def test_measured_profile_identical(self, traced_model, tmp_path):
        _, tracer = traced_model
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        original = OperationProfile.from_trace(tracer, "memnet")
        restored = OperationProfile.from_trace(loaded, "memnet")
        assert set(original.seconds_by_type) == set(restored.seconds_by_type)
        for op_type, seconds in original.seconds_by_type.items():
            assert restored.seconds_by_type[op_type] == \
                pytest.approx(seconds)

    def test_modeled_profile_from_saved_work(self, traced_model, tmp_path):
        """Work estimates survive the round trip, so a saved trace can be
        re-priced under any device model."""
        _, tracer = traced_model
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        for device in (cpu(1), cpu(8), gpu()):
            original = OperationProfile.from_trace(tracer, device=device)
            restored = OperationProfile.from_trace(loaded, device=device)
            assert original.total_seconds == \
                pytest.approx(restored.total_seconds)

    def test_overhead_fraction_preserved(self, traced_model, tmp_path):
        _, tracer = traced_model
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert loaded.framework_overhead_fraction() == \
            pytest.approx(tracer.framework_overhead_fraction())

    def test_peak_bytes_preserved(self, traced_model, tmp_path):
        _, tracer = traced_model
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert loaded.step_peak_bytes == tracer.step_peak_bytes


class TestFailureEvents:
    def test_failure_events_round_trip(self, tmp_path):
        from repro.framework.resilience import FailureEvent
        tracer = Tracer()
        tracer.record_event(FailureEvent(step=2, kind="retry",
                                         op_name="proj", attempt=1,
                                         seconds_lost=0.25,
                                         detail="injected fault"))
        tracer.record_event(FailureEvent(step=4, kind="checkpoint",
                                         op_name=None, attempt=0,
                                         seconds_lost=0.0))
        path = tmp_path / "faulty.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert [e.signature() for e in loaded.failure_events()] == \
            [e.signature() for e in tracer.events]
        assert loaded.fault_seconds() == pytest.approx(0.25)
        assert loaded.failure_events("retry")[0].detail == "injected fault"

    def test_trace_without_events_loads_empty(self, traced_model,
                                              tmp_path):
        _, tracer = traced_model
        path = tmp_path / "clean.jsonl"
        save_trace(tracer, path)
        assert load_trace(path).failure_events() == []


class TestErrors:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"kind": "repro-trace", "version": 99,
                                    "step_totals": []}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestCrossMachineWorkflow:
    def test_compare_saved_trace_against_live(self, traced_model, tmp_path):
        """The regression workflow: save a baseline trace, later compare a
        new run's profile against the loaded baseline."""
        from repro.profiling.comparison import compare_profiles
        model, tracer = traced_model
        path = tmp_path / "baseline.jsonl"
        save_trace(tracer, path)
        baseline = OperationProfile.from_trace(load_trace(path),
                                               "baseline", device=cpu(1))
        fresh_tracer = Tracer()
        model.run_training(2, tracer=fresh_tracer)
        candidate = OperationProfile.from_trace(fresh_tracer, "candidate",
                                                device=cpu(1))
        comparison = compare_profiles(baseline, candidate)
        # Same graph, same device model: profiles are identical.
        assert comparison.cosine_distance == pytest.approx(0.0, abs=1e-9)
        assert comparison.speedup == pytest.approx(1.0, rel=1e-6)


class TestCompileRecords:
    def test_compile_records_roundtrip(self, tmp_path):
        model = workloads.create("memnet", config="tiny", seed=0)
        tracer = Tracer()
        model.run_training(2, tracer=tracer)
        assert tracer.compile_records, "session should report compilations"
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert loaded.compile_records == tracer.compile_records
        record = loaded.compile_records[0]
        assert record["options"] == "full"
        assert {"ops_in", "num_steps", "memory", "passes"} <= set(record)

    def test_traces_without_compile_records_still_load(self, tmp_path):
        """Backward compatibility with pre-compiler trace files."""
        model = workloads.create("memnet", config="tiny", seed=0)
        tracer = Tracer()
        model.run_training(1, tracer=tracer)
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header.pop("compile_records")
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        loaded = load_trace(path)
        assert loaded.compile_records == []


class TestServingEvents:
    def test_serving_events_round_trip(self, tmp_path):
        from repro.serving.events import ServingEvent
        tracer = Tracer()
        events = [
            ServingEvent(step=0, kind="reply", outcome="ok", replica=1,
                         latency_ms=3.25, deadline_ms=100.0),
            ServingEvent(step=1, kind="shed", outcome="shed",
                         detail="queue_full"),
            ServingEvent(step=2, kind="breaker_open", replica=0,
                         detail="2 consecutive failures"),
            ServingEvent(step=3, kind="hedge", detail="attempt 2"),
        ]
        for event in events:
            tracer.record_event(event)
        path = tmp_path / "serving.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        restored = loaded.serving_events()
        assert [e.signature() for e in restored] == \
            [e.signature() for e in events]
        assert restored[0].latency_ms == pytest.approx(3.25)
        assert restored[1].detail == "queue_full"
        # the family filters stay disjoint
        assert loaded.failure_events() == []
        assert loaded.degradation_events() == []

    def test_mixed_event_families_stay_separated(self, tmp_path):
        from repro.framework.resilience import FailureEvent
        from repro.framework.session import DegradationEvent
        from repro.serving.events import ServingEvent
        tracer = Tracer()
        tracer.record_event(FailureEvent(step=0, kind="retry",
                                         detail="boom"))
        tracer.record_event(DegradationEvent(step=1, kind="tier_drop",
                                             tier="structural"))
        tracer.record_event(ServingEvent(step=2, kind="reply",
                                         outcome="ok"))
        path = tmp_path / "mixed.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert len(loaded.failure_events()) == 1
        assert len(loaded.degradation_events()) == 1
        assert len(loaded.serving_events()) == 1
        assert loaded.serving_events()[0].outcome == "ok"
