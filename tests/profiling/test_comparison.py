"""Tests for profile comparison."""

import numpy as np
import pytest

from repro.framework.graph import OpClass
from repro.profiling.comparison import compare_profiles
from repro.profiling.profile import OperationProfile


def make_profile(label, seconds, steps=1):
    classes = {name: OpClass.ELEMENTWISE for name in seconds}
    return OperationProfile(workload=label, seconds_by_type=dict(seconds),
                            class_by_type=classes, num_steps=steps)


class TestCompareProfiles:
    def test_identical_profiles(self):
        profile = make_profile("a", {"MatMul": 1.0, "Add": 0.5})
        comparison = compare_profiles(profile, profile)
        assert comparison.cosine_distance == pytest.approx(0.0, abs=1e-12)
        assert comparison.speedup == pytest.approx(1.0)
        assert all(d.fraction_delta == 0.0 for d in comparison.deltas)

    def test_speedup_direction(self):
        slow = make_profile("slow", {"MatMul": 2.0})
        fast = make_profile("fast", {"MatMul": 1.0})
        assert compare_profiles(slow, fast).speedup == pytest.approx(2.0)
        assert compare_profiles(fast, slow).speedup == pytest.approx(0.5)

    def test_new_op_type_reported(self):
        before = make_profile("before", {"MatMul": 1.0})
        after = make_profile("after", {"MatMul": 1.0, "Conv2D": 1.0})
        comparison = compare_profiles(before, after)
        conv = next(d for d in comparison.deltas if d.op_type == "Conv2D")
        assert conv.baseline_fraction == 0.0
        assert conv.candidate_fraction == pytest.approx(0.5)
        assert conv.seconds_ratio == float("inf")

    def test_deltas_sorted_by_magnitude(self):
        before = make_profile("b", {"A": 0.5, "B": 0.3, "C": 0.2})
        after = make_profile("a", {"A": 0.2, "B": 0.3, "C": 0.5})
        comparison = compare_profiles(before, after)
        magnitudes = [abs(d.fraction_delta) for d in comparison.deltas]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_normalizes_by_steps(self):
        one_step = make_profile("one", {"MatMul": 1.0}, steps=1)
        four_steps = make_profile("four", {"MatMul": 4.0}, steps=4)
        comparison = compare_profiles(one_step, four_steps)
        assert comparison.speedup == pytest.approx(1.0)

    def test_render(self):
        before = make_profile("cpu", {"MatMul": 1.0, "Add": 0.2})
        after = make_profile("gpu", {"MatMul": 0.1, "Add": 0.2})
        text = compare_profiles(before, after).render()
        assert "cpu -> gpu" in text
        assert "MatMul" in text

    def test_on_real_workload_devices(self):
        """Comparing the same trace under CPU and GPU pricing shows the
        dense ops shrinking."""
        from repro import workloads
        from repro.framework.device_model import cpu, gpu
        from repro.profiling.tracer import Tracer
        # Default config: large enough that the CPU profile is
        # matmul-dominated (tiny configs are overhead-bound everywhere).
        model = workloads.create("autoenc", config="default", seed=0)
        tracer = Tracer()
        model.run_training(2, tracer=tracer)
        cpu_profile = OperationProfile.from_trace(tracer, "autoenc-cpu",
                                                  device=cpu(1))
        gpu_profile = OperationProfile.from_trace(tracer, "autoenc-gpu",
                                                  device=gpu())
        comparison = compare_profiles(cpu_profile, gpu_profile)
        assert comparison.speedup > 1.0  # GPU is faster
        matmul = next(d for d in comparison.deltas
                      if d.op_type == "MatMul")
        assert matmul.fraction_delta < 0  # matmul share shrinks on GPU
