"""Replicated checkpoint archive tests: the durability contract.

Quorum commit, atomic visibility, failover + read-repair, scrubbing,
retention, and on-disk discovery — each exercised against the in-memory
substrate (exact, virtual-time) with the on-disk layout covered by the
``open_local_store`` tests.
"""

import hashlib

import numpy as np
import pytest

from repro.framework import checkpoint, ops
from repro.framework.checkpoint import CheckpointError
from repro.framework.clock import VirtualClock
from repro.framework.faults import StorageFaultPlan, StorageFaultSpec
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer
from repro.storage import (CheckpointQuorumError, MemoryStore,
                           ReplicatedCheckpointStore, open_local_store,
                           state_digests)
from repro.storage.replicated import _manifest_key, _payload_key


def small_model():
    w = ops.variable(np.zeros((4, 2), dtype=np.float32), name="w")
    b = ops.variable(np.zeros(2, dtype=np.float32), name="b")
    x = ops.placeholder((3, 4), name="x")
    loss = ops.reduce_sum(ops.square(ops.bias_add(ops.matmul(x, w), b)
                                     - 1.0))
    train = GradientDescentOptimizer(0.05).minimize(loss)
    return x, loss, train


def trained_session(graph, rng, steps=3):
    x, loss, train = small_model()
    session = Session(graph, seed=0)
    feed = {x: rng.standard_normal((3, 4)).astype(np.float32)}
    for _ in range(steps):
        session.run(train, feed_dict=feed)
    return session


def memory_group(replicas=3, clock=None, **kwargs):
    clock = clock if clock is not None else VirtualClock()
    stores = [MemoryStore(store_id=i, clock=clock, op_seconds=0.001)
              for i in range(replicas)]
    return ReplicatedCheckpointStore(stores, clock=clock, **kwargs)


def flip_byte(memory_store, key, position=100):
    blob = bytearray(memory_store._blobs[key])
    blob[position % len(blob)] ^= 0xFF
    memory_store._blobs[key] = bytes(blob)


class TestCommit:
    def test_commit_and_restore_bitwise(self, fresh_graph, rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        record = store.save(session, step=3)
        assert record.committed and record.replicas == 3
        assert record.step == 3 and record.checkpoint_id == 0
        # The recorded digest is the digest of the bytes at rest.
        assert hashlib.sha256(store.fetch(0)).hexdigest() == record.digest

        other = Session(fresh_graph, seed=9)
        assert state_digests(other) != state_digests(session)
        restored = store.restore(other)
        assert restored.checkpoint_id == 0
        assert state_digests(other) == state_digests(session)

    def test_store_restore_matches_file_restore(self, fresh_graph, rng,
                                                tmp_path):
        """Fault-free, the store transport is bitwise identical to the
        pre-existing file transport."""
        session = trained_session(fresh_graph, rng)
        checkpoint.save(session, tmp_path / "file.npz")
        store = memory_group()
        store.save(session)

        via_file = Session(fresh_graph, seed=5)
        checkpoint.restore(via_file, tmp_path / "file.npz")
        via_store = Session(fresh_graph, seed=6)
        store.restore(via_store)
        assert state_digests(via_file) == state_digests(via_store)

    def test_missed_quorum_raises_and_skips_the_id(self, fresh_graph,
                                                   rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)  # quorum 2
        store.install_faults(StorageFaultPlan([
            StorageFaultSpec("disk_full", store=0),
            StorageFaultSpec("disk_full", store=1),
        ], seed=0))
        with pytest.raises(CheckpointQuorumError,
                           match="NOT durable") as excinfo:
            store.save(session)
        record = excinfo.value.record
        assert not record.committed and record.replicas == 1
        assert store.counters["commit_failures"] == 1
        assert store.latest_committed_id() is None
        # Ids never recycle: the next (clean) attempt gets a fresh one.
        assert store.save(session).checkpoint_id == 1

    def test_interrupted_commit_never_restores_partially(self,
                                                         fresh_graph,
                                                         rng):
        """The durability promise's other half: a commit that failed is
        *invisible* — restore lands on the previous committed state,
        never on a half-written newer one."""
        session = trained_session(fresh_graph, rng, steps=1)
        store = memory_group(replicas=1)
        store.save(session)
        before = state_digests(session)

        # Advance the state, then tear the next commit between its
        # payload and manifest writes (the manifest never lands).
        store.install_faults(StorageFaultPlan([
            StorageFaultSpec("disk_full", key_pattern="manifest"),
        ], seed=0))
        op = checkpoint._graph_variables(session.graph)["w"]
        session.set_variable(op.output,
                             np.ones((4, 2), dtype=np.float32))
        with pytest.raises(CheckpointQuorumError):
            store.save(session)
        store.uninstall_faults()

        probe = Session(fresh_graph, seed=7)
        record = store.restore(probe)
        assert record.checkpoint_id == 0
        assert state_digests(probe) == before


class TestFailoverAndRepair:
    def test_read_repair_rewrites_the_damaged_replica(self, fresh_graph,
                                                      rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        store.save(session)
        flip_byte(store.stores[0], _payload_key(0))
        damaged = store.stores[0]._blobs[_payload_key(0)]
        assert damaged != store.stores[1]._blobs[_payload_key(0)]

        probe = Session(fresh_graph, seed=4)
        store.restore(probe)
        assert state_digests(probe) == state_digests(session)
        assert store.counters["corrupt_replicas"] == 1
        assert store.counters["read_repairs"] == 1
        # The repair is bitwise: replica 0 again matches replica 1.
        assert store.stores[0]._blobs[_payload_key(0)] \
            == store.stores[1]._blobs[_payload_key(0)]

    def test_restore_skips_an_unrecoverable_newest(self, fresh_graph,
                                                   rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        store.save(session)
        store.save(session)
        for replica in store.stores:  # checkpoint 1: every copy rotted
            flip_byte(replica, _payload_key(1))
        probe = Session(fresh_graph, seed=4)
        record = store.restore(probe)
        assert record.checkpoint_id == 0
        assert state_digests(probe) == state_digests(session)

    def test_explicit_id_fails_when_unrecoverable(self, fresh_graph,
                                                  rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        store.save(session)
        for replica in store.stores:
            flip_byte(replica, _payload_key(0))
        with pytest.raises(CheckpointError, match="no intact replica"):
            store.restore(Session(fresh_graph, seed=4), checkpoint_id=0)

    def test_empty_archive_raises(self, fresh_graph):
        small_model()
        store = memory_group()
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.restore(Session(fresh_graph, seed=0))


class TestScrub:
    def test_scrub_heals_rot_to_bitwise_identity(self, fresh_graph, rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        store.save(session)
        flip_byte(store.stores[2], _payload_key(0))
        report = store.scrub()
        assert report.healed == 1 and not report.unrecoverable
        assert report.checked == 3
        assert store.stores[2]._blobs[_payload_key(0)] \
            == store.stores[0]._blobs[_payload_key(0)]
        assert store.counters["scrub_heals"] == 1

    def test_scrub_reports_unrecoverable_checkpoints(self, fresh_graph,
                                                     rng):
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=2)
        store.save(session)
        for replica in store.stores:
            flip_byte(replica, _payload_key(0))
        report = store.scrub()
        assert report.unrecoverable == (0,)
        assert report.healed == 0
        assert store.counters["unrecoverable"] == 1

    def test_absence_is_not_damage(self, fresh_graph, rng):
        """A replica a store never held (or GC'd) must not be "healed"
        back — only *damaged* copies are."""
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3)
        store.save(session)
        store.stores[2].delete(_payload_key(0))
        store.stores[2].delete(_manifest_key(0))
        report = store.scrub()
        assert report.checked == 2 and report.healed == 0
        assert not report.unrecoverable
        assert not store.stores[2].exists(_payload_key(0))

    def test_maybe_scrub_honours_the_interval(self, fresh_graph, rng):
        clock = VirtualClock()
        session = trained_session(fresh_graph, rng, steps=1)
        store = memory_group(clock=clock, scrub_interval=10.0)
        store.save(session)
        assert store.maybe_scrub() is None  # interval not yet elapsed
        clock.sleep(10.0)
        report = store.maybe_scrub()
        assert report is not None and report.checked == 3
        assert store.maybe_scrub() is None  # timer reset by the pass


class TestRetention:
    def test_gc_keeps_the_last_k(self, fresh_graph, rng):
        session = trained_session(fresh_graph, rng, steps=1)
        store = memory_group(keep_last=2)
        for step in range(4):
            store.save(session, step=step)
        assert store.checkpoint_ids() == [2, 3]
        assert store.counters["gc_collected"] == 2
        probe = Session(fresh_graph, seed=4)
        assert store.restore(probe).checkpoint_id == 3

    def test_keep_everything_by_default(self, fresh_graph, rng):
        session = trained_session(fresh_graph, rng, steps=1)
        store = memory_group()
        for step in range(4):
            store.save(session, step=step)
        assert store.checkpoint_ids() == [0, 1, 2, 3]


class TestLocalArchive:
    def test_open_save_rediscover_restore(self, fresh_graph, rng,
                                          tmp_path):
        session = trained_session(fresh_graph, rng)
        store = open_local_store(tmp_path / "arc", replicas=3)
        store.save(session, step=3)
        assert sorted(p.name for p in (tmp_path / "arc").iterdir()) \
            == ["replica-0", "replica-1", "replica-2"]

        # A later process discovers the replica count from the layout.
        reopened = open_local_store(tmp_path / "arc")
        assert len(reopened.stores) == 3
        assert reopened.checkpoint_ids() == [0]
        probe = Session(fresh_graph, seed=4)
        reopened.restore(probe)
        assert state_digests(probe) == state_digests(session)
        # ... and continues the id sequence instead of clobbering it.
        assert reopened.save(session).checkpoint_id == 1

    def test_discovery_of_an_empty_root_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="no replica"):
            open_local_store(tmp_path / "missing")


class TestNarration:
    def test_storage_events_trace_and_roundtrip(self, fresh_graph, rng,
                                                tmp_path):
        tracer = Tracer()
        session = trained_session(fresh_graph, rng)
        store = memory_group(replicas=3, tracer=tracer)
        store.save(session)
        flip_byte(store.stores[0], _payload_key(0))
        store.restore(Session(fresh_graph, seed=4))
        store.scrub()

        kinds = {e.kind for e in tracer.storage_events()}
        assert {"commit", "corrupt_replica", "read_repair",
                "scrub"} <= kinds
        # Storage narration is its own trace family, not failures.
        assert tracer.failure_events() == []

        path = tmp_path / "storage.jsonl"
        save_trace(tracer, path, metadata={"mode": "storage"})
        loaded = load_trace(path)
        assert {e.kind for e in loaded.storage_events()} == kinds
        commit = next(e for e in loaded.storage_events()
                      if e.kind == "commit")
        assert commit.step == 0 and "committed" in commit.detail
