"""Blob-store tests: both backends, the full storage fault family.

The two backends (dict-of-bytes and one-file-per-blob) share the
operation protocol in :class:`~repro.storage.BlobStore`, so every test
here runs against both — they must fault identically.
"""

import os

import pytest

from repro.framework.clock import VirtualClock
from repro.framework.errors import (BlobNotFoundError, StorageFullError,
                                    StoreUnavailableError)
from repro.framework.faults import StorageFaultPlan, StorageFaultSpec
from repro.storage import LocalDirStore, MemoryStore

BACKENDS = ("memory", "localdir")


def make_store(backend, tmp_path, **kwargs):
    if backend == "memory":
        return MemoryStore(**kwargs)
    return LocalDirStore(tmp_path / f"store-{kwargs.get('store_id', 0)}",
                         **kwargs)


def armed(store, *specs, seed=0):
    """Attach a fresh injector executing ``specs`` to ``store``."""
    plan = StorageFaultPlan(list(specs), seed=seed)
    injector = plan.injector()
    store.attach_faults(injector)
    return injector


@pytest.mark.parametrize("backend", BACKENDS)
class TestBlobStoreBasics:
    def test_put_get_delete_roundtrip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("a/b/blob", b"payload")
        assert store.exists("a/b/blob")
        assert store.get("a/b/blob") == b"payload"
        store.put("a/b/blob", b"newer")
        assert store.get("a/b/blob") == b"newer"
        store.delete("a/b/blob")
        assert not store.exists("a/b/blob")
        store.delete("a/b/blob")  # missing keys are a no-op
        assert store.counters == {"puts": 2, "gets": 2, "deletes": 1}

    def test_get_missing_raises_with_key(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        with pytest.raises(BlobNotFoundError) as excinfo:
            store.get("nope")
        assert excinfo.value.key == "nope"

    def test_list_is_sorted_and_prefix_filtered(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        for key in ("ckpt/2/payload", "ckpt/1/payload", "other/x"):
            store.put(key, b"x")
        assert store.list() == ["ckpt/1/payload", "ckpt/2/payload",
                                "other/x"]
        assert store.list("ckpt/") == ["ckpt/1/payload", "ckpt/2/payload"]

    @pytest.mark.parametrize("key", ["", "/abs", "a/../escape"])
    def test_hostile_keys_rejected(self, backend, tmp_path, key):
        store = make_store(backend, tmp_path)
        with pytest.raises(ValueError, match="invalid blob key"):
            store.put(key, b"x")

    def test_operations_charge_the_clock(self, backend, tmp_path):
        clock = VirtualClock()
        store = make_store(backend, tmp_path, clock=clock,
                           op_seconds=0.01)
        store.put("k", b"v")
        store.get("k")
        store.delete("k")
        assert clock.now() == pytest.approx(0.03)
        # list/exists are metadata operations: free.
        store.list()
        store.exists("k")
        assert clock.now() == pytest.approx(0.03)


@pytest.mark.parametrize("backend", BACKENDS)
class TestInjectedFaults:
    def test_torn_write_persists_a_prefix(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        armed(store, StorageFaultSpec("torn_write", fraction=0.5))
        store.put("k", b"0123456789")
        assert store.get("k") == b"01234"  # reported success, half landed

    def test_bit_rot_flips_one_byte_at_rest(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        injector = armed(store, StorageFaultSpec("bit_rot"))
        store.put("k", b"\x00" * 8)  # rot targets blobs already at rest,
        store.put("other", b"x")     # so it fires on the *next* operation
        rotted = store.get("k")
        assert rotted != b"\x00" * 8
        assert len(rotted) == 8
        assert sum(b != 0 for b in rotted) == 1  # exactly one byte flipped
        events = [e for e in injector.events if e.kind == "bit_rot"]
        assert len(events) == 1
        assert events[0].op_name == f"store:{store.store_id}:k"

    def test_stale_read_serves_the_previous_version(self, backend,
                                                    tmp_path):
        store = make_store(backend, tmp_path)
        armed(store, StorageFaultSpec("stale_read", op_index=2))
        store.put("k", b"v1")
        store.put("k", b"v2")
        assert store.get("k") == b"v1"  # injected: the overwrite "lost"
        assert store.get("k") == b"v2"  # consistency catches up

    def test_stale_read_of_fresh_key_is_not_found(self, backend,
                                                  tmp_path):
        store = make_store(backend, tmp_path)
        armed(store, StorageFaultSpec("stale_read", op_index=1))
        store.put("k", b"v1")  # never overwritten: no previous version
        with pytest.raises(BlobNotFoundError, match="not yet visible"):
            store.get("k")

    def test_disk_full_rejects_puts_only(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("k", b"v")
        armed(store, StorageFaultSpec("disk_full"))
        with pytest.raises(StorageFullError, match="no space left"):
            store.put("k2", b"v2")
        assert store.get("k") == b"v"  # reads unaffected
        assert not store.exists("k2")
        assert store.counters["puts"] == 1

    def test_store_down_outage_expires(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("k", b"v")
        armed(store, StorageFaultSpec("store_down", duration_ops=2))
        for _ in range(3):  # the firing op + duration_ops dark ops
            with pytest.raises(StoreUnavailableError):
                store.get("k")
        assert store.get("k") == b"v"  # the outage has expired
        # Metadata stays reachable throughout an outage.
        assert store.list() == ["k"]

    def test_slow_io_sleeps_on_the_store_clock(self, backend, tmp_path):
        clock = VirtualClock()
        store = make_store(backend, tmp_path, clock=clock,
                           op_seconds=0.001)
        armed(store, StorageFaultSpec("slow_io", latency_seconds=0.05))
        store.put("k", b"v")
        assert clock.now() == pytest.approx(0.051)
        store.get("k")  # the single trigger is spent
        assert clock.now() == pytest.approx(0.052)

    def test_key_pattern_scopes_the_fault(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        armed(store, StorageFaultSpec("torn_write", key_pattern="payload",
                                      max_triggers=None))
        store.put("ckpt/0/manifest", b"manifest-bytes")
        store.put("ckpt/0/payload", b"payload-bytes")
        assert store.get("ckpt/0/manifest") == b"manifest-bytes"
        assert store.get("ckpt/0/payload") == b"payload"[:6]

    def test_store_targeting_leaves_other_stores_alone(self, backend,
                                                       tmp_path):
        first = make_store(backend, tmp_path, store_id=0)
        second = make_store(backend, tmp_path, store_id=1)
        plan = StorageFaultPlan(
            [StorageFaultSpec("disk_full", store=1)], seed=0)
        injector = plan.injector()  # one injector shared by the group
        first.attach_faults(injector)
        second.attach_faults(injector)
        first.put("k", b"v")
        with pytest.raises(StorageFullError):
            second.put("k", b"v")

    def test_detach_disarms(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        armed(store, StorageFaultSpec("disk_full"))
        store.detach_faults()
        store.put("k", b"v")
        assert store.get("k") == b"v"


@pytest.mark.parametrize("backend", BACKENDS)
def test_identical_plans_fault_identically(backend, tmp_path):
    """Same plan + same operation sequence = same injection signature,
    on either backend — the determinism bar campaign replay rests on."""
    signatures = []
    for attempt in range(2):
        store = make_store(backend, tmp_path / f"run{attempt}")
        injector = armed(
            store,
            StorageFaultSpec("bit_rot", probability=0.5,
                             max_triggers=None),
            StorageFaultSpec("torn_write", probability=0.5,
                             max_triggers=None),
            seed=7)
        for index in range(6):
            store.put(f"k{index}", bytes(8))
        signatures.append(injector.signature())
    assert signatures[0] == signatures[1]
    assert signatures[0]  # the probabilistic faults actually fired


class TestLocalDirStore:
    def test_keys_map_to_subdirectories(self, tmp_path):
        store = LocalDirStore(tmp_path / "s")
        store.put("ckpt/00000001/payload", b"x")
        assert (tmp_path / "s" / "ckpt" / "00000001" / "payload").is_file()
        assert store.list() == ["ckpt/00000001/payload"]

    def test_writes_leave_no_temp_litter(self, tmp_path):
        store = LocalDirStore(tmp_path / "s")
        for index in range(3):
            store.put("blob", b"v%d" % index)
        files = [name for _, _, names in os.walk(tmp_path / "s")
                 for name in names]
        assert files == ["blob"]

    def test_reopen_sees_existing_blobs(self, tmp_path):
        LocalDirStore(tmp_path / "s").put("k", b"persisted")
        assert LocalDirStore(tmp_path / "s").get("k") == b"persisted"
