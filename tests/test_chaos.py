"""Chaos suite: every workload must survive injected faults unchanged.

The acceptance bar (see docs/robustness.md): a training run with a
transient fault injected at a mid-run step must recover — via rollback
and retry — and produce *exactly* the same loss trajectory as the
uninterrupted run, with the recovery visible as ``FailureEvent`` records
in the trace.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import re

import numpy as np
import pytest

from repro import workloads
from repro.framework.compiler import PlanOptions
from repro.framework.faults import FaultInjector, FaultPlan, FaultSpec
from repro.framework.resilience import ResilienceConfig
from repro.profiling.tracer import Tracer

#: total training steps per scenario; the fault lands mid-run
TOTAL_STEPS = 5
CLEAN_STEPS = 2

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")

#: plan tiers the exact-recovery matrix runs against: the structural
#: (pass-free) tier and the fully optimizing pipeline
TIERS = ("structural", "full")

# The optimizer's fused update node is named train_step in every
# workload, so targeting it faults only *training* runs — auxiliary
# inference runs (e.g. deepq's replay seeding) are untouched.
TRAIN_STEP_FAULT = FaultSpec(kind="exception", name_pattern="train_step")


def make_model(name, tier=None):
    """Create a workload, optionally pinning its plan-optimization tier."""
    model = workloads.create(name, config="tiny", seed=0)
    if tier is not None:
        level = "none" if tier == "structural" else tier
        model.session.options = PlanOptions.coerce(level)
    return model


def baseline_losses(name, tier=None):
    return make_model(name, tier).run_training(steps=TOTAL_STEPS)


def faulted_losses(name, spec, config=None, tier=None):
    """Train CLEAN_STEPS plainly, then arm the fault and finish
    resiliently — so the injection lands at training step CLEAN_STEPS,
    mid-run."""
    model = make_model(name, tier)
    losses = model.run_training(steps=CLEAN_STEPS)
    injector = FaultInjector(FaultPlan([spec], seed=99))
    model.session.fault_injector = injector
    tracer = Tracer()
    losses += model.run_training(
        steps=TOTAL_STEPS - CLEAN_STEPS, tracer=tracer,
        resilience=config or ResilienceConfig(max_retries=2))
    return losses, tracer, injector


def assert_recovers_exactly(name, spec, expected_kind, tier=None):
    baseline = baseline_losses(name, tier)
    losses, tracer, injector = faulted_losses(name, spec, tier=tier)
    assert injector.num_injected == 1, \
        f"{name}: expected exactly one injected fault"
    recoveries = tracer.failure_events(expected_kind)
    assert len(recoveries) == 1, \
        f"{name}: recovery not visible as a FailureEvent"
    assert recoveries[0].step == 0  # first step of the resilient phase
    np.testing.assert_array_equal(
        np.asarray(losses), np.asarray(baseline),
        err_msg=f"{name}: recovered trajectory diverged from fault-free run")


def healed_losses(name):
    """A full-tier run hit by a repeating plan-step fault, healing on.

    The fault fires twice at the same blamed op, so the healing policy
    demotes to the structural tier mid-step-0, finishes the step there,
    and re-escalates to full after three clean steps.
    """
    model = make_model(name, tier="full")
    injector = FaultInjector(FaultPlan(
        [FaultSpec(kind="exception", name_pattern="train_step",
                   max_triggers=2)], seed=99))
    model.session.fault_injector = injector
    tracer = Tracer()
    losses = model.run_training(
        steps=TOTAL_STEPS, tracer=tracer,
        resilience=ResilienceConfig(max_retries=3, healing=True))
    return model, losses, tracer, injector


def assert_heals_exactly(name, tmp_path):
    """The acceptance bar for self-healing (see docs/robustness.md).

    A full-tier run with repeated plan-step faults must finish training
    via automatic de-optimization, match the fault-free structural run
    bit-for-bit, and leave the complete fault -> blame -> tier drop ->
    quarantine -> re-escalation trail in the serialized trace.
    """
    from repro.profiling.serialize import load_trace, save_trace
    baseline = baseline_losses(name, tier="structural")
    model, losses, tracer, injector = healed_losses(name)
    assert injector.num_injected == 2, \
        f"{name}: expected the fault to fire twice"
    np.testing.assert_array_equal(
        np.asarray(losses), np.asarray(baseline),
        err_msg=f"{name}: healed trajectory diverged from fault-free run")
    # The session climbed all the way back up.
    assert model.session.execution_tier == "full"
    kinds = [e.kind for e in tracer.degradation_events()]
    for kind in ("fault", "blame", "tier_drop", "quarantine", "reescalate"):
        assert kind in kinds, f"{name}: no {kind!r} event in the trail"
    # Causality: blame precedes the drop, which precedes re-escalation.
    assert kinds.index("blame") < kinds.index("tier_drop") \
        < kinds.index("quarantine") < kinds.index("reescalate")
    # The trail survives a serialization round-trip, interleaved with
    # the runner's FailureEvents in emit order.
    path = tmp_path / f"{name}-healing.jsonl"
    save_trace(tracer, path)
    saved = load_trace(path)
    assert [e.signature() for e in saved.degradation_events()] == \
        [e.signature() for e in tracer.degradation_events()]
    assert [e.signature() for e in saved.failure_events()] == \
        [e.signature() for e in tracer.failure_events()]


class TestFastSubset:
    """Tier-1-safe slice of the matrix (runs in the default suite)."""

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_transient_fault_recovers_exactly(self, name, tier):
        assert_recovers_exactly(name, TRAIN_STEP_FAULT, "retry", tier=tier)

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_self_healing_recovers_exactly(self, name, tmp_path):
        assert_heals_exactly(name, tmp_path)

    def test_nan_poisoned_loss_recovers_exactly(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        loss_pattern = re.escape(model.loss.op.name) + "$"
        assert_recovers_exactly(
            "memnet", FaultSpec(kind="nan", name_pattern=loss_pattern),
            "nan_rollback")

    def test_event_sequence_is_deterministic(self):
        def signatures():
            _, tracer, injector = faulted_losses("memnet",
                                                 TRAIN_STEP_FAULT)
            return (injector.signature(),
                    tuple(e.signature() for e in tracer.events))
        assert signatures() == signatures()


@pytest.mark.chaos
class TestFullMatrix:
    """All eight Table II workloads under the full injection matrix."""

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_transient_fault_recovers_exactly(self, name, tier):
        assert_recovers_exactly(name, TRAIN_STEP_FAULT, "retry", tier=tier)

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_self_healing_recovers_exactly(self, name, tmp_path):
        """The PR's acceptance criterion, over the whole Table II matrix."""
        assert_heals_exactly(name, tmp_path)

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_nan_poisoned_loss_recovers_exactly(self, name):
        model = workloads.create(name, config="tiny", seed=0)
        loss_pattern = re.escape(model.loss.op.name) + "$"
        assert_recovers_exactly(
            name, FaultSpec(kind="nan", name_pattern=loss_pattern),
            "nan_rollback")

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_checkpointed_run_survives_persistent_fault(self, name):
        """Retries exhausted -> restore last-good state, keep training."""
        from repro.framework.resilience import ResilientRunner
        model = workloads.create(name, config="tiny", seed=0)
        tracer = Tracer()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1, checkpoint_every=1), tracer=tracer)
        losses = runner.run(2)
        assert all(np.isfinite(losses))
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", name_pattern="train_step",
                       max_triggers=None)], seed=5))
        survived = runner.run(1)
        assert np.isnan(survived[0])
        kinds = [e.kind for e in tracer.events]
        assert "restore" in kinds

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_event_sequence_is_deterministic(self, name):
        def signatures():
            _, tracer, injector = faulted_losses(name, TRAIN_STEP_FAULT)
            return (injector.signature(),
                    tuple(e.signature() for e in tracer.events))
        assert signatures() == signatures()
