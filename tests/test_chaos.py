"""Chaos suite: every workload must survive injected faults unchanged.

The acceptance bar (see docs/robustness.md): a training run with a
transient fault injected at a mid-run step must recover — via rollback
and retry — and produce *exactly* the same loss trajectory as the
uninterrupted run, with the recovery visible as ``FailureEvent`` records
in the trace.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import re

import numpy as np
import pytest

from repro import workloads
from repro.framework.faults import FaultInjector, FaultPlan, FaultSpec
from repro.framework.resilience import ResilienceConfig
from repro.profiling.tracer import Tracer

#: total training steps per scenario; the fault lands mid-run
TOTAL_STEPS = 5
CLEAN_STEPS = 2

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")

# The optimizer's fused update node is named train_step in every
# workload, so targeting it faults only *training* runs — auxiliary
# inference runs (e.g. deepq's replay seeding) are untouched.
TRAIN_STEP_FAULT = FaultSpec(kind="exception", name_pattern="train_step")


def baseline_losses(name):
    model = workloads.create(name, config="tiny", seed=0)
    return model.run_training(steps=TOTAL_STEPS)


def faulted_losses(name, spec, config=None):
    """Train CLEAN_STEPS plainly, then arm the fault and finish
    resiliently — so the injection lands at training step CLEAN_STEPS,
    mid-run."""
    model = workloads.create(name, config="tiny", seed=0)
    losses = model.run_training(steps=CLEAN_STEPS)
    injector = FaultInjector(FaultPlan([spec], seed=99))
    model.session.fault_injector = injector
    tracer = Tracer()
    losses += model.run_training(
        steps=TOTAL_STEPS - CLEAN_STEPS, tracer=tracer,
        resilience=config or ResilienceConfig(max_retries=2))
    return losses, tracer, injector


def assert_recovers_exactly(name, spec, expected_kind):
    baseline = baseline_losses(name)
    losses, tracer, injector = faulted_losses(name, spec)
    assert injector.num_injected == 1, \
        f"{name}: expected exactly one injected fault"
    recoveries = tracer.failure_events(expected_kind)
    assert len(recoveries) == 1, \
        f"{name}: recovery not visible as a FailureEvent"
    assert recoveries[0].step == 0  # first step of the resilient phase
    np.testing.assert_array_equal(
        np.asarray(losses), np.asarray(baseline),
        err_msg=f"{name}: recovered trajectory diverged from fault-free run")


class TestFastSubset:
    """Tier-1-safe slice of the matrix (runs in the default suite)."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_transient_fault_recovers_exactly(self, name):
        assert_recovers_exactly(name, TRAIN_STEP_FAULT, "retry")

    def test_nan_poisoned_loss_recovers_exactly(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        loss_pattern = re.escape(model.loss.op.name) + "$"
        assert_recovers_exactly(
            "memnet", FaultSpec(kind="nan", name_pattern=loss_pattern),
            "nan_rollback")

    def test_event_sequence_is_deterministic(self):
        def signatures():
            _, tracer, injector = faulted_losses("memnet",
                                                 TRAIN_STEP_FAULT)
            return (injector.signature(),
                    tuple(e.signature() for e in tracer.events))
        assert signatures() == signatures()


@pytest.mark.chaos
class TestFullMatrix:
    """All eight Table II workloads under the full injection matrix."""

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_transient_fault_recovers_exactly(self, name):
        assert_recovers_exactly(name, TRAIN_STEP_FAULT, "retry")

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_nan_poisoned_loss_recovers_exactly(self, name):
        model = workloads.create(name, config="tiny", seed=0)
        loss_pattern = re.escape(model.loss.op.name) + "$"
        assert_recovers_exactly(
            name, FaultSpec(kind="nan", name_pattern=loss_pattern),
            "nan_rollback")

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_checkpointed_run_survives_persistent_fault(self, name):
        """Retries exhausted -> restore last-good state, keep training."""
        from repro.framework.resilience import ResilientRunner
        model = workloads.create(name, config="tiny", seed=0)
        tracer = Tracer()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1, checkpoint_every=1), tracer=tracer)
        losses = runner.run(2)
        assert all(np.isfinite(losses))
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", name_pattern="train_step",
                       max_triggers=None)], seed=5))
        survived = runner.run(1)
        assert np.isnan(survived[0])
        kinds = [e.kind for e in tracer.events]
        assert "restore" in kinds

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_event_sequence_is_deterministic(self, name):
        def signatures():
            _, tracer, injector = faulted_losses(name, TRAIN_STEP_FAULT)
            return (injector.signature(),
                    tuple(e.signature() for e in tracer.events))
        assert signatures() == signatures()
