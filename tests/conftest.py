"""Shared pytest fixtures."""

import numpy as np
import pytest

from repro.framework import graph as graph_module
from repro.framework.graph import Graph
from repro.framework.session import Session


@pytest.fixture(autouse=True)
def fresh_graph():
    """Give every test its own default graph."""
    graph_module.reset_default_graph()
    yield graph_module.get_default_graph()
    graph_module.reset_default_graph()


@pytest.fixture
def session(fresh_graph):
    """A session over the test's default graph, fixed seed."""
    return Session(fresh_graph, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def numeric_gradient(session, loss, placeholder, value, index,
                     epsilon=1e-3):
    """Central-difference derivative of ``loss`` w.r.t. one input element."""
    bumped = value.copy()
    bumped[index] += epsilon
    plus = session.run(loss, feed_dict={placeholder: bumped})
    bumped[index] -= 2 * epsilon
    minus = session.run(loss, feed_dict={placeholder: bumped})
    return (float(plus) - float(minus)) / (2 * epsilon)
