"""Cross-module integration tests: the whole stack working together."""

import json

import numpy as np
import pytest

from repro import workloads
from repro.framework import checkpoint, ops
from repro.framework.device_model import cpu, gpu
from repro.framework.graph_export import graph_stats, to_networkx
from repro.framework.placement import (default_devices,
                                       gpu_with_cpu_fallback,
                                       simulate_schedule)
from repro.profiling.comparison import compare_profiles
from repro.profiling.profile import OperationProfile
from repro.profiling.timeline import to_chrome_trace
from repro.profiling.tracer import Tracer


class TestTrainProfileCheckpointCycle:
    """One workload through train -> profile -> checkpoint -> restore."""

    def test_full_lifecycle(self, tmp_path):
        model = workloads.create("memnet", config="tiny", seed=0)

        # Train while tracing.
        tracer = Tracer()
        losses = model.run_training(steps=5, tracer=tracer)
        assert len(losses) == 5
        assert tracer.num_steps == 5

        # Profile from the same trace under two devices and diff them.
        cpu_profile = OperationProfile.from_trace(tracer, "memnet-cpu",
                                                  device=cpu(1))
        gpu_profile = OperationProfile.from_trace(tracer, "memnet-gpu",
                                                  device=gpu())
        comparison = compare_profiles(cpu_profile, gpu_profile)
        assert comparison.speedup > 0

        # Timeline from the same trace is valid Chrome JSON.
        blob = json.loads(to_chrome_trace(tracer))
        assert len([e for e in blob["traceEvents"] if e["ph"] == "X"]) \
            == len(tracer.records)

        # Checkpoint, clone, restore, verify behavioural equivalence.
        path = tmp_path / "memnet.npz"
        checkpoint.save(model.session, path)
        clone = workloads.create("memnet", config="tiny", seed=123)
        checkpoint.restore(clone.session, path)
        feed_arrays = {t.name: v
                       for t, v in model.sample_feed(False).items()}
        original = model.session.run(
            model.inference_output,
            feed_dict={model.stories: feed_arrays["stories:0"],
                       model.queries: feed_arrays["queries:0"],
                       model.answers: feed_arrays["answers:0"]})
        restored = clone.session.run(
            clone.inference_output,
            feed_dict={clone.stories: feed_arrays["stories:0"],
                       clone.queries: feed_arrays["queries:0"],
                       clone.answers: feed_arrays["answers:0"]})
        np.testing.assert_allclose(original, restored, rtol=1e-5)


class TestGraphToolchain:
    def test_stats_export_and_schedule_agree_on_op_count(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        fetches = [model.loss, model.train_step]
        subgraph_ops = model.graph.subgraph(fetches)
        stats = graph_stats(model.graph, fetches=fetches)
        nxg = to_networkx(model.graph, fetches=fetches)
        schedule = simulate_schedule(subgraph_ops, gpu_with_cpu_fallback(),
                                     default_devices())
        assert stats.num_ops == len(subgraph_ops)
        assert nxg.number_of_nodes() == len(subgraph_ops)
        assert len(schedule.scheduled) == len(subgraph_ops)

    def test_critical_path_bounds_schedule(self):
        """A single-device schedule's makespan >= modeled critical path
        through any chain (sanity relation between the two analyses)."""
        model = workloads.create("memnet", config="tiny", seed=0)
        from repro.framework.placement import place_all
        ops_list = model.graph.subgraph([model.loss])
        devices = default_devices()
        serial = simulate_schedule(ops_list, place_all("cpu"), devices)
        assert serial.makespan == pytest.approx(serial.device_busy["cpu"])


class TestSuiteWideConsistency:
    def test_profiles_from_shared_trace_are_self_consistent(self):
        """Measured and modeled profiles over the same trace must contain
        the same op types."""
        model = workloads.create("deepq", config="tiny", seed=0)
        tracer = Tracer()
        model.run_training(2, tracer=tracer)
        measured = OperationProfile.from_trace(tracer, "m")
        modeled = OperationProfile.from_trace(tracer, "d", device=cpu(1))
        assert set(measured.seconds_by_type) == set(modeled.seconds_by_type)

    def test_inference_subgraph_smaller_than_training(self):
        for name in ("memnet", "autoenc"):
            model = workloads.create(name, config="tiny", seed=0)
            train_ops = model.graph.subgraph([model.loss,
                                              model.train_step])
            infer_ops = model.graph.subgraph([model.inference_output])
            assert len(infer_ops) < len(train_ops), name

    def test_workload_graphs_are_dags_with_consistent_stats(self):
        import networkx as nx
        for name in ("seq2seq", "speech"):
            model = workloads.create(name, config="tiny", seed=0)
            nxg = to_networkx(model.graph)
            assert nx.is_directed_acyclic_graph(nxg), name
            stats = graph_stats(model.graph)
            longest = nx.dag_longest_path_length(nxg)
            # networkx counts edges; our stat counts nodes on the path.
            assert stats.critical_path_length == longest + 1, name
