"""Gradient transports: canonical aggregation and fault handling."""

import numpy as np
import pytest

from repro.distributed import (SERVER, AllReduceBroken, ClusterClock,
                               ClusterModel, ExchangeError,
                               ParameterServerStrategy,
                               RingAllReduceStrategy, aggregate_shards,
                               coordinate_median_shards, make_aggregator,
                               make_strategy, trimmed_mean_shards)
from repro.distributed.events import ClusterEvent
from repro.framework.faults import ClusterFaultPlan, ClusterFaultSpec
from repro.framework.resilience import BackoffPolicy


class FakeContext:
    """Minimal ExchangeContext for driving strategies directly."""

    def __init__(self, workers=(0, 1), injector=None, max_retries=2,
                 overflow_limit=None):
        self.clock = ClusterClock(list(workers) + [SERVER])
        self.injector = injector
        self.cluster = ClusterModel()
        self.parameter_bytes = 4e6
        self.timeout = 0.05
        self.max_retries = max_retries
        self.aggregate = aggregate_shards
        self.overflow_limit = overflow_limit
        self.events = []
        self._backoffs = {}

    def emit(self, step, kind, **kw):
        self.events.append(ClusterEvent(step=step, kind=kind, **kw))

    def backoff_for(self, worker):
        if worker not in self._backoffs:
            self._backoffs[worker] = BackoffPolicy.for_worker(
                worker, base=0.01, seed=0)
        return self._backoffs[worker]

    def kinds(self):
        return [e.kind for e in self.events]


def grads_for(workers, value=1.0):
    return [(shard, worker,
             [np.full((2, 2), value * (shard + 1), dtype=np.float32)])
            for shard, worker in enumerate(workers)]


class TestAggregateShards:

    def test_mean_in_shard_order(self):
        shards = [[np.array([2.0, 4.0], dtype=np.float32)],
                  [np.array([4.0, 8.0], dtype=np.float32)]]
        (mean,) = aggregate_shards(shards)
        np.testing.assert_array_equal(mean, [3.0, 6.0])

    def test_result_independent_of_list_identity(self):
        shards = [[np.ones(3, dtype=np.float32)],
                  [np.full(3, 2.0, dtype=np.float32)],
                  [np.full(3, 4.0, dtype=np.float32)]]
        a = aggregate_shards(shards)
        b = aggregate_shards([list(s) for s in shards])
        np.testing.assert_array_equal(a[0], b[0])

    def test_inputs_not_mutated(self):
        first = np.ones(2, dtype=np.float32)
        aggregate_shards([[first], [np.full(2, 3.0, dtype=np.float32)]])
        np.testing.assert_array_equal(first, [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_shards([])


class TestRobustAggregators:

    SHARDS = [[np.array([1.0, 10.0], dtype=np.float32)],
              [np.array([2.0, 20.0], dtype=np.float32)],
              [np.array([900.0, -900.0], dtype=np.float32)]]

    def test_trimmed_mean_drops_the_extremes(self):
        (trimmed,) = trimmed_mean_shards(self.SHARDS, trim=1)
        np.testing.assert_array_equal(trimmed, [2.0, 10.0])

    def test_default_trim_is_the_largest_safe_value(self):
        explicit = trimmed_mean_shards(self.SHARDS, trim=1)
        implicit = trimmed_mean_shards(self.SHARDS)
        np.testing.assert_array_equal(explicit[0], implicit[0])

    def test_oversized_trim_is_clamped(self):
        clamped = trimmed_mean_shards(self.SHARDS, trim=10)
        np.testing.assert_array_equal(clamped[0],
                                      trimmed_mean_shards(self.SHARDS,
                                                          trim=1)[0])

    def test_trim_zero_is_bitwise_mean(self):
        np.testing.assert_array_equal(
            trimmed_mean_shards(self.SHARDS, trim=0)[0],
            aggregate_shards(self.SHARDS)[0])

    def test_coordinate_median_ignores_a_minority_liar(self):
        (median,) = coordinate_median_shards(self.SHARDS)
        np.testing.assert_array_equal(median, [2.0, 10.0])
        assert median.dtype == np.float32

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean_shards([])
        with pytest.raises(ValueError):
            coordinate_median_shards([])

    def test_aggregator_registry(self):
        assert make_aggregator("mean") is aggregate_shards
        # screened_mean is the same arithmetic: screening happens
        # upstream in the runtime's attestation phase
        assert make_aggregator("screened_mean") is aggregate_shards
        (trimmed,) = make_aggregator("trimmed_mean", 1)(self.SHARDS)
        np.testing.assert_array_equal(trimmed, [2.0, 10.0])
        assert make_aggregator("coordinate_median") \
            is coordinate_median_shards
        with pytest.raises(ValueError, match="unknown aggregation"):
            make_aggregator("krum")


class HugeOnceInjector:
    """Corrupts the first message with finite-but-absurd values: the
    NaN/Inf screen waves it through, only the norm screen can catch it."""

    def __init__(self):
        self.fired = False

    def on_message(self, src, dst, step, probe):
        if not self.fired:
            self.fired = True
            return "corrupt", np.full_like(probe, 1e30)
        return "ok", probe


class TestTransports:

    def test_ps_and_ring_return_identical_aggregates(self):
        contributions = grads_for([0, 1])
        ps = ParameterServerStrategy().exchange(
            FakeContext(), 0, contributions, [0, 1])
        ring = RingAllReduceStrategy().exchange(
            FakeContext(), 0, contributions, [0, 1])
        np.testing.assert_array_equal(ps[0], ring[0])

    def test_lost_message_times_out_and_retransmits(self):
        plan = ClusterFaultPlan([ClusterFaultSpec(
            "lost_gradient", link=(0, SERVER), step=0, max_triggers=1)])
        ctx = FakeContext(injector=plan.injector())
        ParameterServerStrategy().exchange(ctx, 0, grads_for([0, 1]),
                                           [0, 1])
        assert "timeout" in ctx.kinds() and "retransmit" in ctx.kinds()

    def test_corrupt_payload_screened_and_retried(self):
        plan = ClusterFaultPlan([ClusterFaultSpec(
            "corrupt_gradient", link=(1, SERVER), step=0, max_triggers=1)])
        ctx = FakeContext(injector=plan.injector())
        aggregated = ParameterServerStrategy().exchange(
            ctx, 0, grads_for([0, 1]), [0, 1])
        assert "corrupt_screened" in ctx.kinds()
        assert np.isfinite(aggregated[0]).all()

    def test_finite_overflow_screened_when_guardrail_set(self):
        ctx = FakeContext(injector=HugeOnceInjector(),
                          overflow_limit=1e6)
        aggregated = ParameterServerStrategy().exchange(
            ctx, 0, grads_for([0, 1]), [0, 1])
        screened = [e for e in ctx.events
                    if e.kind == "corrupt_screened"]
        assert len(screened) == 1
        # the rejection names the sender it blames and the screen that
        # fired, and the retransmitted clean copy goes through
        assert "from worker 0" in screened[0].detail
        assert "overflow limit" in screened[0].detail
        assert float(np.abs(aggregated[0]).max()) < 1e6

    def test_finite_overflow_passes_without_guardrail(self):
        ctx = FakeContext(injector=HugeOnceInjector())
        ParameterServerStrategy().exchange(ctx, 0, grads_for([0, 1]),
                                           [0, 1])
        assert "corrupt_screened" not in ctx.kinds()

    def test_exhausted_ps_link_raises_exchange_error(self):
        plan = ClusterFaultPlan([ClusterFaultSpec(
            "lost_gradient", link=(0, SERVER), step=0, max_triggers=None,
            duration_steps=1)])
        ctx = FakeContext(injector=plan.injector(), max_retries=1)
        with pytest.raises(ExchangeError) as excinfo:
            ParameterServerStrategy().exchange(ctx, 0, grads_for([0, 1]),
                                               [0, 1])
        assert excinfo.value.link == (0, SERVER)

    def test_dead_ring_link_raises_allreduce_broken(self):
        plan = ClusterFaultPlan([ClusterFaultSpec(
            "partition", link=(0, 1), step=0, duration_steps=5,
            max_triggers=None)])
        ctx = FakeContext(injector=plan.injector(), max_retries=1)
        with pytest.raises(AllReduceBroken):
            RingAllReduceStrategy().exchange(ctx, 0, grads_for([0, 1]),
                                             [0, 1])

    def test_retransmit_charges_sender_timeout_charges_receiver(self):
        plan = ClusterFaultPlan([ClusterFaultSpec(
            "lost_gradient", link=(0, SERVER), step=0, max_triggers=1)])
        ctx = FakeContext(injector=plan.injector())
        before = ctx.clock.now(0)
        ParameterServerStrategy().push(ctx, 0, 0, [np.ones(1,
                                                           np.float32)])
        assert ctx.clock.now(0) > before          # sender backoff
        timeout = [e for e in ctx.events if e.kind == "timeout"]
        assert timeout[0].worker == SERVER         # receiver waited

    def test_registry(self):
        assert isinstance(make_strategy("ps"), ParameterServerStrategy)
        assert isinstance(make_strategy("allreduce"),
                          RingAllReduceStrategy)
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("gossip")
