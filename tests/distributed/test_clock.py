"""Cluster clock and interconnect pricing."""

import pytest

from repro.distributed import SERVER, ClusterClock, ClusterModel


class TestClusterClock:

    def test_advance_and_barrier(self):
        clock = ClusterClock([0, 1, 2])
        clock.advance(0, 1.0)
        clock.advance(1, 3.0)
        frontier = clock.barrier()
        assert frontier == 3.0
        assert all(clock.now(w) == 3.0 for w in clock.workers)

    def test_partial_barrier_leaves_others(self):
        clock = ClusterClock([0, 1, 2])
        clock.advance(2, 5.0)
        clock.advance(0, 1.0)
        clock.barrier([0, 1])
        assert clock.now(0) == clock.now(1) == 1.0
        assert clock.now(2) == 5.0

    def test_joiner_starts_at_frontier(self):
        clock = ClusterClock([0])
        clock.advance(0, 2.0)
        clock.add_worker(7)
        assert clock.now(7) == 2.0

    def test_negative_advance_clamped(self):
        clock = ClusterClock([0])
        clock.advance(0, -1.0)
        assert clock.now(0) == 0.0

    def test_elapsed_is_furthest_timeline(self):
        clock = ClusterClock([0, 1])
        clock.advance(1, 4.0)
        assert clock.elapsed() == 4.0

    def test_remove_worker(self):
        clock = ClusterClock([0, 1])
        clock.remove_worker(1)
        assert clock.workers == [0]

    def test_worker_view_implements_clock_protocol(self):
        clock = ClusterClock([3])
        view = clock.for_worker(3)
        assert view.now() == 0.0
        view.sleep(0.5)
        assert view.now() == 0.5
        assert clock.now(3) == 0.5


class TestClusterModel:

    def test_single_worker_exchanges_are_free(self):
        model = ClusterModel()
        assert model.allreduce_seconds(1e6, 1) == 0.0
        assert model.ps_seconds(1e6, 1) == 0.0

    def test_ps_serializes_at_the_server_link(self):
        # Beyond two workers the ring's 2(K-1)/K volume beats the
        # server's 2K volume — the fallback must be a real degradation.
        model = ClusterModel()
        for workers in (4, 8, 16):
            assert model.ps_seconds(1e7, workers) > \
                model.allreduce_seconds(1e7, workers)

    def test_allreduce_volume_grows_sublinearly(self):
        model = ClusterModel(latency=0.0)
        # 2(K-1)/K -> 2: doubling K beyond a few workers barely moves it
        t8 = model.allreduce_seconds(1e7, 8)
        t16 = model.allreduce_seconds(1e7, 16)
        assert t16 / t8 == pytest.approx(1.0, abs=0.08)

    def test_server_id_is_not_a_worker_id(self):
        assert SERVER == -1
