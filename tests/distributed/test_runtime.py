"""Cluster runtime units: recovery, backups, checkpoints, async mode."""

import json

import numpy as np
import pytest

from repro import workloads
from repro.distributed import (ClusterConfig, ClusterRuntime,
                               modeled_step_seconds, restore_cluster,
                               single_worker_reference)
from repro.framework.faults import ClusterFaultPlan, ClusterFaultSpec

WORKLOAD = "memnet"


def make_model():
    return workloads.create(WORKLOAD, config="tiny", seed=0)


def named_params(worker):
    session = worker.session
    return {session._variable_ops[key].name: value
            for key, value in session._variables.items()}


def params_equal(a, b):
    names_a, names_b = named_params(a), named_params(b)
    return set(names_a) == set(names_b) and all(
        np.array_equal(names_a[name], names_b[name]) for name in names_a)


def run_cluster(steps=3, faults=None, **kw):
    config = ClusterConfig(seed=0, **{"workers": 2, **kw})
    runtime = ClusterRuntime(make_model(), config=config, faults=faults)
    return runtime, runtime.run(steps)


class TestFaultFree:

    def test_all_replicas_bit_identical_after_every_run(self):
        runtime, _ = run_cluster(workers=3)
        workers = list(runtime.workers.values())
        assert all(params_equal(workers[0], w) for w in workers[1:])

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ClusterConfig(workers=0)
        with pytest.raises(ValueError, match="staleness"):
            ClusterConfig(strategy="allreduce", staleness=2)

    def test_modeled_compute_price_is_deterministic(self):
        assert modeled_step_seconds(make_model()) == \
            modeled_step_seconds(make_model())

    def test_elapsed_time_accumulates(self):
        _, result = run_cluster()
        assert result.elapsed_seconds > 0.0

    def test_result_json_round_trips(self):
        _, result = run_cluster(faults=ClusterFaultPlan(
            [ClusterFaultSpec("worker_crash", worker=1, step=1)]))
        blob = json.loads(json.dumps(result.to_json()))
        assert blob["workers"] == 2
        assert any(e["kind"] == "crash" for e in blob["events"])


class TestCrashRecovery:

    def test_crash_trajectory_matches_fault_free(self):
        _, clean = run_cluster()
        faults = ClusterFaultPlan(
            [ClusterFaultSpec("worker_crash", worker=1, step=1)])
        runtime, faulted = run_cluster(faults=faults)
        assert faulted.losses == clean.losses
        kinds = [e.kind for e in faulted.events]
        assert kinds[:3] == ["crash", "restart", "recover"]

    def test_recovery_restores_bit_identical_parameters(self):
        clean_runtime, _ = run_cluster()
        faults = ClusterFaultPlan(
            [ClusterFaultSpec("worker_crash", worker=0, step=2)])
        crashed_runtime, _ = run_cluster(faults=faults)
        assert params_equal(clean_runtime.workers[0],
                            crashed_runtime.workers[0])

    def test_crash_replays_from_periodic_checkpoint(self):
        _, clean = run_cluster(steps=5)
        faults = ClusterFaultPlan(
            [ClusterFaultSpec("worker_crash", worker=1, step=4)])
        _, faulted = run_cluster(steps=5, faults=faults,
                                 checkpoint_every=2)
        assert faulted.losses == clean.losses
        recover = [e for e in faulted.events if e.kind == "recover"]
        assert "rolled back to step 4" in recover[0].detail


class TestBackupWorkers:

    def test_straggler_dropped_backup_promoted(self):
        faults = ClusterFaultPlan(
            [ClusterFaultSpec("straggler", worker=0, step=1,
                              delay_seconds=5.0)])
        _, clean = run_cluster(workers=3)
        _, faulted = run_cluster(workers=3, backup_workers=1,
                                 faults=faults)
        assert faulted.losses == clean.losses
        kinds = [e.kind for e in faulted.events]
        assert "straggler" in kinds and "backup_promote" in kinds

    def test_fault_free_backups_change_nothing(self):
        _, plain = run_cluster()
        _, mirrored = run_cluster(backup_workers=2)
        assert mirrored.losses == plain.losses
        assert [e.kind for e in mirrored.events] == []


class TestDiskCheckpoints:

    def test_persisted_checkpoint_restores_on_more_workers(self, tmp_path):
        directory = tmp_path / "ckpt"
        runtime, _ = run_cluster(steps=2, checkpoint_every=2,
                                 checkpoint_dir=directory)
        restored, manifest = restore_cluster(
            make_model(), directory, config=ClusterConfig(workers=4,
                                                          seed=0))
        assert manifest["step"] == 2
        assert manifest["workers"] == 2
        assert len(restored.workers) == 4
        assert params_equal(runtime.workers[0], restored.workers[3])

    def test_replicated_checkpoint_restores_elastically(self, tmp_path):
        directory = tmp_path / "ckpt"
        runtime, _ = run_cluster(steps=2, checkpoint_every=2,
                                 checkpoint_dir=directory,
                                 checkpoint_replicas=3)
        manifest = json.loads(
            (directory / "cluster-manifest.json").read_text())
        assert manifest["storage"]["replicas"] == 3
        assert manifest["storage"]["checkpoint_id"] == 0
        restored, loaded = restore_cluster(
            make_model(), directory, config=ClusterConfig(workers=3,
                                                          seed=0))
        assert loaded["step"] == 2 and len(restored.workers) == 3
        assert params_equal(runtime.workers[0], restored.workers[2])

    def test_replicated_checkpoint_survives_replica_damage(self,
                                                           tmp_path):
        """One replica wiped, another rotted: restore fails over and
        still lands on the exact committed bits."""
        import shutil
        directory = tmp_path / "ckpt"
        runtime, _ = run_cluster(steps=2, checkpoint_every=2,
                                 checkpoint_dir=directory,
                                 checkpoint_replicas=3)
        shutil.rmtree(directory / "replica-0")
        payloads = list((directory / "replica-1").rglob("payload"))
        assert payloads
        blob = bytearray(payloads[0].read_bytes())
        blob[100] ^= 0xFF
        payloads[0].write_bytes(bytes(blob))

        restored, _ = restore_cluster(make_model(), directory)
        assert params_equal(runtime.workers[0], restored.workers[0])

    def test_manifest_kind_checked(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "cluster-manifest.json").write_text(
            json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a cluster checkpoint"):
            restore_cluster(make_model(), directory)


class TestAsyncBoundedStaleness:

    def test_staleness_bound_forces_pulls(self):
        _, result = run_cluster(steps=4, staleness=1)
        pulls = [e for e in result.events if e.kind == "staleness"]
        assert pulls and all(e.strategy == "ps" for e in pulls)
        # lag never exceeds the bound: a pull at least every 2 steps
        assert all(np.isfinite(result.losses))

    def test_async_converges_on_memnet(self):
        _, result = run_cluster(steps=6, staleness=2)
        assert result.losses[-1] < result.losses[0] * 1.2
