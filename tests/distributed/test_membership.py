"""Elastic membership plans and their execution."""

import pytest

from repro import workloads
from repro.distributed import (ClusterConfig, ClusterRuntime,
                               MembershipChange, MembershipPlan,
                               single_worker_reference)


class TestMembershipPlan:

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="action"):
            MembershipChange(1, "promote", 0)

    def test_changes_sorted_and_filtered(self):
        plan = MembershipPlan([MembershipChange(3, "leave", 0),
                               MembershipChange(1, "join", 5)])
        assert plan.changes[0].step == 1
        assert [c.worker for c in plan.changes_at(3)] == [0]
        assert plan.changes_at(2) == []

    def test_elastic_helper(self):
        plan = MembershipPlan.elastic(1, 3, joiner=5, leaver=0)
        assert len(plan.changes) == 2


class TestElasticRuntime:

    def make_runtime(self, membership):
        model = workloads.create("memnet", config="tiny", seed=0)
        return ClusterRuntime(model, config=ClusterConfig(workers=2,
                                                          seed=0),
                              membership=membership)

    def test_join_and_leave_emit_events_and_reshard(self):
        runtime = self.make_runtime(MembershipPlan.elastic(
            1, 3, joiner=5, leaver=0))
        result = runtime.run(4)
        kinds = [e.kind for e in result.events]
        assert kinds == ["join", "reshard", "leave", "reshard"]
        assert len(result.losses) == 4

    def test_joiner_participates_in_sharding(self):
        runtime = self.make_runtime(MembershipPlan(
            [MembershipChange(1, "join", 9)]))
        runtime.run(2)
        assert sorted(runtime.workers) == [0, 1, 9]
        shards = sorted(w.shard for w in runtime.workers.values())
        assert shards == [0, 1, 2]

    def test_steady_membership_matches_reference(self):
        # A join at step 1 re-shards 2 -> 3; the first step must still be
        # bit-identical to a 2-shard single-worker step.
        runtime = self.make_runtime(MembershipPlan(
            [MembershipChange(1, "join", 2)]))
        result = runtime.run(1)
        reference = workloads.create("memnet", config="tiny", seed=0)
        ref_losses, _ = single_worker_reference(reference, 1, 2, seed=0)
        assert result.losses == ref_losses

    def test_removing_last_primary_rejected(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        runtime = ClusterRuntime(
            model, config=ClusterConfig(workers=1, seed=0),
            membership=MembershipPlan([MembershipChange(0, "leave", 0)]))
        with pytest.raises(ValueError, match="last primary"):
            runtime.run(1)

    def test_duplicate_join_rejected(self):
        runtime = self.make_runtime(MembershipPlan(
            [MembershipChange(0, "join", 1)]))
        with pytest.raises(ValueError, match="already a member"):
            runtime.run(1)
