"""Sharded pipeline: deterministic draws, replay cache, re-shard rules."""

import numpy as np
import pytest

from repro import workloads
from repro.distributed import ShardedPipeline


def make_pipeline():
    return ShardedPipeline(workloads.create("memnet", config="tiny", seed=0))


class TestShardedPipeline:

    def test_draws_one_feed_per_shard(self):
        pipeline = make_pipeline()
        feeds = pipeline.feeds_for_step(0, 3)
        assert len(feeds) == 3

    def test_replay_hits_the_cache(self):
        pipeline = make_pipeline()
        first = pipeline.feeds_for_step(0, 2)
        again = pipeline.feeds_for_step(0, 2)
        assert again is first

    def test_shards_differ_within_a_step(self):
        feeds = make_pipeline().feeds_for_step(0, 2)
        a, b = feeds[0], feeds[1]
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_steps_must_be_drawn_in_order(self):
        pipeline = make_pipeline()
        with pytest.raises(ValueError, match="step order"):
            pipeline.feeds_for_step(2, 2)

    def test_mid_step_reshard_rejected(self):
        pipeline = make_pipeline()
        pipeline.feeds_for_step(0, 2)
        with pytest.raises(ValueError, match="between steps"):
            pipeline.feeds_for_step(0, 3)

    def test_reshard_between_steps_is_legal(self):
        pipeline = make_pipeline()
        pipeline.feeds_for_step(0, 2)
        assert len(pipeline.feeds_for_step(1, 3)) == 3

    def test_evict_before_drops_old_steps(self):
        pipeline = make_pipeline()
        pipeline.feeds_for_step(0, 1)
        pipeline.feeds_for_step(1, 1)
        pipeline.evict_before(1)
        assert pipeline.cached_steps() == [1]

    def test_same_seed_same_feeds(self):
        a = make_pipeline().feeds_for_step(0, 2)
        b = make_pipeline().feeds_for_step(0, 2)
        for feed_a, feed_b in zip(a, b):
            # Distinct graphs, so compare by placeholder insertion order.
            for value_a, value_b in zip(feed_a.values(), feed_b.values()):
                np.testing.assert_array_equal(value_a, value_b)
