"""Cluster events: tracer family separation and trace persistence."""

from repro.distributed import (CLUSTER_EVENT_KINDS, ClusterEvent,
                               events_signature)
from repro.framework.resilience import FailureEvent
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer


def make_events():
    return [
        ClusterEvent(step=0, kind="checkpoint", detail="in-memory"),
        ClusterEvent(step=1, kind="crash", worker=1, detail="injected"),
        ClusterEvent(step=2, kind="timeout", worker=1, link=(0, 1),
                     strategy="allreduce", seconds_lost=0.05),
        ClusterEvent(step=2, kind="fallback", link=(0, 1),
                     strategy="allreduce", detail="ring broken"),
    ]


class TestClusterEvent:

    def test_signature_is_timing_free(self):
        a = ClusterEvent(step=2, kind="timeout", worker=1, link=(0, 1),
                         strategy="ps", seconds_lost=0.05, detail="x")
        b = ClusterEvent(step=2, kind="timeout", worker=1, link=(0, 1),
                         strategy="ps", seconds_lost=99.0, detail="y")
        assert a.signature() == b.signature()

    def test_events_signature_preserves_order(self):
        events = make_events()
        signature = events_signature(events)
        assert len(signature) == len(events)
        assert signature[1][1] == "crash"

    def test_every_runtime_kind_is_documented(self):
        assert "checkpoint" in CLUSTER_EVENT_KINDS
        assert "staleness" in CLUSTER_EVENT_KINDS


class TestTracerFamilies:

    def test_cluster_events_separated_from_failures(self):
        tracer = Tracer()
        tracer.record_event(FailureEvent(step=0, kind="retry",
                                         op_name="x"))
        for event in make_events():
            tracer.record_event(event)
        assert len(tracer.cluster_events()) == 4
        assert len(tracer.failure_events()) == 1
        assert [e.kind for e in tracer.cluster_events("crash")] == ["crash"]

    def test_fault_seconds_includes_cluster_losses(self):
        tracer = Tracer()
        for event in make_events():
            tracer.record_event(event)
        assert tracer.fault_seconds() == 0.05


class TestSerialization:

    def test_round_trip_preserves_cluster_events(self, tmp_path):
        tracer = Tracer()
        tracer.record_event(FailureEvent(step=0, kind="retry",
                                         op_name="x"))
        for event in make_events():
            tracer.record_event(event)
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        assert len(loaded.cluster_events()) == 4
        assert len(loaded.failure_events()) == 1
        restored = loaded.cluster_events()
        assert events_signature(restored) == \
            events_signature(make_events())
        # link tuples survive the JSON round trip as tuples
        assert restored[2].link == (0, 1)
        assert restored[2].seconds_lost == 0.05

    def test_interleaved_emit_order_restored(self, tmp_path):
        tracer = Tracer()
        tracer.record_event(make_events()[0])
        tracer.record_event(FailureEvent(step=1, kind="retry",
                                         op_name="x"))
        tracer.record_event(make_events()[1])
        path = tmp_path / "trace.jsonl"
        save_trace(tracer, path)
        loaded = load_trace(path)
        kinds = [e.kind for e in loaded.events]
        assert kinds == ["checkpoint", "retry", "crash"]
