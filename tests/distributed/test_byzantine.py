"""Byzantine resilience: corruption, attestation, reputation, recovery.

The threat model (docs/robustness.md): a byzantine worker sends
*plausible* gradients — finite values, right shapes — that the wire
NaN/Inf screen waves through. The defense is layered: statistics
nominate, a bitwise recompute audit convicts, ``screened_mean`` swaps
convicted shards for clean recomputes (keeping the committed trajectory
bit-identical to fault-free), and the reputation ledger escalates
repeat offenders through quarantine to eviction.
"""

import numpy as np
import pytest

from repro import workloads
from repro.distributed import (AttestationPolicy, ClusterConfig,
                               ClusterRuntime, GradientAttestor,
                               ReputationLedger, ReputationPolicy,
                               restore_cluster, single_worker_reference)
from repro.framework.faults import (BYZANTINE_FAULT_KINDS,
                                    ClusterFaultPlan, ClusterFaultSpec)

WORKLOAD = "memnet"
STEPS = 4
WORKERS = 3


def make_model():
    return workloads.create(WORKLOAD, config="tiny", seed=0)


def named_params(worker):
    session = worker.session
    return {session._variable_ops[key].name: value
            for key, value in session._variables.items()}


def params_equal(a, b):
    names_a, names_b = named_params(a), named_params(b)
    return set(names_a) == set(names_b) and all(
        np.array_equal(names_a[name], names_b[name]) for name in names_a)


def run_cluster(steps=STEPS, faults=None, **kw):
    config = ClusterConfig(seed=0, **{"workers": WORKERS,
                                      "strategy": "allreduce", **kw})
    runtime = ClusterRuntime(make_model(), config=config, faults=faults)
    return runtime, runtime.run(steps)


def plan_of(*specs):
    return ClusterFaultPlan(list(specs))


def ones(value=1.0):
    return [np.full((2, 3), value, dtype=np.float32)]


# -- the injector's source-corruption hook ----------------------------------


class TestInjectorCorruption:

    def test_scale_multiplies(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=0, scale_factor=4.0)).injector()
        out = injector.corrupt_gradients(0, 0, ones())
        np.testing.assert_array_equal(out[0], ones(4.0)[0])

    def test_only_the_named_worker_lies(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=0)).injector()
        assert injector.corrupt_gradients(1, 0, ones()) is None

    def test_signflip_negates(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_signflip", worker=1)).injector()
        out = injector.corrupt_gradients(1, 0, ones())
        np.testing.assert_array_equal(out[0], ones(-1.0)[0])

    def test_stale_skips_until_history_exists(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_stale", worker=0, max_triggers=None)).injector()
        # First step: no history to replay — the spec must not fire
        # (and must not consume a probability draw).
        assert injector.corrupt_gradients(0, 0, ones(1.0)) is None
        assert injector.signature() == ()
        out = injector.corrupt_gradients(0, 1, ones(2.0))
        np.testing.assert_array_equal(out[0], ones(1.0)[0])

    def test_drift_escalates_per_firing(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_drift", worker=0, drift_rate=0.5,
            max_triggers=None)).injector()
        factors = []
        for step in range(3):
            out = injector.corrupt_gradients(0, step, ones())
            factors.append(float(out[0].flat[0]))
        assert factors == [1.5, 2.0, 2.5]

    def test_matching_specs_compose_in_plan_order(self):
        injector = plan_of(
            ClusterFaultSpec("byzantine_scale", worker=0,
                             scale_factor=2.0),
            ClusterFaultSpec("byzantine_signflip", worker=0)).injector()
        out = injector.corrupt_gradients(0, 0, ones())
        np.testing.assert_array_equal(out[0], ones(-2.0)[0])

    def test_input_gradients_never_mutated(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_signflip", worker=0)).injector()
        grads = ones()
        injector.corrupt_gradients(0, 0, grads)
        np.testing.assert_array_equal(grads[0], ones()[0])

    def test_firings_recorded_against_the_worker(self):
        injector = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=2, step=1)).injector()
        injector.corrupt_gradients(2, 1, ones())
        assert injector.signature() == \
            ((1, "worker:2", "byzantine_scale", 0),)


# -- attestation statistics and the probe -----------------------------------


def contribution(shard, worker, grads):
    return (shard, worker, 0.0, grads)


class TestGradientAttestor:

    def test_probe_round_robin_covers_every_shard(self):
        attestor = GradientAttestor(seed=0)
        probes = [attestor.probe_shard(step, 3) for step in range(3)]
        assert sorted(probes) == [0, 1, 2]

    def test_probe_is_seed_deterministic(self):
        first = [GradientAttestor(seed=7).probe_shard(s, 5)
                 for s in range(5)]
        second = [GradientAttestor(seed=7).probe_shard(s, 5)
                  for s in range(5)]
        assert first == second

    def test_probe_disabled_and_throttled(self):
        off = GradientAttestor(AttestationPolicy(probe_every=0))
        assert off.probe_shard(0, 3) is None
        sparse = GradientAttestor(AttestationPolicy(probe_every=2))
        assert sparse.probe_shard(1, 3) is None
        assert sparse.probe_shard(2, 3) is not None

    def test_norm_outlier_nominated(self):
        attestor = GradientAttestor(seed=0)
        records = attestor.attest(0, [
            contribution(0, 0, ones()), contribution(1, 1, ones()),
            contribution(2, 2, ones(100.0))])
        assert records[0].reasons == () and records[1].reasons == ()
        assert records[2].norm_ratio == pytest.approx(100.0)
        assert any("norm_ratio" in r for r in records[2].reasons)

    def test_signflip_cosine_nominated(self):
        attestor = GradientAttestor(seed=0)
        records = attestor.attest(0, [
            contribution(0, 0, ones()), contribution(1, 1, ones()),
            contribution(2, 2, ones(-1.0))])
        assert records[2].cosine == pytest.approx(-1.0)
        assert any("cosine" in r for r in records[2].reasons)

    def test_repeated_digest_nominated(self):
        attestor = GradientAttestor(seed=0)
        replayed = ones(3.0)
        attestor.attest(0, [contribution(0, 0, ones(1.0)),
                            contribution(1, 1, replayed)])
        records = attestor.attest(1, [contribution(0, 0, ones(2.0)),
                                      contribution(1, 1, replayed)])
        assert records[0].reasons == ()
        assert any("digest" in r for r in records[1].reasons)

    def test_stale_window_zero_disables_digest_check(self):
        attestor = GradientAttestor(AttestationPolicy(stale_window=0))
        replayed = ones(3.0)
        attestor.attest(0, [contribution(0, 0, ones(1.0)),
                            contribution(1, 1, replayed)])
        records = attestor.attest(1, [contribution(0, 0, ones(2.0)),
                                      contribution(1, 1, replayed)])
        assert records[1].reasons == ()

    def test_forget_clears_the_digest_window(self):
        attestor = GradientAttestor(seed=0)
        replayed = ones(3.0)
        attestor.attest(0, [contribution(0, 0, ones(1.0)),
                            contribution(1, 1, replayed)])
        attestor.forget(1)
        records = attestor.attest(1, [contribution(0, 0, ones(2.0)),
                                      contribution(1, 1, replayed)])
        assert records[1].reasons == ()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="norm_ratio_limit"):
            AttestationPolicy(norm_ratio_limit=1.0)
        with pytest.raises(ValueError, match="cosine_floor"):
            AttestationPolicy(cosine_floor=-2.0)
        with pytest.raises(ValueError, match="min_peers"):
            AttestationPolicy(min_peers=1)


# -- the reputation ledger --------------------------------------------------


class TestReputationLedger:

    def observe_runs(self, ledger, verdicts, workers=(0, 1, 2)):
        actions = []
        for step, suspects in enumerate(verdicts):
            actions.extend(ledger.observe(step, set(suspects),
                                          set(workers)))
        return actions

    def test_quarantine_needs_a_streak(self):
        ledger = ReputationLedger()
        assert self.observe_runs(ledger, [{1}]) == []
        assert ledger.observe(1, {1}, {0, 1, 2}) == [("quarantine", 1)]

    def test_one_clean_step_resets_the_streak(self):
        ledger = ReputationLedger()
        actions = self.observe_runs(ledger, [{1}, set(), {1}])
        assert actions == []
        assert ledger.quarantined == set()

    def test_clean_audits_lift_quarantine(self):
        ledger = ReputationLedger()
        self.observe_runs(ledger, [{1}, {1}])
        assert 1 in ledger.quarantined
        actions = self.observe_runs(ledger, [set(), set()])
        assert ("lift", 1) in actions
        assert ledger.quarantined == set()

    def test_persistent_offender_is_evicted_once(self):
        ledger = ReputationLedger()
        actions = self.observe_runs(ledger, [{1}] * 6)
        assert actions == [("quarantine", 1), ("evict", 1)]
        assert ledger.evicted == {1}

    def test_forget_clears_every_trace(self):
        ledger = ReputationLedger()
        self.observe_runs(ledger, [{1}] * 4)
        ledger.forget(1)
        assert ledger.quarantined == ledger.evicted == set()
        assert self.observe_runs(ledger, [{1}]) == []

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="evict_after"):
            ReputationPolicy(quarantine_after=3, evict_after=3)
        with pytest.raises(ValueError, match="quarantine_after"):
            ReputationPolicy(quarantine_after=0)


# -- the config surface -----------------------------------------------------


class TestConfigValidation:

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError, match="aggregation"):
            ClusterConfig(aggregation="krum")

    def test_trim_requires_trimmed_mean(self):
        with pytest.raises(ValueError, match="trim"):
            ClusterConfig(aggregation="mean", trim=1)
        with pytest.raises(ValueError, match="trim"):
            ClusterConfig(aggregation="trimmed_mean", trim=-1)

    def test_async_mode_excludes_robustness(self):
        with pytest.raises(ValueError, match="synchronous"):
            ClusterConfig(strategy="ps", staleness=2,
                          aggregation="screened_mean")
        with pytest.raises(ValueError, match="synchronous"):
            ClusterConfig(strategy="ps", staleness=2,
                          attestation=AttestationPolicy())

    def test_screened_mean_implies_attestation(self):
        runtime, _ = run_cluster(steps=1, aggregation="screened_mean")
        assert runtime._attestor is not None
        plain, _ = run_cluster(steps=1)
        assert plain._attestor is None


# -- bit-identity of the screened path --------------------------------------


class TestScreenedMeanBitIdentity:

    def test_fault_free_screened_mean_is_bitwise_mean(self):
        _, mean_result = run_cluster()
        runtime, screened = run_cluster(aggregation="screened_mean")
        assert screened.losses == mean_result.losses
        assert screened.events == []
        reference, ref_worker = single_worker_reference(
            make_model(), STEPS, WORKERS)
        assert screened.losses == reference
        assert params_equal(runtime.workers[0], ref_worker)


# -- detection trails, one per byzantine kind -------------------------------

#: (kind, lying worker, fault step, spec overrides) — each chosen so
#: the statistics nominate on the very step the corruption fires:
#: 64x scale and 32x drift trip the norm-ratio limit, the stale replay
#: trips the digest window, and memnet's step-3 shard-0 gradient has a
#: +0.72 peer cosine, so its negation lands far below the -0.25 floor.
TRAILS = [
    ("byzantine_scale", 1, 1, {"scale_factor": 64.0}),
    ("byzantine_signflip", 0, 3, {}),
    ("byzantine_stale", 1, 2, {}),
    ("byzantine_drift", 2, 0, {"drift_rate": 31.0}),
]


class TestDetectionTrails:

    @pytest.mark.parametrize("kind,worker,step,overrides",
                             TRAILS, ids=[t[0] for t in TRAILS])
    def test_one_shot_liar_caught_same_step(self, kind, worker, step,
                                            overrides):
        faults = plan_of(ClusterFaultSpec(kind, worker=worker, step=step,
                                          max_triggers=1, **overrides))
        _, clean = run_cluster()
        _, result = run_cluster(faults=faults,
                                aggregation="screened_mean")
        suspects = result.events_of("gradient_suspect")
        assert [(e.step, e.worker) for e in suspects] == [(step, worker)]
        replays = result.events_of("shard_replay")
        assert [(e.step, e.worker) for e in replays] == [(step, worker)]
        # the clean recompute replaced the lie before aggregation: the
        # committed trajectory is bitwise the fault-free one
        assert result.losses == clean.losses
        assert any(sig[2] == kind for sig in result.injected)

    def test_trails_are_deterministic(self):
        faults = [plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=1, scale_factor=64.0,
            max_triggers=None)) for _ in range(2)]
        _, first = run_cluster(faults=faults[0],
                               aggregation="screened_mean")
        _, second = run_cluster(faults=faults[1],
                                aggregation="screened_mean")
        assert first.signature() == second.signature()
        assert first.losses == second.losses


# -- escalation: quarantine, eviction, and life after -----------------------


class TestPersistentAttacker:

    def attack(self, steps=5, **kw):
        faults = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=1, scale_factor=64.0,
            max_triggers=None))
        return run_cluster(steps=steps, faults=faults,
                           aggregation="screened_mean", **kw)

    def test_escalation_trail(self):
        runtime, result = self.attack()
        kinds = [(e.kind, e.step) for e in result.events]
        assert ("gradient_suspect", 0) in kinds
        assert ("quarantine", 1) in kinds
        assert ("evict", 3) in kinds
        assert ("leave", 4) in kinds
        assert ("reshard", 4) in kinds
        assert sorted(runtime.workers) == [0, 2]
        assert result.workers == 2

    def test_committed_trajectory_clean_until_reshard(self):
        _, clean = run_cluster(steps=5)
        _, result = self.attack()
        # every pre-eviction step was screened back to the fault-free
        # aggregate; after the leave the cluster re-shards 2 ways and
        # the trajectories legitimately diverge
        assert result.losses[:4] == clean.losses[:4]
        assert all(np.isfinite(loss) for loss in result.losses)

    def test_last_primary_is_never_evicted(self):
        faults = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=0, scale_factor=64.0,
            max_triggers=None))
        config = ClusterConfig(seed=0, workers=1, backup_workers=1,
                               strategy="ps",
                               aggregation="screened_mean",
                               attestation=AttestationPolicy())
        runtime = ClusterRuntime(make_model(), config=config,
                                 faults=faults)
        result = runtime.run(6)
        assert result.events_of("evict") == []
        assert 0 in runtime.workers


class TestRestoreAfterEviction:

    CONFIG = dict(seed=0, strategy="allreduce",
                  aggregation="screened_mean")

    def test_checkpoint_restores_onto_n_minus_1_workers(self, tmp_path):
        directory = tmp_path / "ckpt"
        faults = plan_of(ClusterFaultSpec(
            "byzantine_scale", worker=1, scale_factor=64.0,
            max_triggers=None))
        runtime, result = run_cluster(
            steps=5, faults=faults, aggregation="screened_mean",
            checkpoint_every=5, checkpoint_dir=directory)
        assert result.events_of("evict") and result.events_of("leave")
        restored, manifest = restore_cluster(
            make_model(), directory,
            config=ClusterConfig(workers=2, **self.CONFIG))
        # the post-eviction cluster is n-1 wide, and the checkpoint
        # carries exactly its parameters
        assert manifest["workers"] == 2 and manifest["step"] == 5
        assert params_equal(runtime.workers[0], restored.workers[0])
        # replay from the restored state is bit-identical run to run
        twin, _ = restore_cluster(
            make_model(), directory,
            config=ClusterConfig(workers=2, **self.CONFIG))
        first, second = restored.run(2), twin.run(2)
        assert first.losses == second.losses
        assert first.signature() == second.signature()
        assert params_equal(restored.workers[0], twin.workers[1])


# -- robust aggregation without attestation ---------------------------------


class TestRobustAggregation:

    ATTACK = dict(worker=1, scale_factor=64.0, max_triggers=None)

    def final_loss(self, **kw):
        _, result = run_cluster(
            faults=plan_of(ClusterFaultSpec("byzantine_scale",
                                            **self.ATTACK)), **kw)
        return result.losses[-1]

    def test_trimmed_mean_and_median_survive_a_minority_liar(self):
        _, clean = run_cluster()
        for aggregation in ("trimmed_mean", "coordinate_median"):
            final = self.final_loss(aggregation=aggregation)
            assert np.isfinite(final)
            assert final == pytest.approx(clean.losses[-1], rel=0.25), \
                aggregation

    def test_unscreened_mean_commits_the_lie(self):
        # Adam's per-parameter normalization bounds how far a scaled
        # gradient can push a single update, so the damage shows as
        # trajectory divergence rather than a loss blow-up — but it
        # *lands*: the unscreened mean leaves the fault-free
        # trajectory, where the screened path (TestDetectionTrails)
        # stays bitwise on it.
        _, clean = run_cluster()
        _, poisoned = run_cluster(
            faults=plan_of(ClusterFaultSpec("byzantine_scale",
                                            **self.ATTACK)))
        # losses are the pre-update forward: step 0 is untouched, every
        # later step reflects the poisoned parameters
        assert poisoned.losses[0] == clean.losses[0]
        assert poisoned.losses[1:] != clean.losses[1:]

    def test_trim_zero_degenerates_to_mean_bitwise(self):
        _, mean_result = run_cluster()
        _, trimmed = run_cluster(aggregation="trimmed_mean", trim=0)
        assert trimmed.losses == mean_result.losses


def test_byzantine_kinds_registry():
    assert BYZANTINE_FAULT_KINDS == ("byzantine_scale",
                                     "byzantine_signflip",
                                     "byzantine_stale",
                                     "byzantine_drift")
