"""Bit-for-bit equivalence of optimized plans across all workloads.

The compiler's contract is that optimization never changes numerics: a
fully optimized plan (identity elimination, constant folding, CSE, LSTM
fusion, dead-code elimination) must produce exactly the arrays the
structural plan produces — and the structural plan executes every
subgraph op in the classic interpreter's order, so it is the
pre-compiler behaviour by construction. These tests run every Fathom
workload both ways from identical seeds and assert exact equality, not
tolerance-based closeness.
"""

import numpy as np
import pytest

from repro import workloads
from repro.framework.session import Session

STEPS = 3


def _paired_models(name):
    """Two identically seeded models; the second runs unoptimized."""
    full = workloads.create(name, config="tiny", seed=0)
    structural = workloads.create(name, config="tiny", seed=0)
    structural.session = Session(structural.graph, seed=structural.seed + 1,
                                 optimize="none")
    assert full.session.options.describe() == "full"
    assert structural.session.options.describe() == "structural"
    return full, structural


@pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
def test_training_losses_bit_identical(name):
    full, structural = _paired_models(name)
    losses_full = full.run_training(steps=STEPS)
    losses_structural = structural.run_training(steps=STEPS)
    assert losses_full == losses_structural, name


@pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
def test_inference_outputs_bit_identical(name):
    full, structural = _paired_models(name)
    out_full = full.run_inference(steps=1)
    out_structural = structural.run_inference(steps=1)
    np.testing.assert_array_equal(out_full, out_structural)


@pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
def test_codegen_training_bit_identical(name):
    """The codegen backend's generated kernels are bit-for-bit equal to
    the plan interpreter on every workload's training fetches."""
    interp = workloads.create(name, config="tiny", seed=0)
    codegen = workloads.create(name, config="tiny", seed=0,
                               backend="codegen")
    assert codegen.session.options.describe() == "full+codegen"
    losses_interp = interp.run_training(steps=STEPS)
    losses_codegen = codegen.run_training(steps=STEPS)
    assert losses_interp == losses_codegen, name
    # The variable stores are keyed by op identity; both sessions
    # initialize variables in identical graph order, so compare values
    # pairwise in insertion order.
    for a, b in zip(interp.session._variables.values(),
                    codegen.session._variables.values()):
        np.testing.assert_array_equal(a, b)
    # The comparison must actually exercise generated kernels.
    plans = codegen.session._plans.values()
    assert any(plan.regions for plan in plans), name


def test_fusion_is_active_in_the_equivalence_check():
    """Guard: the seq2seq inference comparison above actually exercises
    the fused LSTM kernel, not a silently skipped pass."""
    model = workloads.create("seq2seq", config="tiny", seed=0)
    assert model.compile_plan("inference").fused_cells > 0


def test_fusion_fires_on_training_graphs():
    """Regression: fused_cells was 0 on every *training* graph because
    the backward pass reads the gate activations, which used to veto
    every match. Those escapes are now recovered from the fused op's
    cached-gates output, so seq2seq training must fuse."""
    model = workloads.create("seq2seq", config="tiny", seed=0)
    assert model.compile_plan("training").fused_cells > 0


def test_optimized_plans_do_eliminate_work():
    """Guard: 'full' genuinely differs from 'structural' — the
    equivalence is between different schedules, not identical ones."""
    model = workloads.create("memnet", config="tiny", seed=0)
    plan = model.compile_plan("training")
    assert plan.num_steps < plan.stats.ops_in
