"""Distributed chaos suite: the cluster must not perturb training.

Two acceptance bars (see docs/distributed.md):

* **Bit-identity** — fault-free synchronous data-parallel training must
  be *bit-identical* to single-worker training on the same global batch
  (gradient accumulation over the same shards), for every workload and
  both exchange strategies.
* **Fault transparency** — a cluster run under injected chaos (worker
  crash mid-step, straggler with backup workers, partition forcing the
  ring onto the PS path) must converge to exactly the fault-free loss
  trajectory, and the same seed must reproduce the same ordered
  ``ClusterEvent`` signature sequence.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import numpy as np
import pytest

from repro import workloads
from repro.distributed import (ClusterConfig, ClusterRuntime,
                               single_worker_reference)
from repro.framework.faults import ClusterFaultPlan, ClusterFaultSpec

TOTAL_STEPS = 3
WORKERS = 2

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")
ALL_WORKLOADS = tuple(workloads.WORKLOADS)

#: the chaos scenarios every workload must shrug off
SCENARIOS = {
    "crash": dict(
        config=dict(workers=WORKERS),
        faults=[ClusterFaultSpec("worker_crash", worker=1, step=1)]),
    "straggler-backups": dict(
        config=dict(workers=3, backup_workers=1),
        faults=[ClusterFaultSpec("straggler", worker=0, step=1,
                                 delay_seconds=5.0)]),
    "partition-fallback": dict(
        config=dict(workers=WORKERS, strategy="allreduce"),
        faults=[ClusterFaultSpec("partition", link=(0, 1), step=1,
                                 duration_steps=1)]),
    # A persistent 64x-scaled liar: attestation convicts it every step
    # and screened_mean swaps in the clean recompute, so even this
    # scenario is held to *bitwise* transparency. Three workers, not
    # two — a majority of honest peers keeps the norm median honest.
    "byzantine-screened": dict(
        config=dict(workers=3, aggregation="screened_mean"),
        faults=[ClusterFaultSpec("byzantine_scale", worker=1,
                                 scale_factor=64.0,
                                 max_triggers=None)]),
}


def make_model(name):
    return workloads.create(name, config="tiny", seed=0)


def cluster_losses(name, strategy="ps", faults=None, **kw):
    config = ClusterConfig(**{"workers": WORKERS, "strategy": strategy,
                              "seed": 0, **kw})
    plan = ClusterFaultPlan(faults, seed=0) if faults else None
    runtime = ClusterRuntime(make_model(name), config=config, faults=plan)
    return runtime.run(TOTAL_STEPS)


def reference_losses(name, shards=WORKERS):
    losses, _worker = single_worker_reference(make_model(name),
                                              TOTAL_STEPS, shards, seed=0)
    return losses


def assert_bit_identical(name, strategy):
    result = cluster_losses(name, strategy=strategy)
    assert result.losses == reference_losses(name), \
        f"{name}/{strategy}: distributed training diverged from the " \
        f"single-worker reference"
    assert result.events == []


def assert_chaos_transparent(name, scenario):
    spec = SCENARIOS[scenario]
    clean = cluster_losses(name, **spec["config"])
    faulted = cluster_losses(name, faults=spec["faults"],
                             **spec["config"])
    assert faulted.losses == clean.losses, \
        f"{name}/{scenario}: chaos perturbed the committed trajectory"
    assert faulted.events, f"{name}/{scenario}: no cluster events emitted"
    # Determinism: same seed, same ordered event signature sequence.
    replay = cluster_losses(name, faults=spec["faults"], **spec["config"])
    assert replay.signature() == faulted.signature()
    assert replay.injected == faulted.injected


class TestBitIdentityFast:
    """Tier-1: the anchor invariant on the fast subset, both strategies."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    @pytest.mark.parametrize("strategy", ("ps", "allreduce"))
    def test_matches_single_worker(self, name, strategy):
        assert_bit_identical(name, strategy)


class TestChaosFast:
    """Tier-1: every scenario on the fast subset."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_chaos_is_transparent(self, name, scenario):
        assert_chaos_transparent(name, scenario)


@pytest.mark.chaos
class TestBitIdentityMatrix:
    """All eight workloads, both strategies (pytest -m chaos)."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("strategy", ("ps", "allreduce"))
    def test_matches_single_worker(self, name, strategy):
        assert_bit_identical(name, strategy)


@pytest.mark.chaos
class TestChaosMatrix:
    """All eight workloads under every chaos scenario (pytest -m chaos)."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_chaos_is_transparent(self, name, scenario):
        assert_chaos_transparent(name, scenario)


EVICTION_STEPS = 5


def assert_byzantine_trail(name):
    """One persistent liar among three: the suspect → quarantine →
    evict → leave trail is identical on every workload, and the
    committed pre-eviction trajectory is bitwise fault-free."""
    config = dict(workers=3, aggregation="screened_mean")
    faults = [ClusterFaultSpec("byzantine_scale", worker=1,
                               scale_factor=64.0, max_triggers=None)]
    clean = ClusterRuntime(
        make_model(name),
        config=ClusterConfig(seed=0, **config)).run(EVICTION_STEPS)
    runtime = ClusterRuntime(
        make_model(name), config=ClusterConfig(seed=0, **config),
        faults=ClusterFaultPlan(faults, seed=0))
    result = runtime.run(EVICTION_STEPS)
    suspects = result.events_of("gradient_suspect")
    assert [e.step for e in suspects] == [0, 1, 2, 3], \
        f"{name}: detection latency crept above zero"
    assert all(e.worker == 1 for e in suspects)
    assert [e.step for e in result.events_of("quarantine")] == [1]
    assert [e.step for e in result.events_of("evict")] == [3]
    assert [e.step for e in result.events_of("leave")] == [4]
    assert sorted(runtime.workers) == [0, 2]
    assert result.losses[:4] == clean.losses[:4], \
        f"{name}: screening perturbed the committed trajectory"


def assert_robust_aggregation_converges(name):
    """f=1 < n/2 liar under trimmed_mean and coordinate_median (no
    attestation): the robust estimators keep training on course."""
    clean = cluster_losses(name, workers=3)
    faults = [ClusterFaultSpec("byzantine_scale", worker=1,
                               scale_factor=64.0, max_triggers=None)]
    for aggregation in ("trimmed_mean", "coordinate_median"):
        result = cluster_losses(name, workers=3, faults=faults,
                                aggregation=aggregation)
        assert all(np.isfinite(result.losses)), f"{name}/{aggregation}"
        assert result.losses[-1] == pytest.approx(clean.losses[-1],
                                                  rel=0.25), \
            f"{name}/{aggregation}: diverged from the fault-free loss"


class TestByzantineFast:
    """Tier-1: detection/eviction trails + robust aggregation on the
    fast subset."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_escalation_trail(self, name):
        assert_byzantine_trail(name)

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_robust_aggregation_converges(self, name):
        assert_robust_aggregation_converges(name)


@pytest.mark.chaos
class TestByzantineMatrix:
    """All eight workloads (pytest -m chaos)."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_escalation_trail(self, name):
        assert_byzantine_trail(name)

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_robust_aggregation_converges(self, name):
        assert_robust_aggregation_converges(name)


class TestCorruptGradientScreen:
    """Poisoned gradients must be screened, retried, and leave no trace
    in the parameters (the serving of satellite: guardrail machinery
    reused at the transport layer)."""

    def test_poison_never_reaches_parameters(self):
        faults = [ClusterFaultSpec("corrupt_gradient", link=(0, -1),
                                   step=1, max_triggers=1)]
        clean = cluster_losses("memnet")
        poisoned = cluster_losses("memnet", faults=faults)
        assert poisoned.losses == clean.losses
        kinds = [e.kind for e in poisoned.events]
        assert "corrupt_screened" in kinds and "retransmit" in kinds

    def test_inf_payload_screened_too(self):
        faults = [ClusterFaultSpec("corrupt_gradient", link=(0, -1),
                                   step=1, max_triggers=1, payload="inf")]
        result = cluster_losses("memnet", faults=faults)
        assert all(np.isfinite(result.losses))
