"""Distributed chaos suite: the cluster must not perturb training.

Two acceptance bars (see docs/distributed.md):

* **Bit-identity** — fault-free synchronous data-parallel training must
  be *bit-identical* to single-worker training on the same global batch
  (gradient accumulation over the same shards), for every workload and
  both exchange strategies.
* **Fault transparency** — a cluster run under injected chaos (worker
  crash mid-step, straggler with backup workers, partition forcing the
  ring onto the PS path) must converge to exactly the fault-free loss
  trajectory, and the same seed must reproduce the same ordered
  ``ClusterEvent`` signature sequence.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import numpy as np
import pytest

from repro import workloads
from repro.distributed import (ClusterConfig, ClusterRuntime,
                               single_worker_reference)
from repro.framework.faults import ClusterFaultPlan, ClusterFaultSpec

TOTAL_STEPS = 3
WORKERS = 2

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")
ALL_WORKLOADS = tuple(workloads.WORKLOADS)

#: the chaos scenarios every workload must shrug off
SCENARIOS = {
    "crash": dict(
        config=dict(workers=WORKERS),
        faults=[ClusterFaultSpec("worker_crash", worker=1, step=1)]),
    "straggler-backups": dict(
        config=dict(workers=3, backup_workers=1),
        faults=[ClusterFaultSpec("straggler", worker=0, step=1,
                                 delay_seconds=5.0)]),
    "partition-fallback": dict(
        config=dict(workers=WORKERS, strategy="allreduce"),
        faults=[ClusterFaultSpec("partition", link=(0, 1), step=1,
                                 duration_steps=1)]),
}


def make_model(name):
    return workloads.create(name, config="tiny", seed=0)


def cluster_losses(name, strategy="ps", faults=None, **kw):
    config = ClusterConfig(**{"workers": WORKERS, "strategy": strategy,
                              "seed": 0, **kw})
    plan = ClusterFaultPlan(faults, seed=0) if faults else None
    runtime = ClusterRuntime(make_model(name), config=config, faults=plan)
    return runtime.run(TOTAL_STEPS)


def reference_losses(name, shards=WORKERS):
    losses, _worker = single_worker_reference(make_model(name),
                                              TOTAL_STEPS, shards, seed=0)
    return losses


def assert_bit_identical(name, strategy):
    result = cluster_losses(name, strategy=strategy)
    assert result.losses == reference_losses(name), \
        f"{name}/{strategy}: distributed training diverged from the " \
        f"single-worker reference"
    assert result.events == []


def assert_chaos_transparent(name, scenario):
    spec = SCENARIOS[scenario]
    clean = cluster_losses(name, **spec["config"])
    faulted = cluster_losses(name, faults=spec["faults"],
                             **spec["config"])
    assert faulted.losses == clean.losses, \
        f"{name}/{scenario}: chaos perturbed the committed trajectory"
    assert faulted.events, f"{name}/{scenario}: no cluster events emitted"
    # Determinism: same seed, same ordered event signature sequence.
    replay = cluster_losses(name, faults=spec["faults"], **spec["config"])
    assert replay.signature() == faulted.signature()
    assert replay.injected == faulted.injected


class TestBitIdentityFast:
    """Tier-1: the anchor invariant on the fast subset, both strategies."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    @pytest.mark.parametrize("strategy", ("ps", "allreduce"))
    def test_matches_single_worker(self, name, strategy):
        assert_bit_identical(name, strategy)


class TestChaosFast:
    """Tier-1: every scenario on the fast subset."""

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_chaos_is_transparent(self, name, scenario):
        assert_chaos_transparent(name, scenario)


@pytest.mark.chaos
class TestBitIdentityMatrix:
    """All eight workloads, both strategies (pytest -m chaos)."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("strategy", ("ps", "allreduce"))
    def test_matches_single_worker(self, name, strategy):
        assert_bit_identical(name, strategy)


@pytest.mark.chaos
class TestChaosMatrix:
    """All eight workloads under every chaos scenario (pytest -m chaos)."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_chaos_is_transparent(self, name, scenario):
        assert_chaos_transparent(name, scenario)


class TestCorruptGradientScreen:
    """Poisoned gradients must be screened, retried, and leave no trace
    in the parameters (the serving of satellite: guardrail machinery
    reused at the transport layer)."""

    def test_poison_never_reaches_parameters(self):
        faults = [ClusterFaultSpec("corrupt_gradient", link=(0, -1),
                                   step=1, max_triggers=1)]
        clean = cluster_losses("memnet")
        poisoned = cluster_losses("memnet", faults=faults)
        assert poisoned.losses == clean.losses
        kinds = [e.kind for e in poisoned.events]
        assert "corrupt_screened" in kinds and "retransmit" in kinds

    def test_inf_payload_screened_too(self):
        faults = [ClusterFaultSpec("corrupt_gradient", link=(0, -1),
                                   step=1, max_triggers=1, payload="inf")]
        result = cluster_losses("memnet", faults=faults)
        assert all(np.isfinite(result.losses))
