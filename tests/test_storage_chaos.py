"""Storage chaos suite: the checkpoint durability matrix.

The acceptance bar (see docs/robustness.md): with replication N=3 the
``durability`` oracle holds on *every* single-fault and fault-pair
storage schedule the campaign enumerates under a budget of 40 — torn
writes, bit rot, stale reads, full disks, slow I/O, and outages, alone
and in pairs. Strip the redundancy (N=1) and the very same campaign
provably breaks: silent-corruption atoms land inside *committed*
archives, the oracle convicts them, and ddmin shrinks every violation
to a single-atom reproducer that replays from its file alone.

A fast two-workload bitwise-identity check (store transport vs the
pre-existing file transport) runs in tier-1; the full eight-workload
matrix runs under ``pytest -m chaos``.
"""

import json

import pytest

from repro import workloads
from repro.chaos import (CampaignSpec, replay_reproducer, run_campaign,
                         write_reproducer)
from repro.chaos.harnesses import StorageHarness
from repro.framework import checkpoint
from repro.framework.clock import VirtualClock
from repro.storage import (MemoryStore, ReplicatedCheckpointStore,
                           state_digests)
from repro.workloads import WORKLOAD_NAMES

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")

#: the matrix spec from docs/robustness.md: every singleton and pair of
#: the harness's eight storage atoms fits in a budget of 40
MATRIX = dict(harness="storage", budget=40, steps=4,
              oracles=("durability",))


class TestDurabilityMatrix:
    def test_replicated_archive_survives_every_schedule(self):
        """N=3: all 8 single-fault and 28 fault-pair schedules pass."""
        result = run_campaign(CampaignSpec(**MATRIX))
        assert result.ok, [v.to_json() for v in result.violations]
        assert result.executed == 36
        assert result.schedule_space == 36  # nothing was sampled away

    def test_single_replica_provably_fails(self):
        """N=1: the same campaign convicts the silent-corruption atoms,
        and every violation ddmins to a single fault."""
        result = run_campaign(CampaignSpec(replicas=1, **MATRIX))
        assert not result.ok
        minimized = [v.minimized or v.plan for v in result.violations]
        assert all(len(plan.specs) == 1 for plan in minimized)
        kinds = {plan.specs[0].kind for plan in minimized}
        assert {"bit_rot", "torn_write"} <= kinds
        # Loud failures are not durability violations: a full disk or an
        # outage on the only replica fails the *commit*, and an
        # uncommitted checkpoint promises nothing.
        assert not {"disk_full", "store_down"} & kinds

    def test_violations_are_deterministic(self):
        spec = CampaignSpec(replicas=1, **MATRIX)
        first = run_campaign(spec)
        second = run_campaign(spec)
        assert [(v.schedule_index, v.oracle, v.detail)
                for v in first.violations] \
            == [(v.schedule_index, v.oracle, v.detail)
                for v in second.violations]

    def test_reproducer_replays_from_its_file_alone(self, tmp_path):
        harness = StorageHarness(replicas=1)
        result = run_campaign(CampaignSpec(replicas=1, **MATRIX),
                              harness=harness)
        violation = next(
            v for v in result.violations
            if (v.minimized or v.plan).specs[0].kind == "torn_write")
        path = tmp_path / "torn.json"
        blob = write_reproducer(path, harness, violation)
        assert blob["replicas"] == 1  # the recipe pins the replica count

        verdicts, replayed = replay_reproducer(path)
        assert replayed["plan"]["specs"][0]["kind"] == "torn_write"
        assert any(not v.ok for v in verdicts)

    def test_baseline_run_is_clean(self):
        """No faults: every attempt commits, restores bitwise, and the
        newest committed checkpoint is what restore-latest lands on."""
        harness = StorageHarness()
        outcome = harness.baseline()
        durability = outcome.extras["durability"]
        assert durability["replicas"] == 3
        assert all(a["committed"] for a in durability["attempts"])
        assert all(r["ok"] for r in durability["restores"])
        latest = durability["latest"]
        assert latest["ok"]
        assert latest["matches"] == max(
            a["id"] for a in durability["attempts"])
        assert durability["unrecoverable"] == 0


def assert_store_transport_is_bitwise_identical(name):
    """Fault-free, checkpointing through the replicated store restores
    the exact same bits as the pre-existing file path — per workload."""
    model = workloads.create(name, config="tiny", seed=0)
    for _ in range(2):
        model.session.run([model.loss, model.train_step],
                          feed_dict=model.sample_feed(training=True))
    reference = state_digests(model.session)

    clock = VirtualClock()
    store = ReplicatedCheckpointStore(
        [MemoryStore(store_id=i, clock=clock) for i in range(3)])
    record = store.save(model.session, step=2)
    assert record.committed

    via_store = workloads.create(name, config="tiny", seed=99)
    store.restore(via_store.session)
    assert state_digests(via_store.session) == reference


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_store_transport_bitwise_fast(name):
    assert_store_transport_is_bitwise_identical(name)


@pytest.mark.chaos
@pytest.mark.parametrize("name", [n for n in WORKLOAD_NAMES
                                  if n not in FAST_WORKLOADS])
def test_store_transport_bitwise_matrix(name):
    assert_store_transport_is_bitwise_identical(name)


class TestStorageChaosCli:
    def test_matrix_green_via_cli(self, capsys, tmp_path):
        from repro.cli import main
        report_path = tmp_path / "report.json"
        code = main(["chaos", "run", "--harness", "storage",
                     "--budget", "40", "--steps", "4",
                     "--oracle", "durability",
                     "--report-json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "all oracles held" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] and report["executed"] == 36
        assert report["spec"]["replicas"] is None

    def test_single_replica_violations_via_cli(self, capsys, tmp_path):
        from repro.cli import main
        code = main(["chaos", "run", "--harness", "storage",
                     "--replicas", "1", "--budget", "40",
                     "--steps", "4", "--oracle", "durability",
                     "--reproducer-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "minimal reproducer 1 fault(s)" in out
        assert "[bit_rot]" in out and "[torn_write]" in out
        reproducers = sorted(tmp_path.glob("repro-storage-*.json"))
        assert reproducers
        blob = json.loads(reproducers[0].read_text())
        assert blob["replicas"] == 1

    def test_storage_listed_as_a_harness(self, capsys):
        from repro.cli import main
        assert main(["chaos", "run", "--list-harnesses"]) == 0
        assert "storage" in capsys.readouterr().out
