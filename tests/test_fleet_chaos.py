"""Fleet chaos suite: the storm every workload must survive.

The acceptance bar (see docs/serving.md): one run throws a silent
balancer blackhole, a full zone outage, a correlated two-server crash,
*and* a defective rollout at the fleet while it is autoscaling under
load — and every accepted request still reaches exactly one terminal
reply. Queued work on dead servers is salvaged and re-routed, probes
discover the blackhole, and the canary comparator convicts the bad
deploy and rolls it back, deterministically.

The full eight-workload matrix runs under ``pytest -m chaos``; a fast
two-workload subset runs in the default (tier-1) suite.
"""

import pytest

from repro import workloads
from repro.framework.faults import FleetFaultPlan, FleetFaultSpec
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer
from repro.serving import (AutoscaleConfig, FleetConfig, LoadConfig,
                           LoadGenerator, ServingConfig, ServingFleet,
                           TenantSpec, VirtualClock)
from repro.workloads import WORKLOAD_NAMES

#: fast tier-1 subset; the chaos marker covers the full Table II matrix
FAST_WORKLOADS = ("memnet", "autoenc")

#: requests per scenario — enough to straddle every injected fault and
#: carry the rollout through conviction
REQUESTS = 96


def storm_fleet(name):
    """One fleet run under the full storm: blackhole, zone outage,
    correlated crash, and a slow bad rollout landing mid-load while
    the autoscaler is live — the CLI's ``--fault storm`` preset."""
    model = workloads.create(name, config="tiny", seed=0)
    tracer = Tracer()
    fleet = ServingFleet(
        model,
        FleetConfig(
            zones=("z0", "z1", "z2"), servers_per_zone=1,
            server=ServingConfig(replicas=1, queue_limit=32,
                                 default_deadline_ms=100.0,
                                 est_batch_ms=5.0, seed=2),
            tenants=(TenantSpec("gold", max_outstanding=24,
                                deadline_ms=80.0),
                     TenantSpec("std", max_outstanding=48)),
            autoscale=AutoscaleConfig(min_servers=2, max_servers=9,
                                      cooldown_seconds=0.02),
            rollout_at_seconds=0.08, rollout_version="v2",
            seed=0),
        tracer=tracer, clock=VirtualClock())
    fleet.install_faults(FleetFaultPlan([
        FleetFaultSpec("lb_blackhole", at_seconds=0.02,
                       duration_seconds=0.15),
        FleetFaultSpec("zone_outage", zone="z1", at_seconds=0.05,
                       duration_seconds=0.1),
        FleetFaultSpec("correlated_crash", count=2, at_seconds=0.12),
        FleetFaultSpec("bad_rollout", at_seconds=0.0, defect="slow"),
    ], seed=0))
    report = LoadGenerator(fleet, LoadConfig(
        requests=REQUESTS, qps=300.0, seed=3)).run()
    return model, tracer, fleet, report


def assert_survives_storm(name, tmp_path):
    model, tracer, fleet, report = storm_fleet(name)

    # Zero silent loss: every request terminates in exactly one reply
    # and the outcome counts account for all of them.
    assert sorted(fleet.replies) == list(range(REQUESTS))
    assert fleet.outstanding() == 0
    assert (report.ok + report.shed + report.deadline
            + report.error) == REQUESTS
    # Sheds happen at admission only; once accepted, a request ends in
    # ok/deadline/error — never silence.
    assert report.accepted == REQUESTS - report.shed
    assert report.ok + report.deadline + report.error == report.accepted

    # The storm actually happened, all four fronts of it.
    assert report.zone_outages == 1
    assert report.server_crashes == 2
    assert report.blackholed >= 1
    assert report.rollouts == 1 and report.rollbacks == 1

    # Salvage, not loss: blackholed and crashed work was re-routed.
    assert report.reroutes >= report.blackholed

    # The autoscaler acted in the same run the storm landed in.
    assert report.scale_ups + report.scale_downs >= 1

    # The rolled-back deploy left the fleet on the original version.
    survivors = fleet.servers_in("active", "draining")
    assert survivors and all(fs.deployment == "v1" for fs in survivors)

    # Per-tenant accounting closes: fleet totals are tenant sums.
    tenant_total = sum(t["accepted"] + t["shed"]
                       for t in fleet.tenant_counters.values())
    assert tenant_total == REQUESTS

    # The serialized trace carries the whole fleet story.
    path = tmp_path / f"{name}_fleet.jsonl"
    save_trace(tracer, path, metadata={"workload": name,
                                       "mode": "fleet"})
    loaded = load_trace(path)
    fleet_kinds = {e.kind for e in loaded.fleet_events()}
    assert {"zone_down", "zone_up", "server_crash", "blackhole",
            "reroute", "rollout_start", "rollback",
            "probe_fail"} <= fleet_kinds
    # Every terminal reply is in the trace (re-route-limit terminals
    # die off-server, so they carry no zone/server attribution and sit
    # in the serving slice rather than the fleet slice).
    replies = [e for e in loaded.serving_events() if e.kind == "reply"]
    assert len(replies) == report.ok + report.deadline + report.error


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_fleet_survives_storm_fast(name, tmp_path):
    assert_survives_storm(name, tmp_path)


@pytest.mark.chaos
@pytest.mark.parametrize("name", [n for n in WORKLOAD_NAMES
                                  if n not in FAST_WORKLOADS])
def test_fleet_survives_storm_matrix(name, tmp_path):
    assert_survives_storm(name, tmp_path)


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_fleet_storm_is_deterministic(name):
    """Two identical storm runs produce identical fault signatures,
    identical event trails (including the rollback), and identical
    reports — the debuggability bar for correlated-failure forensics."""
    _, _, first, first_report = storm_fleet(name)
    _, _, second, second_report = storm_fleet(name)
    assert first._injector.signature() == second._injector.signature()
    assert tuple(e.signature() for e in first.events) \
        == tuple(e.signature() for e in second.events)
    assert first_report.to_json() == second_report.to_json()
    rollbacks = [e for e in first.events if e.kind == "rollback"]
    assert len(rollbacks) == 1
