"""Tests for multi-device placement simulation."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.graph import get_default_graph
from repro.framework.placement import (DEFAULT_CPU_ONLY_TYPES,
                                       PlacementError, TransferModel,
                                       default_devices,
                                       gpu_with_cpu_fallback, place_all,
                                       simulate_schedule)


def chain_graph(length=4, size=64):
    """A linear chain of matmuls."""
    x = ops.constant(np.ones((size, size), dtype=np.float32), name="x")
    out = x
    for _ in range(length):
        out = ops.matmul(out, x)
    return out


class TestTransferModel:
    def test_latency_plus_bandwidth(self):
        model = TransferModel(bandwidth=1e9, latency=1e-5)
        assert model.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_free(self):
        assert TransferModel().transfer_time(0) == 0.0


class TestSimulateSchedule:
    def test_single_device_serializes(self, fresh_graph):
        out = chain_graph()
        ops_list = get_default_graph().subgraph([out])
        result = simulate_schedule(ops_list, place_all("cpu"),
                                   default_devices())
        # No overlap on a single device: makespan equals busy time.
        assert result.makespan == pytest.approx(result.device_busy["cpu"])
        assert result.transfer_bytes == 0.0

    def test_chain_respects_dependencies(self, fresh_graph):
        out = chain_graph()
        ops_list = get_default_graph().subgraph([out])
        result = simulate_schedule(ops_list, place_all("gpu"),
                                   default_devices())
        by_name = {s.op.name: s for s in result.scheduled}
        for scheduled in result.scheduled:
            for tensor in scheduled.op.inputs:
                if tensor.op.name in by_name:
                    assert scheduled.start >= by_name[tensor.op.name].end \
                        - 1e-12

    def test_cross_device_edge_pays_transfer(self, fresh_graph):
        a = ops.constant(np.ones((256, 256), dtype=np.float32), name="a")
        b = ops.matmul(a, a, name="on_gpu")
        c = ops.reduce_sum(b, name="on_cpu")
        ops_list = get_default_graph().subgraph([c])

        def placement(op):
            return "cpu" if op.name == "on_cpu" else "gpu"

        result = simulate_schedule(ops_list, placement, default_devices(),
                                   TransferModel(latency=1e-3))
        assert result.transfer_bytes == 256 * 256 * 4
        assert result.transfer_seconds > 1e-3

    def test_transferred_tensor_cached(self, fresh_graph):
        a = ops.constant(np.ones((64, 64), dtype=np.float32), name="a")
        b = ops.matmul(a, a, name="gpu_op")
        # Two CPU consumers of the same GPU tensor: one transfer only.
        c = ops.reduce_sum(b, name="cpu_1")
        d = ops.reduce_mean(b, name="cpu_2")

        def placement(op):
            return "cpu" if op.name.startswith("cpu_") else "gpu"

        ops_list = get_default_graph().subgraph([c, d])
        result = simulate_schedule(ops_list, placement, default_devices())
        assert result.transfer_bytes == 64 * 64 * 4

    def test_independent_ops_overlap_across_devices(self, fresh_graph):
        a = ops.constant(np.ones((512, 512), dtype=np.float32), name="a")
        gpu_out = ops.matmul(a, a, name="gpu_op")
        cpu_out = ops.matmul(a, a, name="cpu_op")
        merged = None

        def placement(op):
            # Constant lives on the CPU; only the gpu_op matmul crosses.
            return "gpu" if op.name == "gpu_op" else "cpu"

        ops_list = get_default_graph().subgraph([gpu_out, cpu_out])
        result = simulate_schedule(ops_list, placement, default_devices())
        # Independent work on two devices: makespan < sum of busy times.
        assert result.makespan < (result.device_busy["cpu"]
                                  + result.device_busy["gpu"]) - 1e-12

    def test_unknown_device_rejected(self, fresh_graph):
        out = chain_graph(length=1)
        ops_list = get_default_graph().subgraph([out])
        with pytest.raises(PlacementError, match="unknown device"):
            simulate_schedule(ops_list, place_all("tpu"), default_devices())

    def test_structural_ops_free(self, fresh_graph):
        value = ops.constant(np.ones((1024, 1024), dtype=np.float32))
        ops_list = get_default_graph().subgraph([value])
        result = simulate_schedule(ops_list, place_all("cpu"),
                                   default_devices())
        assert result.makespan == 0.0


class TestPlacementPolicies:
    def test_place_all(self, fresh_graph):
        out = chain_graph(length=1)
        assert place_all("gpu")(out.op) == "gpu"

    def test_fallback_pins_unsupported_types(self, fresh_graph):
        noise = ops.random_normal((4, 4))
        matmul = ops.matmul(noise, noise)
        placement = gpu_with_cpu_fallback()
        assert placement(noise.op) == "cpu"
        assert placement(matmul.op) == "gpu"

    def test_default_cpu_only_set(self):
        assert "CTCLoss" in DEFAULT_CPU_ONLY_TYPES
        assert "StandardRandomNormal" in DEFAULT_CPU_ONLY_TYPES
        assert "MatMul" not in DEFAULT_CPU_ONLY_TYPES


class TestPlacementStudy:
    def test_points_are_consistent(self):
        from repro.analysis.placement_study import study_workload
        from repro import workloads
        model = workloads.create("memnet", config="tiny", seed=0)
        point = study_workload(model)
        assert point.cpu_seconds > 0
        assert point.gpu_seconds > 0
        assert point.fallback_cpu_ops > 0  # scatter-adds fall back
        assert point.transfer_mb >= 0.0

    def test_pure_conv_net_immune(self):
        """deepq has no CPU-only op types, so fall-back == pure GPU."""
        from repro.analysis.placement_study import study_workload
        from repro import workloads
        model = workloads.create("deepq", config="tiny", seed=0)
        point = study_workload(model)
        assert point.fallback_cpu_ops == 0
        assert point.fallback_seconds == pytest.approx(point.gpu_seconds)

    def test_penalty_monotone_in_latency(self):
        from repro.analysis.placement_study import latency_sweep
        from repro import workloads
        model = workloads.create("memnet", config="tiny", seed=0)
        sweep = latency_sweep(model, latencies=(1e-5, 1e-4, 1e-3))
        penalties = [p.fallback_seconds for p in sweep.values()]
        assert all(a <= b + 1e-12 for a, b in zip(penalties, penalties[1:]))
