"""Correctness tests for neural-network operations.

Convolution and pooling are cross-checked against brute-force reference
implementations written directly from the definitions.
"""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError
from repro.framework.ops.nn_ops import conv_output_dim


def reference_conv2d(x, filt, strides, padding):
    """Direct six-loop convolution used as a test oracle."""
    batch, in_h, in_w, in_c = x.shape
    f_h, f_w, _, out_c = filt.shape
    s_h, s_w = strides
    out_h, pad_t, _ = conv_output_dim(in_h, f_h, s_h, padding)
    out_w, pad_l, _ = conv_output_dim(in_w, f_w, s_w, padding)
    padded = np.zeros((batch, in_h + f_h, in_w + f_w, in_c), dtype=x.dtype)
    padded[:, pad_t:pad_t + in_h, pad_l:pad_l + in_w, :] = x
    out = np.zeros((batch, out_h, out_w, out_c), dtype=np.float64)
    for b in range(batch):
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[b, i * s_h:i * s_h + f_h,
                               j * s_w:j * s_w + f_w, :]
                for k in range(out_c):
                    out[b, i, j, k] = np.sum(patch * filt[:, :, :, k])
    return out.astype(np.float32)


class TestConvOutputDim:
    def test_valid(self):
        assert conv_output_dim(10, 3, 1, "VALID") == (8, 0, 0)
        assert conv_output_dim(10, 3, 2, "VALID") == (4, 0, 0)

    def test_same(self):
        out, before, after = conv_output_dim(10, 3, 1, "SAME")
        assert out == 10
        assert before + after == 2

    def test_same_with_stride(self):
        out, _, _ = conv_output_dim(10, 3, 2, "SAME")
        assert out == 5

    def test_valid_too_small_rejected(self):
        with pytest.raises(ShapeError):
            conv_output_dim(2, 3, 1, "VALID")

    def test_unknown_padding_rejected(self):
        with pytest.raises(ShapeError, match="padding"):
            conv_output_dim(10, 3, 1, "FULL")


class TestConv2D:
    @pytest.mark.parametrize("padding", ["SAME", "VALID"])
    @pytest.mark.parametrize("strides", [(1, 1), (2, 2), (2, 1)])
    def test_matches_reference(self, session, rng, padding, strides):
        x = rng.standard_normal((2, 7, 8, 3)).astype(np.float32)
        filt = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
        out = session.run(ops.conv2d(ops.constant(x), ops.constant(filt),
                                     strides=strides, padding=padding))
        expected = reference_conv2d(x, filt, strides, padding)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_rejected(self):
        x = ops.constant(np.zeros((1, 8, 8, 3), dtype=np.float32))
        filt = ops.constant(np.zeros((3, 3, 4, 8), dtype=np.float32))
        with pytest.raises(ShapeError, match="channels"):
            ops.conv2d(x, filt)

    def test_output_shape_same_padding(self):
        x = ops.constant(np.zeros((2, 16, 16, 3), dtype=np.float32))
        filt = ops.constant(np.zeros((5, 5, 3, 8), dtype=np.float32))
        assert ops.conv2d(x, filt, strides=(2, 2)).shape == (2, 8, 8, 8)


class TestPooling:
    def test_max_pool_matches_reference(self, session, rng):
        x = rng.standard_normal((2, 6, 6, 3)).astype(np.float32)
        out = session.run(ops.max_pool(ops.constant(x), ksize=(2, 2),
                                       strides=(2, 2)))
        expected = x.reshape(2, 3, 2, 3, 2, 3).max(axis=(2, 4))
        np.testing.assert_allclose(out, expected)

    def test_max_pool_overlapping_windows(self, session, rng):
        x = rng.standard_normal((1, 5, 5, 1)).astype(np.float32)
        out = session.run(ops.max_pool(ops.constant(x), ksize=(3, 3),
                                       strides=(2, 2), padding="VALID"))
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 0, 0, 0] == x[0, :3, :3, 0].max()

    def test_avg_pool_matches_reference(self, session, rng):
        x = rng.standard_normal((2, 6, 6, 3)).astype(np.float32)
        out = session.run(ops.avg_pool(ops.constant(x), ksize=(2, 2),
                                       strides=(2, 2)))
        expected = x.reshape(2, 3, 2, 3, 2, 3).mean(axis=(2, 4))
        np.testing.assert_allclose(out, expected, rtol=1e-6)


class TestBiasAdd:
    def test_adds_to_trailing_axis(self, session, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        out = session.run(ops.bias_add(ops.constant(x), ops.constant(bias)))
        np.testing.assert_allclose(out, x + bias, rtol=1e-6)

    def test_wrong_bias_length_rejected(self):
        x = ops.constant(np.zeros((2, 4), dtype=np.float32))
        bias = ops.constant(np.zeros(3, dtype=np.float32))
        with pytest.raises(ShapeError, match="trailing"):
            ops.bias_add(x, bias)


class TestSoftmax:
    def test_rows_sum_to_one(self, session, rng):
        x = rng.standard_normal((5, 7)).astype(np.float32)
        out = session.run(ops.softmax(ops.constant(x)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-5)
        assert np.all(out >= 0.0)

    def test_stable_for_large_logits(self, session):
        x = np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32)
        out = session.run(ops.softmax(ops.constant(x)))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], rtol=1e-5)

    def test_log_softmax_consistent(self, session, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        log_out = session.run(ops.log_softmax(ops.constant(x)))
        soft_out = session.run(ops.softmax(ops.constant(x)))
        np.testing.assert_allclose(np.exp(log_out), soft_out, rtol=1e-5)


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self, session, rng):
        logits = rng.standard_normal((4, 6)).astype(np.float32)
        labels = np.eye(6, dtype=np.float32)[[0, 2, 5, 1]]
        out = session.run(ops.softmax_cross_entropy_with_logits(
            ops.constant(logits), ops.constant(labels)))
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1,
                                                         keepdims=True))
        expected = -(labels * log_probs).sum(axis=1)
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_perfect_prediction_near_zero_loss(self, session):
        logits = np.array([[100.0, 0.0, 0.0]], dtype=np.float32)
        labels = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        out = session.run(ops.softmax_cross_entropy_with_logits(
            ops.constant(logits), ops.constant(labels)))
        assert out[0] < 1e-3

    def test_shape_mismatch_rejected(self):
        logits = ops.constant(np.zeros((4, 6), dtype=np.float32))
        labels = ops.constant(np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.softmax_cross_entropy_with_logits(logits, labels)


class TestLRN:
    def test_matches_reference(self, session, rng):
        x = rng.standard_normal((2, 3, 3, 8)).astype(np.float32)
        radius, bias, alpha, beta = 2, 1.0, 1e-4, 0.75
        out = session.run(ops.lrn(ops.constant(x), depth_radius=radius,
                                  bias=bias, alpha=alpha, beta=beta))
        expected = np.empty_like(x)
        for c in range(8):
            lo, hi = max(0, c - radius), min(8, c + radius + 1)
            denom = bias + alpha * np.square(x[..., lo:hi]).sum(axis=-1)
            expected[..., c] = x[..., c] / denom ** beta
        np.testing.assert_allclose(out, expected, rtol=1e-5)


class TestDropout:
    def test_zeroes_expected_fraction(self, session):
        x = ops.constant(np.ones((200, 200), dtype=np.float32))
        out = session.run(ops.dropout(x, rate=0.3))
        zero_fraction = float((out == 0.0).mean())
        assert 0.25 < zero_fraction < 0.35

    def test_survivors_rescaled(self, session):
        x = ops.constant(np.ones((100, 100), dtype=np.float32))
        out = session.run(ops.dropout(x, rate=0.5))
        survivors = out[out != 0.0]
        np.testing.assert_allclose(survivors, 2.0, rtol=1e-6)

    def test_preserves_expectation(self, session):
        x = ops.constant(np.ones((300, 300), dtype=np.float32))
        out = session.run(ops.dropout(x, rate=0.4))
        assert abs(out.mean() - 1.0) < 0.02
