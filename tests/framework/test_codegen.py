"""Tests for the codegen backend: generated region kernels.

Covers the backend axis on :class:`PlanOptions` and the plan cache,
region formation and provenance maps, bit-identity with the plan
interpreter, the de-optimization path (a failing kernel demotes only its
own region, with blame pointing at the member op), guardrail screening
over region outputs, and the healing ladder's codegen quarantine.
"""

import re

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.codegen import (CompiledRegion, INLINE_TEMPLATES,
                                     blame_step, build_program)
from repro.framework.compiler import (PassQuarantine, PlanOptions,
                                      compile_plan)
from repro.framework.errors import ExecutionError
from repro.framework.faults import FaultPlan, FaultSpec
from repro.framework.graph import get_default_graph
from repro.framework.memory import K_REGION
from repro.framework.session import GuardrailPolicy, HealingPolicy, Session


def _codegen(level="full"):
    from dataclasses import replace
    return replace(PlanOptions.coerce(level), backend="codegen")


class TestBackendAxis:
    def test_coerce_and_describe(self):
        assert PlanOptions.coerce("codegen").backend == "codegen"
        assert PlanOptions.coerce("codegen").describe() == "full+codegen"
        assert PlanOptions.coerce("full+codegen").describe() \
            == "full+codegen"
        structural = PlanOptions.coerce("structural+codegen")
        assert structural.backend == "codegen"
        assert structural.describe() == "structural+codegen"
        assert PlanOptions.full().describe() == "full"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PlanOptions(backend="llvm")

    def test_quarantine_disables_codegen(self):
        quarantine = PassQuarantine()
        quarantine.quarantine("codegen", reason="test")
        filtered = quarantine.filter(_codegen())
        assert filtered.backend == "interp"
        assert filtered.fuse_lstm  # pass flags untouched

    def test_quarantine_rejects_unknown_pass(self):
        with pytest.raises(ValueError):
            PassQuarantine().quarantine("jit", reason="test")

    def test_session_backend_kwarg(self, fresh_graph):
        session = Session(fresh_graph, optimize="full", backend="codegen")
        assert session.options.describe() == "full+codegen"
        assert session.effective_options().backend == "codegen"

    def test_fork_inherits_backend(self, fresh_graph):
        ops.constant(1.0)
        session = Session(fresh_graph, optimize="full", backend="codegen")
        assert session.fork(seed=3).options.backend == "codegen"


def _chain_graph():
    """A plan with an elementwise chain worth a region."""
    x = ops.placeholder((4, 3), name="x")
    w = ops.variable(np.ones((3, 3), dtype=np.float32) * 0.5, name="w")
    y = ops.tanh(ops.matmul(x, w) + 1.0)
    z = ops.relu(y * 2.0)
    return x, z


class TestRegionFormation:
    def test_regions_cover_pure_chains(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], _codegen())
        assert plan.program is not None
        regions = plan.regions
        assert regions, "elementwise chain should form a region"
        covered = sum(len(region.steps) for region in regions)
        assert covered >= 4
        assert sum(region.collapsed for region in regions) >= 1
        # Placeholders and variables stay outside every region.
        for region in regions:
            for member in region.steps:
                assert member.op.type_name not in ("Placeholder",
                                                   "Variable")

    def test_interp_backend_has_no_program(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], "full")
        assert plan.program is None
        assert plan.regions == ()
        assert plan.kernel_sources() == []

    def test_codegen_pass_record_appended(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], _codegen())
        names = [record.name for record in plan.pass_records]
        assert names[:-1] == ["prune", "identity", "fold", "cse", "fuse",
                              "dce", "schedule"]
        assert names[-1] == "codegen"

    def test_kernel_sources_expose_generated_code(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], _codegen())
        sources = plan.kernel_sources()
        assert sources
        label, source = sources[0]
        assert source.startswith("def __region_kernel__(V, ctx, H):")
        assert "np.tanh" in source

    def test_provenance_map_names_member_steps(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], _codegen())
        region = plan.regions[0]
        members = set(region.steps)
        assert region.line_steps, "line->step provenance map is empty"
        for lineno, member in region.line_steps.items():
            assert member in members
            assert 1 < lineno <= len(region.source.splitlines()) + 1

    def test_impure_ops_break_regions(self, fresh_graph):
        x = ops.placeholder((2, 2), name="x")
        noisy = ops.add(x, ops.random_normal((2, 2)))
        out = ops.tanh(ops.relu(noisy) + 1.0)
        plan = compile_plan(get_default_graph(), [out], _codegen())
        for region in plan.regions:
            for member in region.steps:
                assert member.op.type_name != "RandomNormal"


class TestBitIdentity:
    def test_chain_outputs_identical(self, fresh_graph):
        x, z = _chain_graph()
        graph = get_default_graph()
        feed = np.random.default_rng(0).normal(size=(4, 3)) \
            .astype(np.float32)
        interp = Session(graph, seed=1, optimize="full")
        codegen = Session(graph, seed=1, optimize="full",
                          backend="codegen")
        a = interp.run(z, feed_dict={x: feed})
        b = codegen.run(z, feed_dict={x: feed})
        np.testing.assert_array_equal(a, b)

    def test_conv_network_identical(self, fresh_graph):
        rng = np.random.default_rng(0)
        x = ops.placeholder((2, 8, 8, 3), name="x")
        filt = ops.variable(rng.normal(size=(3, 3, 3, 4))
                            .astype(np.float32), name="f")
        y = ops.relu(ops.conv2d(x, filt, strides=(1, 1), padding="SAME"))
        out = ops.reduce_mean(y * y)
        graph = get_default_graph()
        feed = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        a = Session(graph, seed=1, optimize="full").run(
            out, feed_dict={x: feed})
        b = Session(graph, seed=1, optimize="full", backend="codegen").run(
            out, feed_dict={x: feed})
        np.testing.assert_array_equal(a, b)


class TestPlanCacheBackendAxis:
    def test_backend_is_a_cache_axis(self, fresh_graph):
        x, z = _chain_graph()
        graph = get_default_graph()
        feed = {x: np.ones((4, 3), dtype=np.float32)}
        session = Session(graph, seed=1, optimize="full",
                          backend="codegen")
        first = session.run(z, feed_dict=feed)
        assert session.compile(z).program is not None
        # Flip the backend: the cached codegen plan must not be served.
        from dataclasses import replace
        session.options = replace(session.options, backend="interp")
        second = session.run(z, feed_dict=feed)
        assert session.compile(z).program is None
        assert session.plan_compiles == 2
        np.testing.assert_array_equal(first, second)
        # Flip back: the original codegen plan is reused, not rebuilt.
        session.options = replace(session.options, backend="codegen")
        session.run(z, feed_dict=feed)
        assert session.plan_compiles == 2

    def test_safe_mode_disables_codegen(self, fresh_graph):
        x, z = _chain_graph()
        session = Session(get_default_graph(), seed=1, optimize="full",
                          backend="codegen")
        session.safe_mode = True
        assert session.effective_options().backend == "interp"
        session.run(z, feed_dict={x: np.ones((4, 3), dtype=np.float32)})
        plan = session.compile(z)
        assert plan.program is None
        assert plan.options.describe() == "structural"

    def test_healing_tiers_never_serve_stale_kernels(self, fresh_graph):
        x, z = _chain_graph()
        graph = get_default_graph()
        feed = {x: np.ones((4, 3), dtype=np.float32)}
        session = Session(graph, seed=1, optimize="full",
                          backend="codegen")
        full = session.run(z, feed_dict=feed)
        session.quarantine.quarantine("codegen", reason="test",
                                      sticky=False)
        demoted = session.run(z, feed_dict=feed)
        assert session.compile(z).program is None
        session.quarantine.lift_soft()
        restored = session.run(z, feed_dict=feed)
        assert session.compile(z).program is not None
        np.testing.assert_array_equal(full, demoted)
        np.testing.assert_array_equal(full, restored)


class TestRegionDeoptimization:
    def _session_with_fault(self, fresh_graph):
        x, z = _chain_graph()
        graph = get_default_graph()
        session = Session(graph, seed=1, optimize="full",
                          backend="codegen")
        feed = {x: np.ones((4, 3), dtype=np.float32)}
        session.run(z, feed_dict=feed)
        plan = session.compile(z)
        region = plan.regions[0]
        target = next(step.op for step in region.steps
                      if step.op.type_name == "Tanh")
        session.fault_injector = FaultPlan(
            [FaultSpec(kind="exception",
                       name_pattern=re.escape(target.name))]).injector()
        return session, z, feed, plan, region, target

    def test_fault_demotes_only_the_failing_region(self, fresh_graph):
        session, z, feed, plan, region, target = \
            self._session_with_fault(fresh_graph)
        with pytest.raises(ExecutionError) as excinfo:
            session.run(z, feed_dict=feed)
        # Blame names the member op, not the region; origin is codegen.
        assert excinfo.value.op_name == target.name
        assert excinfo.value.origin_pass == "codegen"
        assert region.deoptimized
        assert all(not other.deoptimized for other in plan.regions
                   if other is not region)
        event = session.degradation_log[-1]
        assert event.kind == "region_deopt"
        assert event.op_name == target.name
        assert event.pass_name == "codegen"

    def test_deoptimized_region_interprets_bit_identically(
            self, fresh_graph):
        session, z, feed, plan, region, target = \
            self._session_with_fault(fresh_graph)
        with pytest.raises(ExecutionError):
            session.run(z, feed_dict=feed)
        session.fault_injector = None
        after = session.run(z, feed_dict=feed)  # region interpreted
        reference = Session(get_default_graph(), seed=1,
                            optimize="full").run(z, feed_dict=feed)
        np.testing.assert_array_equal(after, reference)

    def test_healing_ladder_quarantines_codegen(self, fresh_graph):
        session, z, feed, plan, region, target = \
            self._session_with_fault(fresh_graph)
        healer = HealingPolicy(session)
        with pytest.raises(ExecutionError) as excinfo:
            session.run(z, feed_dict=feed)
        # Repeated blame on the same op reaches quarantine_after and
        # sticky-quarantines the blamed origin pass: codegen itself.
        healer.on_failure(excinfo.value, step=0)
        healer.on_failure(excinfo.value, step=1)
        assert session.quarantine.is_quarantined("codegen")
        assert session.effective_options().backend == "interp"

    def test_demote_soft_quarantines_codegen_with_passes(
            self, fresh_graph):
        x, z = _chain_graph()
        session = Session(get_default_graph(), seed=1, optimize="full",
                          backend="codegen")
        healer = HealingPolicy(session)
        assert healer.demote(step=0, blamed=z.op.name)
        assert session.quarantine.is_quarantined("codegen")
        effective = session.effective_options()
        assert effective == PlanOptions.structural()


class TestGuardrailsOverRegions:
    def _nan_graph(self):
        x = ops.placeholder((2, 2), name="x")
        y = ops.log(x)          # NaN for negative inputs
        out = ops.add(y * 2.0, 1.0)
        return x, out

    def test_raise_policy_names_member_op(self, fresh_graph):
        x, out = self._nan_graph()
        session = Session(get_default_graph(), seed=1, optimize="full",
                          backend="codegen")
        bad = np.array([[-1.0, 1.0], [1.0, 1.0]], dtype=np.float32)
        with pytest.raises(ExecutionError) as excinfo:
            session.run(out, feed_dict={x: bad},
                        guardrails="raise")
        assert "NaN" in str(excinfo.value)

    def test_zero_policy_patches_region_outputs(self, fresh_graph):
        x, out = self._nan_graph()
        session = Session(get_default_graph(), seed=1, optimize="full",
                          backend="codegen")
        bad = np.array([[-1.0, 1.0], [1.0, 1.0]], dtype=np.float32)
        result = session.run(out, feed_dict={x: bad}, guardrails="zero")
        assert np.isfinite(result).all()
        assert any(event.kind == "guardrail"
                   for event in session.degradation_log)


class TestBlameStep:
    def test_traceback_outside_kernel_returns_none(self, fresh_graph):
        x, z = _chain_graph()
        plan = compile_plan(get_default_graph(), [z], _codegen())
        region = plan.regions[0]
        try:
            raise RuntimeError("not from a kernel")
        except RuntimeError as exc:
            assert blame_step(region, exc) is None
