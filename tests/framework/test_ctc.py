"""Tests for the CTC loss: forward-backward vs. brute-force enumeration."""

import itertools

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError
from repro.framework.ops.loss_ops import (ctc_forward_backward,
                                          ctc_greedy_decode)


def brute_force_ctc(log_probs, labels, blank):
    """Sum path probabilities over every valid alignment by enumeration.

    A path is valid if collapsing repeats and removing blanks yields the
    label sequence. Exponential — only for tiny cases.
    """
    time_steps, num_classes = log_probs.shape
    total = 0.0
    for path in itertools.product(range(num_classes), repeat=time_steps):
        collapsed, prev = [], None
        for cls in path:
            if cls != prev and cls != blank:
                collapsed.append(cls)
            prev = cls
        if collapsed == list(labels):
            total += np.exp(sum(log_probs[t, c] for t, c in enumerate(path)))
    return -np.log(total)


def random_log_probs(rng, time_steps, num_classes):
    logits = rng.standard_normal((time_steps, num_classes))
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class TestForwardBackward:
    @pytest.mark.parametrize("labels", [[0], [0, 1], [1, 1], [0, 1, 0]])
    def test_loss_matches_brute_force(self, rng, labels):
        log_probs = random_log_probs(rng, time_steps=4, num_classes=3)
        blank = 2
        loss, _ = ctc_forward_backward(log_probs, np.array(labels), blank)
        expected = brute_force_ctc(log_probs, labels, blank)
        np.testing.assert_allclose(loss, expected, rtol=1e-5)

    def test_empty_label_sequence(self, rng):
        log_probs = random_log_probs(rng, time_steps=3, num_classes=2)
        blank = 1
        loss, grad = ctc_forward_backward(log_probs, np.array([], dtype=int),
                                          blank)
        # Only the all-blank path matches an empty label sequence.
        expected = -log_probs[:, blank].sum()
        np.testing.assert_allclose(loss, expected, rtol=1e-5)
        assert grad.shape == log_probs.shape

    def test_single_frame_single_label(self, rng):
        log_probs = random_log_probs(rng, time_steps=1, num_classes=3)
        loss, _ = ctc_forward_backward(log_probs, np.array([0]), blank=2)
        np.testing.assert_allclose(loss, -log_probs[0, 0], rtol=1e-5)

    def test_more_labels_than_frames_rejected(self, rng):
        log_probs = random_log_probs(rng, time_steps=2, num_classes=3)
        with pytest.raises(ShapeError):
            ctc_forward_backward(log_probs, np.array([0, 1, 0]), blank=2)

    def test_gradient_sums_to_zero_per_frame(self, rng):
        # grad = softmax - posterior; both rows sum to 1, so the gradient
        # rows must sum to 0.
        log_probs = random_log_probs(rng, time_steps=5, num_classes=4)
        _, grad = ctc_forward_backward(log_probs, np.array([0, 2]), blank=3)
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(5), atol=1e-4)


class TestCTCLossOp:
    def _build(self, rng, time_steps=6, batch=2, num_classes=4,
               max_labels=3):
        logits = ops.placeholder((time_steps, batch, num_classes),
                                 name="logits")
        labels = np.zeros((batch, max_labels), dtype=np.int32)
        labels[0, :2] = [0, 1]
        labels[1, :1] = [2]
        loss = ops.ctc_loss(
            logits,
            ops.constant(labels),
            ops.constant(np.array([2, 1], dtype=np.int32)),
            ops.constant(np.full(batch, time_steps, dtype=np.int32)))
        values = rng.standard_normal(
            (time_steps, batch, num_classes)).astype(np.float32)
        return logits, loss, values

    def test_per_example_losses_positive(self, session, rng):
        logits, loss, values = self._build(rng)
        out = session.run(loss, feed_dict={logits: values})
        assert out.shape == (2,)
        assert np.all(out > 0.0)

    def test_gradient_matches_numeric(self, session, rng):
        from tests.conftest import numeric_gradient
        logits, loss, values = self._build(rng)
        total = ops.reduce_sum(loss)
        grad = ops.gradients if False else None
        from repro.framework.autodiff import gradients
        grad = gradients(total, [logits])[0]
        analytic = session.run(grad, feed_dict={logits: values})
        for index in [(0, 0, 1), (3, 1, 2), (5, 0, 3)]:
            numeric = numeric_gradient(session, total, logits, values, index)
            np.testing.assert_allclose(analytic[index], numeric, rtol=5e-2,
                                       atol=1e-3)

    def test_confident_correct_logits_give_small_loss(self, session):
        # Frames that spell out the labels directly (with blanks) should
        # be nearly free.
        time_steps, batch, num_classes = 4, 1, 3
        logits_ph = ops.placeholder((time_steps, batch, num_classes))
        labels = np.array([[0, 1]], dtype=np.int32)
        loss = ops.ctc_loss(
            logits_ph, ops.constant(labels),
            ops.constant(np.array([2], dtype=np.int32)),
            ops.constant(np.array([time_steps], dtype=np.int32)))
        strong = np.full((time_steps, batch, num_classes), -20.0,
                         dtype=np.float32)
        for t, cls in enumerate([0, 0, 1, 1]):
            strong[t, 0, cls] = 20.0
        out = session.run(loss, feed_dict={logits_ph: strong})
        assert out[0] < 1e-2

    def test_bad_rank_rejected(self):
        logits = ops.constant(np.zeros((4, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.ctc_loss(logits, ops.constant(np.zeros((2, 1), np.int32)),
                         ops.constant(np.ones(2, np.int32)),
                         ops.constant(np.ones(2, np.int32)))


class TestGreedyDecode:
    def test_collapses_repeats_and_blanks(self):
        # classes: 0, 1, blank=2
        frames = np.full((6, 1, 3), -10.0, dtype=np.float32)
        sequence = [0, 0, 2, 1, 1, 2]
        for t, cls in enumerate(sequence):
            frames[t, 0, cls] = 10.0
        assert ctc_greedy_decode(frames, blank=2) == [[0, 1]]

    def test_repeated_label_requires_blank_between(self):
        frames = np.full((5, 1, 3), -10.0, dtype=np.float32)
        for t, cls in enumerate([0, 2, 0, 2, 0]):
            frames[t, 0, cls] = 10.0
        assert ctc_greedy_decode(frames, blank=2) == [[0, 0, 0]]

    def test_batch_decoding(self):
        frames = np.full((3, 2, 3), -10.0, dtype=np.float32)
        for t, cls in enumerate([0, 1, 2]):
            frames[t, 0, cls] = 10.0
        for t, cls in enumerate([2, 2, 1]):
            frames[t, 1, cls] = 10.0
        assert ctc_greedy_decode(frames, blank=2) == [[0, 1], [1]]
