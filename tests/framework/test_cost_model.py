"""Tests for analytic work estimates."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.cost_model import (WorkEstimate, conv2d_work,
                                        data_movement_work, elementwise_work,
                                        matmul_work, num_elements,
                                        reduction_work)


class TestWorkEstimate:
    def test_addition_combines(self):
        a = WorkEstimate(flops=10, bytes_moved=20, trip_count=5)
        b = WorkEstimate(flops=1, bytes_moved=2, trip_count=50)
        total = a + b
        assert total.flops == 11
        assert total.bytes_moved == 22
        assert total.trip_count == 50  # max, not sum

    def test_zero(self):
        zero = WorkEstimate.zero()
        assert zero.flops == 0.0
        assert zero.trip_count == 1.0


class TestFormulas:
    def test_num_elements(self):
        assert num_elements((2, 3, 4)) == 24
        assert num_elements(()) == 1

    def test_matmul_flops(self):
        work = matmul_work(8, 16, 32)
        assert work.flops == 2 * 8 * 16 * 32
        assert work.trip_count == 8 * 32

    def test_conv_flops(self):
        work = conv2d_work(batch=2, out_h=4, out_w=4, out_c=8,
                           filter_h=3, filter_w=3, in_c=3)
        assert work.flops == 2 * 3 * 3 * 3 * (2 * 4 * 4 * 8)
        assert work.trip_count == 2 * 4 * 4 * 8

    def test_reduction_trip_count_is_output_size(self):
        work = reduction_work((128, 128), ())
        assert work.trip_count == 1.0
        work = reduction_work((128, 128), (128,))
        assert work.trip_count == 128.0

    def test_data_movement_has_no_flops(self):
        work = data_movement_work(1000)
        assert work.flops == 0.0
        assert work.bytes_moved == 4 * 2000

    def test_elementwise_counts_operands(self):
        unary = elementwise_work((10,), n_inputs=1)
        binary = elementwise_work((10,), n_inputs=2)
        assert binary.bytes_moved > unary.bytes_moved


class TestOpWorkIntegration:
    def test_matmul_op_reports_matmul_work(self):
        a = ops.constant(np.zeros((8, 16), dtype=np.float32))
        b = ops.constant(np.zeros((16, 32), dtype=np.float32))
        work = ops.matmul(a, b).op.work()
        assert work.flops == 2 * 8 * 16 * 32

    def test_transposed_matmul_same_flops(self):
        a = ops.constant(np.zeros((16, 8), dtype=np.float32))
        b = ops.constant(np.zeros((16, 32), dtype=np.float32))
        work = ops.matmul(a, b, transpose_a=True).op.work()
        assert work.flops == 2 * 8 * 16 * 32

    def test_conv_backward_ops_cost_like_forward(self, rng):
        x = ops.constant(rng.standard_normal((2, 8, 8, 3)).astype(np.float32))
        filt = ops.constant(
            rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        out = ops.conv2d(x, filt)
        from repro.framework.autodiff import gradients
        loss = ops.reduce_sum(out)
        gradients(loss, [filt])
        graph = out.graph
        forward = next(op for op in graph.operations
                       if op.type_name == "Conv2D")
        backward = next(op for op in graph.operations
                        if op.type_name == "Conv2DBackpropFilter")
        assert backward.work().flops == forward.work().flops

    def test_work_memoized(self):
        a = ops.constant(np.zeros((4, 4), dtype=np.float32))
        op = ops.matmul(a, a).op
        assert op.work() is op.work()

    def test_reduction_to_scalar_serial(self):
        x = ops.constant(np.zeros((64, 64), dtype=np.float32))
        work = ops.reduce_sum(x).op.work()
        assert work.trip_count == 1.0

    def test_ctc_trip_count_is_batch(self):
        logits = ops.constant(np.zeros((10, 4, 5), dtype=np.float32))
        labels = ops.constant(np.zeros((4, 3), dtype=np.int32))
        lengths = ops.constant(np.ones(4, dtype=np.int32))
        frames = ops.constant(np.full(4, 10, dtype=np.int32))
        loss = ops.ctc_loss(logits, labels, lengths, frames)
        assert loss.op.work().trip_count == 4.0
