"""Tests for graph export and structural statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.framework import ops
from repro.framework.graph import get_default_graph
from repro.framework.graph_export import graph_stats, to_dot, to_networkx


def diamond_graph():
    """a -> (b, c) -> d: four compute ops plus the constant."""
    a = ops.constant(np.ones((2, 2), dtype=np.float32), name="a")
    b = ops.multiply(a, 2.0, name="b")
    c = ops.multiply(a, 3.0, name="c")
    d = ops.add(b, c, name="d")
    return a, b, c, d


class TestToNetworkx:
    def test_nodes_and_edges(self, fresh_graph):
        a, b, c, d = diamond_graph()
        nxg = to_networkx(get_default_graph())
        assert nxg.has_edge("a", "b")
        assert nxg.has_edge("a", "c")
        assert nxg.has_edge("b", "d")
        assert nxg.has_edge("c", "d")
        assert nxg.nodes["d"]["op_type"] == "Add"
        assert nxg.nodes["b"]["op_class"] == "ELEMENTWISE"

    def test_is_dag(self, fresh_graph):
        from repro import workloads
        model = workloads.create("memnet", config="tiny", seed=0)
        nxg = to_networkx(model.graph)
        assert nx.is_directed_acyclic_graph(nxg)
        assert nxg.number_of_nodes() == len(model.graph)

    def test_pruned_to_fetches(self, fresh_graph):
        a, b, c, d = diamond_graph()
        unrelated = ops.constant(1.0, name="unrelated")
        nxg = to_networkx(get_default_graph(), fetches=[b])
        # a, b, and the Const op wrapping the scalar multiplier.
        assert set(nxg.nodes) == {"a", "b", "Const"}
        # constant scalars in math_ops wrap values: ensure extras pruned
        assert "unrelated" not in nxg

    def test_edge_elements(self, fresh_graph):
        a, b, c, d = diamond_graph()
        nxg = to_networkx(get_default_graph())
        assert nxg.edges["a", "b"]["elements"] == 4


class TestGraphStats:
    def test_diamond_structure(self, fresh_graph):
        diamond_graph()
        stats = graph_stats(get_default_graph())
        # a(+scalar consts) then b/c then d: critical path through 3
        # compute levels.
        assert stats.critical_path_length == 3
        assert stats.op_type_histogram["Mul"] == 2
        assert stats.num_ops >= 4
        assert stats.average_parallelism > 1.0

    def test_workload_stats_sane(self, fresh_graph):
        from repro import workloads
        model = workloads.create("vgg", config="tiny", seed=0)
        stats = graph_stats(model.graph)
        assert stats.num_ops == len(model.graph)
        assert stats.critical_path_length > 19  # deeper than the 19 layers
        assert stats.total_work.flops > 1e6
        assert stats.op_type_histogram["Conv2D"] == 16

    def test_empty_graph(self, fresh_graph):
        stats = graph_stats(get_default_graph())
        assert stats.num_ops == 0
        assert stats.critical_path_length == 0
        assert stats.average_parallelism == 0.0


class TestToDot:
    def test_renders_nodes_and_edges(self, fresh_graph):
        diamond_graph()
        dot = to_dot(get_default_graph())
        assert dot.startswith("digraph")
        assert '"a" -> "b"' in dot
        assert "2x2" in dot  # edge shape labels

    def test_truncation(self, fresh_graph):
        for i in range(30):
            ops.constant(float(i), name=f"c{i}")
        dot = to_dot(get_default_graph(), max_ops=10)
        assert "truncated" in dot
        assert dot.count("fillcolor") == 10
