"""Tests for device-model calibration."""

import pytest

from repro.framework.calibrate import (calibrate_cpu, measure_bandwidth,
                                       measure_dispatch_overhead,
                                       measure_flops_rate)
from repro.framework.cost_model import matmul_work


class TestMeasurements:
    def test_flops_rate_plausible(self):
        rate = measure_flops_rate(size=192, repeats=2)
        # Any machine this runs on does between 0.1 GFLOP/s and 10 TFLOP/s.
        assert 1e8 < rate < 1e13

    def test_bandwidth_plausible(self):
        bandwidth = measure_bandwidth(megabytes=8, repeats=2)
        assert 1e8 < bandwidth < 1e12

    def test_dispatch_overhead_plausible(self):
        overhead = measure_dispatch_overhead(chain_length=100, repeats=2)
        assert 1e-7 < overhead < 1e-3


class TestCalibratedModel:
    def test_model_prices_ops(self):
        result = calibrate_cpu()
        work = matmul_work(256, 256, 256)
        seconds = result.model.op_time(work)
        assert 0.0 < seconds < 10.0

    def test_render(self):
        result = calibrate_cpu()
        text = result.render()
        assert "GFLOP/s" in text and "us/op" in text

    def test_calibrated_matmul_estimate_near_reality(self):
        """The calibrated model's matmul prediction lands within an order
        of magnitude of an actual timed matmul."""
        import time
        import numpy as np
        result = calibrate_cpu()
        size = 256
        rng = np.random.default_rng(0)
        a = rng.standard_normal((size, size)).astype(np.float32)
        b = rng.standard_normal((size, size)).astype(np.float32)
        a @ b
        start = time.perf_counter()
        a @ b
        actual = time.perf_counter() - start
        predicted = result.model.op_time(matmul_work(size, size, size))
        assert predicted < 20 * actual
        assert actual < 20 * predicted
