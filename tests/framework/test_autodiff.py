"""Numeric gradient checks for symbolic autodiff.

Every differentiable op family is checked with central differences
through the live session, so the whole chain (gradient rule construction,
shape handling, accumulation) is exercised end to end.
"""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.autodiff import gradients
from repro.framework.errors import DifferentiationError
from repro.framework.session import Session
from tests.conftest import numeric_gradient


def check_gradient(session, build_loss, shape, indices, rng, rtol=3e-2,
                   atol=1e-3, positive=False):
    """Compare analytic vs numeric d(loss)/d(x) at the given indices."""
    x = ops.placeholder(shape, name="gradcheck_x")
    loss = build_loss(x)
    grad = gradients(loss, [x])[0]
    value = rng.standard_normal(shape).astype(np.float32)
    if positive:
        value = np.abs(value) + 0.5
    analytic = session.run(grad, feed_dict={x: value})
    assert analytic.shape == shape
    for index in indices:
        numeric = numeric_gradient(session, loss, x, value, index)
        np.testing.assert_allclose(analytic[index], numeric, rtol=rtol,
                                   atol=atol)


SHAPE = (3, 4)
INDICES = [(0, 0), (1, 2), (2, 3)]


class TestElementwiseGradients:
    @pytest.mark.parametrize("fn,positive", [
        (lambda x: ops.reduce_sum(ops.square(x)), False),
        (lambda x: ops.reduce_sum(ops.exp(x)), False),
        (lambda x: ops.reduce_sum(ops.log(x)), True),
        (lambda x: ops.reduce_sum(ops.sqrt(x)), True),
        (lambda x: ops.reduce_sum(ops.tanh(x)), False),
        (lambda x: ops.reduce_sum(ops.sigmoid(x)), False),
        (lambda x: ops.reduce_sum(ops.relu(x)), False),
        (lambda x: ops.reduce_sum(ops.negative(x)), False),
        (lambda x: ops.reduce_sum(ops.abs_(x)), False),
        (lambda x: ops.reduce_sum(ops.power(x, 3.0)), True),
        (lambda x: ops.reduce_sum(ops.multiply(x, x)), False),
        (lambda x: ops.reduce_sum(ops.divide(1.0, x)), True),
        (lambda x: ops.reduce_sum(ops.maximum(x, 0.3)), True),
        (lambda x: ops.reduce_sum(ops.minimum(x, 0.7)), True),
    ], ids=["square", "exp", "log", "sqrt", "tanh", "sigmoid", "relu",
            "neg", "abs", "pow", "mul_self", "reciprocal", "maximum",
            "minimum"])
    def test_unary_chains(self, session, rng, fn, positive):
        check_gradient(session, fn, SHAPE, INDICES, rng, positive=positive)

    def test_broadcast_gradient_unbroadcasts(self, session, rng):
        bias = ops.placeholder((4,), name="bias")
        base = ops.constant(rng.standard_normal(SHAPE).astype(np.float32))
        loss = ops.reduce_sum(ops.square(ops.add(base, bias)))
        grad = gradients(loss, [bias])[0]
        assert grad.shape == (4,)
        value = rng.standard_normal(4).astype(np.float32)
        analytic = session.run(grad, feed_dict={bias: value})
        for index in [(0,), (3,)]:
            numeric = numeric_gradient(session, loss, bias, value, index)
            np.testing.assert_allclose(analytic[index], numeric, rtol=3e-2,
                                       atol=1e-3)


class TestMatrixGradients:
    def test_matmul_both_sides(self, session, rng):
        a = ops.placeholder((3, 4), name="a")
        b_value = rng.standard_normal((4, 2)).astype(np.float32)
        loss = ops.reduce_sum(ops.square(ops.matmul(a, ops.constant(b_value))))
        check_done = False
        grad = gradients(loss, [a])[0]
        value = rng.standard_normal((3, 4)).astype(np.float32)
        analytic = session.run(grad, feed_dict={a: value})
        for index in [(0, 0), (2, 3)]:
            numeric = numeric_gradient(session, loss, a, value, index)
            np.testing.assert_allclose(analytic[index], numeric, rtol=3e-2,
                                       atol=1e-3)
            check_done = True
        assert check_done

    def test_batch_matmul(self, session, rng):
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(ops.batch_matmul(
                x, ops.constant(
                    rng.standard_normal((2, 4, 3)).astype(np.float32))))),
            (2, 3, 4), [(0, 0, 0), (1, 2, 3)], rng)


class TestMovementGradients:
    @pytest.mark.parametrize("fn", [
        lambda x: ops.reduce_sum(ops.square(ops.reshape(x, (4, 3)))),
        lambda x: ops.reduce_sum(ops.square(ops.transpose(x))),
        lambda x: ops.reduce_sum(ops.square(ops.tile(x, (2, 3)))),
        lambda x: ops.reduce_sum(ops.square(ops.pad(x, [(1, 0), (0, 2)]))),
        lambda x: ops.reduce_sum(ops.square(ops.slice_(x, (1, 1), (2, 2)))),
        lambda x: ops.reduce_sum(ops.square(
            ops.concat([x, ops.multiply(x, 2.0)], axis=1))),
        lambda x: ops.reduce_sum(ops.square(ops.expand_dims(x, 0))),
        lambda x: ops.reduce_sum(ops.square(ops.flatten(x))),
    ], ids=["reshape", "transpose", "tile", "pad", "slice", "concat",
            "expand_dims", "flatten"])
    def test_movement_chains(self, session, rng, fn):
        check_gradient(session, fn, SHAPE, INDICES, rng)

    def test_split_gradients(self, session, rng):
        def build(x):
            parts = ops.split(x, 2, axis=1)
            return ops.reduce_sum(ops.square(parts[0])) + ops.reduce_sum(
                ops.multiply(parts[1], 3.0))
        check_gradient(session, build, SHAPE, INDICES, rng)

    def test_gather_gradient_scatters(self, session, rng):
        table = ops.placeholder((5, 3), name="table")
        idx = ops.constant(np.array([1, 1, 4], dtype=np.int32))
        loss = ops.reduce_sum(ops.square(ops.gather(table, idx)))
        grad = gradients(loss, [table])[0]
        value = rng.standard_normal((5, 3)).astype(np.float32)
        analytic = session.run(grad, feed_dict={table: value})
        # Row 1 gathered twice, row 4 once, others never.
        np.testing.assert_allclose(analytic[1], 2 * 2 * value[1], rtol=1e-5)
        np.testing.assert_allclose(analytic[4], 2 * value[4], rtol=1e-5)
        np.testing.assert_allclose(analytic[0], 0.0)


class TestReductionGradients:
    @pytest.mark.parametrize("fn", [
        lambda x: ops.reduce_sum(ops.square(ops.reduce_sum(x, axis=1))),
        lambda x: ops.reduce_sum(ops.square(ops.reduce_mean(x, axis=0))),
        lambda x: ops.reduce_sum(ops.square(
            ops.reduce_sum(x, axis=1, keepdims=True))),
        lambda x: ops.square(ops.reduce_mean(x)),
    ], ids=["sum_axis", "mean_axis", "sum_keepdims", "mean_all"])
    def test_reduction_chains(self, session, rng, fn):
        check_gradient(session, fn, SHAPE, INDICES, rng)

    def test_reduce_max_routes_to_argmax(self, session):
        x = ops.placeholder((2, 3), name="x")
        loss = ops.reduce_sum(ops.reduce_max(x, axis=1))
        grad = gradients(loss, [x])[0]
        value = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]],
                         dtype=np.float32)
        analytic = session.run(grad, feed_dict={x: value})
        np.testing.assert_array_equal(analytic,
                                      [[0, 1, 0], [1, 0, 0]])


class TestNNGradients:
    def test_conv2d_input_gradient(self, session, rng):
        filt = ops.constant(
            rng.standard_normal((3, 3, 2, 3)).astype(np.float32))
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.conv2d(x, filt, strides=(1, 1), padding="SAME"))),
            (1, 5, 5, 2), [(0, 0, 0, 0), (0, 2, 3, 1), (0, 4, 4, 0)], rng,
            rtol=5e-2)

    def test_conv2d_strided_valid_gradient(self, session, rng):
        filt = ops.constant(
            rng.standard_normal((2, 2, 1, 2)).astype(np.float32))
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.conv2d(x, filt, strides=(2, 2), padding="VALID"))),
            (1, 6, 6, 1), [(0, 0, 0, 0), (0, 3, 3, 0), (0, 5, 5, 0)], rng,
            rtol=5e-2)

    def test_max_pool_gradient(self, session, rng):
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.max_pool(x, ksize=(2, 2), strides=(2, 2)))),
            (1, 4, 4, 1), [(0, 0, 0, 0), (0, 2, 3, 0)], rng, rtol=5e-2)

    def test_avg_pool_gradient(self, session, rng):
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.avg_pool(x, ksize=(2, 2), strides=(2, 2)))),
            (1, 4, 4, 1), [(0, 0, 0, 0), (0, 3, 3, 0)], rng)

    def test_softmax_gradient(self, session, rng):
        target = ops.constant(
            np.abs(rng.standard_normal((3, 4))).astype(np.float32))
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.subtract(ops.softmax(x), target))),
            SHAPE, INDICES, rng)

    def test_xent_gradient(self, session, rng):
        labels = np.eye(4, dtype=np.float32)[[0, 2, 3]]
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.softmax_cross_entropy_with_logits(
                x, ops.constant(labels))),
            SHAPE, INDICES, rng)

    def test_lrn_gradient(self, session, rng):
        check_gradient(
            session,
            lambda x: ops.reduce_sum(ops.square(
                ops.lrn(x, depth_radius=1, bias=1.0, alpha=0.1, beta=0.5))),
            (1, 2, 2, 4), [(0, 0, 0, 0), (0, 1, 1, 3)], rng, rtol=5e-2)

    def test_bias_add_gradient(self, session, rng):
        bias = ops.placeholder((4,), name="b")
        base = ops.constant(rng.standard_normal((3, 4)).astype(np.float32))
        loss = ops.reduce_sum(ops.square(ops.bias_add(base, bias)))
        grad = gradients(loss, [bias])[0]
        value = rng.standard_normal(4).astype(np.float32)
        analytic = session.run(grad, feed_dict={bias: value})
        numeric = numeric_gradient(session, loss, bias, value, (2,))
        np.testing.assert_allclose(analytic[2], numeric, rtol=3e-2)

    def test_batch_norm_gradient(self, session, rng):
        from repro.framework import layers
        def build(x):
            normed = layers.batch_norm(x, name="bn")
            return ops.reduce_sum(ops.square(ops.add(normed, 0.5)))
        check_gradient(session, build, (6, 3), [(0, 0), (4, 2)], rng,
                       rtol=5e-2, atol=5e-3)


class TestAutodiffMechanics:
    def test_fan_out_accumulates_via_add_n(self, session):
        x = ops.placeholder((2,), name="x")
        y = ops.add(ops.multiply(x, 2.0), ops.multiply(x, 3.0))
        loss = ops.reduce_sum(y)
        grad = gradients(loss, [x])[0]
        np.testing.assert_allclose(
            session.run(grad, feed_dict={x: np.zeros(2, np.float32)}),
            [5.0, 5.0])

    def test_independent_variable_returns_none(self):
        x = ops.placeholder((2,), name="x")
        unrelated = ops.placeholder((2,), name="unrelated")
        loss = ops.reduce_sum(x)
        assert gradients(loss, [unrelated]) == [None]

    def test_stop_gradient_blocks_flow(self):
        x = ops.placeholder((2,), name="x")
        loss = ops.reduce_sum(ops.stop_gradient(ops.multiply(x, 2.0)))
        assert gradients(loss, [x]) == [None]

    def test_stop_gradient_partial_paths(self, session):
        x = ops.placeholder((2,), name="x")
        blocked = ops.stop_gradient(x)
        loss = ops.reduce_sum(ops.multiply(x, blocked))
        grad = gradients(loss, [x])[0]
        value = np.array([2.0, 3.0], dtype=np.float32)
        # d/dx (x * const(x)) = const(x)
        np.testing.assert_allclose(session.run(grad, feed_dict={x: value}),
                                   value)

    def test_grad_ys_seeding(self, session):
        x = ops.placeholder((3,), name="x")
        y = ops.multiply(x, 2.0)
        seed = ops.constant(np.array([1.0, 0.0, 2.0], dtype=np.float32))
        grad = gradients([y], [x], grad_ys=[seed])[0]
        np.testing.assert_allclose(
            session.run(grad, feed_dict={x: np.zeros(3, np.float32)}),
            [2.0, 0.0, 4.0])

    def test_grad_ys_shape_mismatch_rejected(self):
        x = ops.placeholder((3,), name="x")
        y = ops.multiply(x, 2.0)
        bad = ops.constant(np.zeros(2, dtype=np.float32))
        with pytest.raises(DifferentiationError, match="shape"):
            gradients([y], [x], grad_ys=[bad])

    def test_second_application_to_same_graph(self, session):
        # Taking gradients twice (new backward subgraph each time) must
        # not corrupt the first.
        x = ops.placeholder((2,), name="x")
        loss = ops.reduce_sum(ops.square(x))
        g1 = gradients(loss, [x])[0]
        g2 = gradients(loss, [x])[0]
        value = np.array([1.0, 2.0], dtype=np.float32)
        np.testing.assert_allclose(session.run(g1, feed_dict={x: value}),
                                   2 * value)
        np.testing.assert_allclose(session.run(g2, feed_dict={x: value}),
                                   2 * value)

    def test_non_differentiable_path_raises(self):
        x = ops.placeholder((2, 3), name="x")
        loss = ops.reduce_sum(ops.cast(ops.argmax(x, axis=1), np.float32))
        # ArgMax returns None gradients, so x gets none.
        assert gradients(loss, [x]) == [None]

    def test_empty_xs(self):
        assert gradients(ops.constant(1.0), []) == []
