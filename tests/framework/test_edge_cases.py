"""Edge-case battery: geometry extremes, degenerate sizes, odd fetches."""

import numpy as np
import pytest

from repro.framework import layers, ops
from repro.framework.autodiff import gradients
from repro.framework.errors import ShapeError
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session


class TestConvGeometryExtremes:
    def test_1x1_convolution_is_channel_mix(self, session, rng):
        x = rng.standard_normal((1, 4, 4, 3)).astype(np.float32)
        filt = rng.standard_normal((1, 1, 3, 2)).astype(np.float32)
        out = session.run(ops.conv2d(ops.constant(x), ops.constant(filt),
                                     padding="VALID"))
        expected = np.einsum("bhwc,co->bhwo", x, filt[0, 0])
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_kernel_equal_to_input_collapses_spatial(self, session, rng):
        x = rng.standard_normal((2, 5, 5, 2)).astype(np.float32)
        filt = rng.standard_normal((5, 5, 2, 4)).astype(np.float32)
        tensor = ops.conv2d(ops.constant(x), ops.constant(filt),
                            padding="VALID")
        assert tensor.shape == (2, 1, 1, 4)

    def test_stride_larger_than_kernel(self, session, rng):
        x = rng.standard_normal((1, 9, 9, 1)).astype(np.float32)
        filt = rng.standard_normal((2, 2, 1, 1)).astype(np.float32)
        tensor = ops.conv2d(ops.constant(x), ops.constant(filt),
                            strides=(3, 3), padding="VALID")
        assert tensor.shape == (1, 3, 3, 1)
        session.run(tensor)  # executes cleanly

    def test_non_square_strides(self, session, rng):
        x = rng.standard_normal((1, 8, 12, 2)).astype(np.float32)
        filt = rng.standard_normal((3, 3, 2, 2)).astype(np.float32)
        tensor = ops.conv2d(ops.constant(x), ops.constant(filt),
                            strides=(2, 3), padding="SAME")
        assert tensor.shape == (1, 4, 4, 2)

    def test_max_pool_same_padding_on_negative_values(self, session):
        # SAME pooling pads with -inf internally; all-negative inputs
        # must pool to real values, never to the padding.
        x = np.full((1, 3, 3, 1), -5.0, dtype=np.float32)
        out = session.run(ops.max_pool(ops.constant(x), ksize=(2, 2),
                                       strides=(2, 2), padding="SAME"))
        assert np.all(out == -5.0)
        assert np.all(np.isfinite(out))


class TestLRNExtremes:
    def test_radius_exceeding_channels(self, session, rng):
        x = rng.standard_normal((1, 2, 2, 3)).astype(np.float32)
        out = session.run(ops.lrn(ops.constant(x), depth_radius=10))
        # Window covers all channels everywhere; finite output.
        assert np.all(np.isfinite(out))

    def test_lrn_gradient_with_large_radius(self, session, rng):
        x = ops.placeholder((1, 2, 2, 3), name="x")
        loss = ops.reduce_sum(ops.square(ops.lrn(x, depth_radius=10)))
        grad = gradients(loss, [x])[0]
        value = rng.standard_normal((1, 2, 2, 3)).astype(np.float32)
        assert np.all(np.isfinite(session.run(grad,
                                              feed_dict={x: value})))


class TestCTCExtremes:
    def test_variable_input_lengths_mask_frames(self, session, rng):
        time_steps, batch, classes = 6, 2, 3
        logits = ops.placeholder((time_steps, batch, classes))
        labels = ops.constant(np.array([[0], [1]], dtype=np.int32))
        label_lengths = ops.constant(np.array([1, 1], dtype=np.int32))
        input_lengths = ops.constant(np.array([6, 3], dtype=np.int32))
        loss = ops.ctc_loss(logits, labels, label_lengths, input_lengths)
        values = rng.standard_normal(
            (time_steps, batch, classes)).astype(np.float32)
        base = session.run(loss, feed_dict={logits: values})
        # Frames beyond example 1's length must not affect its loss.
        perturbed = values.copy()
        perturbed[4:, 1, :] += 100.0
        after = session.run(loss, feed_dict={logits: perturbed})
        np.testing.assert_allclose(base[1], after[1], rtol=1e-5)
        np.testing.assert_allclose(base[0], after[0], rtol=1e-5)

    def test_mixed_empty_and_nonempty_labels(self, session, rng):
        logits = ops.placeholder((4, 2, 3))
        labels = ops.constant(np.array([[0], [0]], dtype=np.int32))
        label_lengths = ops.constant(np.array([1, 0], dtype=np.int32))
        input_lengths = ops.constant(np.full(2, 4, dtype=np.int32))
        loss = ops.ctc_loss(logits, labels, label_lengths, input_lengths)
        values = rng.standard_normal((4, 2, 3)).astype(np.float32)
        out = session.run(loss, feed_dict={logits: values})
        assert np.all(np.isfinite(out))
        assert out[1] > 0.0  # empty target still has a cost (all blanks)


class TestDegenerateSizes:
    def test_batch_of_one_through_batch_norm(self, fresh_graph, rng):
        x = ops.placeholder((1, 4), name="x")
        out = layers.batch_norm(x, name="bn")
        session = Session(fresh_graph, seed=0)
        value = session.run(
            out, feed_dict={x: rng.standard_normal((1, 4))
                            .astype(np.float32)})
        # Single-example batch: centered to exactly beta (zeros).
        np.testing.assert_allclose(value, 0.0, atol=1e-3)

    def test_single_class_softmax(self, session):
        x = ops.constant(np.array([[3.0]], dtype=np.float32))
        np.testing.assert_allclose(session.run(ops.softmax(x)), [[1.0]])

    def test_length_one_sequence_rnn(self, fresh_graph, rng):
        from repro.framework import rnn
        cell = rnn.LSTMCell(4, 2, rng)
        x = ops.placeholder((1, 2), name="x")
        outputs, _ = rnn.static_rnn(cell, [x])
        session = Session(fresh_graph, seed=0)
        out = session.run(outputs[0],
                          feed_dict={x: np.ones((1, 2), np.float32)})
        assert out.shape == (1, 4)

    def test_scalar_tensor_training(self, fresh_graph):
        w = ops.variable(np.float32(3.0), name="w")
        loss = ops.square(w)
        train = GradientDescentOptimizer(0.1).minimize(loss)
        session = Session(fresh_graph, seed=0)
        for _ in range(40):
            session.run(train)
        assert abs(float(session.variable_value(w))) < 0.1

    def test_zero_learning_rate_freezes(self, fresh_graph):
        w = ops.variable(np.ones(3, dtype=np.float32), name="w")
        loss = ops.reduce_sum(ops.square(w))
        train = GradientDescentOptimizer(0.0).minimize(loss)
        session = Session(fresh_graph, seed=0)
        session.run(train)
        np.testing.assert_array_equal(session.variable_value(w),
                                      [1.0, 1.0, 1.0])


class TestFetchSemantics:
    def test_duplicate_fetches(self, session):
        x = ops.constant(np.array([1.0, 2.0], dtype=np.float32))
        total = ops.reduce_sum(x)
        a, b = session.run([total, total])
        assert a == b == 3.0

    def test_fetch_placeholder_directly(self, session):
        x = ops.placeholder((2,), name="x")
        value = np.array([5.0, 6.0], dtype=np.float32)
        out = session.run(x, feed_dict={x: value})
        np.testing.assert_array_equal(out, value)

    def test_extra_feeds_for_unused_placeholders_accepted(self, session):
        used = ops.placeholder((2,), name="used")
        unused = ops.placeholder((2,), name="unused")
        out = session.run(ops.reduce_sum(used),
                          feed_dict={used: np.ones(2, np.float32),
                                     unused: np.zeros(2, np.float32)})
        assert out == 2.0

    def test_fetch_variable_directly(self, session):
        v = ops.variable(np.array([1.5], dtype=np.float32))
        np.testing.assert_array_equal(session.run(v), [1.5])


class TestBroadcastGradientExtremes:
    def test_scalar_broadcast_into_matrix(self, session):
        s = ops.placeholder((), name="s")
        base = ops.constant(np.ones((3, 4), dtype=np.float32))
        loss = ops.reduce_sum(ops.multiply(base, s))
        grad = gradients(loss, [s])[0]
        assert grad.shape == ()
        value = session.run(grad, feed_dict={s: np.float32(2.0)})
        assert float(value) == 12.0

    def test_keepdim_one_both_sides(self, session, rng):
        a = ops.placeholder((3, 1), name="a")
        b = ops.constant(rng.standard_normal((1, 4)).astype(np.float32))
        loss = ops.reduce_sum(ops.multiply(a, b))
        grad = gradients(loss, [a])[0]
        assert grad.shape == (3, 1)
        value = session.run(grad,
                            feed_dict={a: np.ones((3, 1), np.float32)})
        np.testing.assert_allclose(value[:, 0],
                                   np.full(3, session.run(b).sum()),
                                   rtol=1e-5)
