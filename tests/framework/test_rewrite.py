"""Tests for the compiler-style graph rewrite passes."""

import numpy as np
import pytest

from repro import workloads
from repro.framework import ops
from repro.framework.graph import get_default_graph
from repro.framework.rewrite import rewrite_graph
from repro.framework.session import Session


class TestConstantFolding:
    def test_pure_constant_chain_folds_away(self, fresh_graph):
        a = ops.constant(np.full(4, 2.0, dtype=np.float32))
        b = ops.constant(np.full(4, 3.0, dtype=np.float32))
        out = ops.add(ops.multiply(a, b), 1.0)
        result = rewrite_graph(get_default_graph(), [out])
        assert result.stats.constants_folded >= 2
        new_out = result.map_tensor(out)
        # The rewritten fetch is a Const — zero runtime compute.
        assert new_out.op.type_name == "Const"
        np.testing.assert_allclose(Session(result.graph).run(new_out),
                                   [7.0, 7.0, 7.0, 7.0])

    def test_placeholders_block_folding(self, fresh_graph):
        x = ops.placeholder((4,), name="x")
        out = ops.add(x, ops.multiply(
            ops.constant(np.ones(4, dtype=np.float32)), 2.0))
        result = rewrite_graph(get_default_graph(), [out])
        new_out = result.map_tensor(out)
        assert new_out.op.type_name == "Add"  # x branch survives
        value = Session(result.graph).run(
            new_out, feed_dict=result.map_feed({x: np.zeros(4,
                                                            np.float32)}))
        np.testing.assert_allclose(value, [2.0, 2.0, 2.0, 2.0])

    def test_random_ops_never_folded(self, fresh_graph):
        noise = ops.multiply(ops.random_normal((4,)), 2.0)
        result = rewrite_graph(get_default_graph(), [noise])
        types = {op.type_name for op in result.graph.operations}
        assert "StandardRandomNormal" in types

    def test_huge_results_not_materialized(self, fresh_graph):
        big = ops.constant(np.ones((1024, 1024), dtype=np.float32))
        out = ops.tile(big, (2, 2))  # 4M elements > fold limit
        result = rewrite_graph(get_default_graph(), [out])
        assert result.map_tensor(out).op.type_name == "Tile"


class TestIdentityElimination:
    def test_identity_chain_bypassed(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        out = ops.identity(ops.identity(ops.identity(x)))
        result = rewrite_graph(get_default_graph(), [out])
        assert result.stats.identities_removed == 3
        assert result.map_tensor(out) is result.map_tensor(x)


class TestCSE:
    def test_duplicate_subexpressions_merged(self, fresh_graph):
        x = ops.placeholder((4,), name="x")
        left = ops.multiply(x, 2.0)
        right = ops.multiply(x, 2.0)  # structurally identical
        out = ops.add(left, right)
        result = rewrite_graph(get_default_graph(), [out])
        assert result.stats.subexpressions_merged >= 1
        new_ops = [op for op in result.graph.operations
                   if op.type_name == "Mul"]
        assert len(new_ops) == 1

    def test_duplicate_constants_merged(self, fresh_graph):
        a = ops.constant(np.zeros((8, 8), dtype=np.float32), name="z1")
        b = ops.constant(np.zeros((8, 8), dtype=np.float32), name="z2")
        out = ops.add(a, b)
        result = rewrite_graph(get_default_graph(), [out],
                               fold_constants=False)
        consts = [op for op in result.graph.operations
                  if op.type_name == "Const"]
        assert len(consts) == 1

    def test_different_attrs_not_merged(self, fresh_graph):
        x = ops.placeholder((4, 4), name="x")
        out = ops.add(ops.reduce_sum(x, axis=0), ops.reduce_sum(x, axis=1))
        result = rewrite_graph(get_default_graph(), [out])
        sums = [op for op in result.graph.operations
                if op.type_name == "Sum"]
        assert len(sums) == 2

    def test_stateful_ops_never_merged(self, fresh_graph):
        noise_a = ops.random_normal((4,))
        noise_b = ops.random_normal((4,))
        out = ops.add(noise_a, noise_b)
        result = rewrite_graph(get_default_graph(), [out])
        randoms = [op for op in result.graph.operations
                   if op.type_name == "StandardRandomNormal"]
        assert len(randoms) == 2


class TestWorkloadEquivalence:
    def test_memnet_inference_identical(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        result = rewrite_graph(model.graph, [model.inference_output])
        assert result.stats.removed > 0
        feed = model.sample_feed(training=False)
        original = model.session.run(model.inference_output,
                                     feed_dict=feed)
        rewritten = Session(result.graph, seed=123).run(
            result.map_tensor(model.inference_output),
            feed_dict=result.map_feed(feed))
        np.testing.assert_allclose(original, rewritten, rtol=1e-5,
                                   atol=1e-6)

    def test_seq2seq_unrolled_states_deduped(self):
        model = workloads.create("seq2seq", config="tiny", seed=0)
        result = rewrite_graph(model.graph,
                               [model.loss, model.train_step])
        # The unrolled zero-state constants and repeated structure give
        # CSE real wins.
        assert result.stats.subexpressions_merged > 0
        assert result.stats.ops_out < result.stats.ops_in

    def test_rewritten_training_graph_still_learns(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        result = rewrite_graph(model.graph,
                               [model.loss, model.train_step])
        session = Session(result.graph, seed=0)
        loss_fetch = result.map_tensor(model.loss)
        train_fetch = result.map_tensor(model.train_step)
        losses = []
        for _ in range(60):
            feed = result.map_feed(model.sample_feed())
            loss, _ = session.run([loss_fetch, train_fetch],
                                  feed_dict=feed)
            losses.append(float(loss))
        assert all(np.isfinite(l) for l in losses)
        assert np.mean(losses[-15:]) < np.mean(losses[:15])

    def test_stats_accounting_consistent(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        result = rewrite_graph(model.graph, [model.loss,
                                             model.train_step])
        stats = result.stats
        assert stats.ops_out == len(result.graph)
        assert stats.ops_in == len(model.graph.subgraph(
            [model.loss, model.train_step]))
        assert stats.removed >= (stats.identities_removed
                                 + stats.subexpressions_merged)


class TestAttrKeyStability:
    def test_operation_attrs_key_by_name_not_id(self, fresh_graph):
        """Regression: _attr_key used id(op), which the allocator can
        recycle after GC, silently merging unrelated ops across rewrites.
        """
        from repro.framework.rewrite import _attr_key
        v = ops.variable(np.zeros(2, dtype=np.float32), name="w")
        key = _attr_key(v.op)
        assert key == ("op", "w", v.op.type_name)
        assert not any(part == id(v.op) for part in key)

    def test_distinct_ops_get_distinct_keys(self, fresh_graph):
        from repro.framework.rewrite import _attr_key
        a = ops.variable(np.zeros(2, dtype=np.float32), name="a")
        b = ops.variable(np.zeros(2, dtype=np.float32), name="b")
        assert _attr_key(a.op) != _attr_key(b.op)
