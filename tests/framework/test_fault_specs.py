"""The shared fault-spec base layer: preset stability + serialization.

Two contracts guard the BaseFaultSpec deduplication:

* **Golden presets** — every shipped CLI preset must parse to exactly
  the plan it produced before the four families' trigger/seed/validation
  logic was folded into the shared base class
  (``golden_fault_presets.json`` is the pre-refactor dump).
* **Round-trips** — ``plan_from_json(plan_to_json(plan))`` is identity
  for every family: specs, seeds, and therefore the injector's seeded
  probability stream are preserved exactly.
"""

import json
import pathlib

import pytest

from repro.cli import (_cluster_preset_specs, _fleet_preset_specs,
                       _serve_preset_specs, CLUSTER_FAULT_PRESETS,
                       FLEET_FAULT_PRESETS, SERVE_FAULT_PRESETS)
from repro.framework.faults import (ClusterFaultPlan, ClusterFaultSpec,
                                    FaultPlan, FaultSpec, FleetFaultPlan,
                                    FleetFaultSpec, ServingFaultPlan,
                                    ServingFaultSpec, StorageFaultPlan,
                                    StorageFaultSpec, FAULT_FAMILIES,
                                    plan_from_json, plan_to_json)

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_fault_presets.json")
    .read_text())

#: the zone layout the fleet CLI uses for three zones
ZONES = ("z0", "z1", "z2")


def _preset_specs(key):
    family, name = key.split("/")
    if family == "serve":
        return _serve_preset_specs(name)
    if family == "fleet":
        return _fleet_preset_specs(name, ZONES)
    return _cluster_preset_specs(name)


@pytest.mark.parametrize(
    "key", [key for key in GOLDEN if not key.startswith("_")])
def test_presets_match_pre_refactor_golden(key):
    specs = _preset_specs(key)
    assert [spec.to_json() for spec in specs] == GOLDEN[key], \
        f"preset {key} drifted from its pre-refactor plan"


def test_every_shipped_preset_is_golden_covered():
    # A new preset must come with a golden entry, or drift goes unseen.
    shipped = {f"serve/{n}" for n in SERVE_FAULT_PRESETS}
    shipped |= {f"fleet/{n}" for n in FLEET_FAULT_PRESETS}
    shipped |= {f"train/{n}" for n in CLUSTER_FAULT_PRESETS}
    golden = {key for key in GOLDEN if not key.startswith("_")}
    assert shipped == golden


# -- serialization round-trips ----------------------------------------------

ROUND_TRIP_PLANS = {
    "op": FaultPlan(
        [FaultSpec("exception", name_pattern="train_step", step=1),
         FaultSpec("nan", op_type="MatMul", payload="inf",
                   probability=0.5, max_triggers=None),
         FaultSpec("latency", latency_seconds=0.25),
         FaultSpec("feed", name_pattern="input")],
        seed=7),
    "cluster": ClusterFaultPlan(
        [ClusterFaultSpec("worker_crash", worker=1, step=1),
         ClusterFaultSpec("partition", link=(0, 1), duration_steps=2),
         ClusterFaultSpec("corrupt_gradient", link=(1, 0),
                          payload="inf", probability=0.3),
         ClusterFaultSpec("straggler", worker=0, delay_seconds=1.5,
                          max_triggers=4),
         ClusterFaultSpec("byzantine_scale", worker=1, step=1,
                          scale_factor=32.0),
         ClusterFaultSpec("byzantine_signflip", worker=0,
                          probability=0.4, max_triggers=None),
         ClusterFaultSpec("byzantine_stale", worker=2, step=3),
         ClusterFaultSpec("byzantine_drift", worker=1, drift_rate=0.25,
                          max_triggers=8)],
        seed=11),
    "serving": ServingFaultPlan(
        [ServingFaultSpec("replica_crash", replica=0, batch=1),
         ServingFaultSpec("slow_replica", latency_seconds=0.05,
                          probability=0.25, max_triggers=None),
         ServingFaultSpec("poisoned_batch", payload="inf")],
        seed=13),
    "fleet": FleetFaultPlan(
        [FleetFaultSpec("zone_outage", zone="z1", at_seconds=0.05,
                        duration_seconds=0.1),
         FleetFaultSpec("correlated_crash", servers=(2, 5),
                        at_seconds=0.04, probability=0.9),
         FleetFaultSpec("lb_blackhole", at_seconds=0.02,
                        duration_seconds=0.15),
         FleetFaultSpec("bad_rollout", defect="slow")],
        seed=17),
    "storage": StorageFaultPlan(
        [StorageFaultSpec("torn_write", store=0, key_pattern="payload",
                          fraction=0.5),
         StorageFaultSpec("bit_rot", store=1, key_pattern="payload",
                          probability=0.4, max_triggers=None),
         StorageFaultSpec("stale_read", store=0, op_index=3),
         StorageFaultSpec("disk_full", store=2),
         StorageFaultSpec("slow_io", latency_seconds=0.02,
                          max_triggers=4),
         StorageFaultSpec("store_down", store=1, duration_ops=6)],
        seed=19),
}


@pytest.mark.parametrize("family", sorted(ROUND_TRIP_PLANS))
def test_plan_round_trips_through_json(family):
    plan = ROUND_TRIP_PLANS[family]
    blob = plan_to_json(plan)
    # The blob must actually be JSON-safe, not merely dict-shaped.
    restored = plan_from_json(json.loads(json.dumps(blob)))
    assert type(restored) is type(plan)
    assert restored == plan
    assert restored.specs == plan.specs
    assert restored.seed == plan.seed


@pytest.mark.parametrize("family", sorted(ROUND_TRIP_PLANS))
def test_round_trip_preserves_probability_stream(family):
    # Equal plans are not enough: the restored plan's injector must
    # draw the *same* random stream, or replay files would diverge on
    # probabilistic specs. Compare the seeded generators directly.
    import numpy as np
    plan = ROUND_TRIP_PLANS[family]
    restored = plan_from_json(plan_to_json(plan))
    original = np.random.default_rng(plan.seed)
    replayed = np.random.default_rng(restored.seed)
    assert [original.random() for _ in range(32)] \
        == [replayed.random() for _ in range(32)]


def test_preset_plans_round_trip():
    for key in (key for key in GOLDEN if not key.startswith("_")):
        family, _ = key.split("/")
        plan_cls = {"serve": ServingFaultPlan, "fleet": FleetFaultPlan,
                    "train": ClusterFaultPlan}[family]
        plan = plan_cls(_preset_specs(key), seed=3)
        assert plan_from_json(plan_to_json(plan)) == plan


def test_family_registry_covers_all_plan_classes():
    assert FAULT_FAMILIES == {"op": FaultPlan,
                              "cluster": ClusterFaultPlan,
                              "serving": ServingFaultPlan,
                              "fleet": FleetFaultPlan,
                              "storage": StorageFaultPlan}
    for family, plan_cls in FAULT_FAMILIES.items():
        assert plan_cls.SPEC_CLASS.FAMILY == family


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="family"):
        plan_from_json({"family": "quantum", "seed": 0, "specs": []})


def test_unknown_spec_field_rejected():
    blob = plan_to_json(ROUND_TRIP_PLANS["op"])
    blob["specs"][0]["surprise"] = True
    with pytest.raises(ValueError, match="surprise"):
        plan_from_json(blob)


def test_unknown_byzantine_spec_field_rejected():
    blob = plan_to_json(ClusterFaultPlan(
        [ClusterFaultSpec("byzantine_scale", worker=1)], seed=2))
    blob["specs"][0]["attack_vector"] = "apt"
    with pytest.raises(ValueError, match="attack_vector"):
        plan_from_json(blob)


@pytest.mark.parametrize("field,value", [("scale_factor", 0.0),
                                         ("scale_factor", float("nan")),
                                         ("drift_rate", -1.0),
                                         ("drift_rate", float("inf"))])
def test_byzantine_parameters_validated(field, value):
    with pytest.raises(ValueError, match=field):
        ClusterFaultSpec("byzantine_scale", **{field: value})


def test_wrong_spec_family_rejected():
    with pytest.raises(TypeError, match="ServingFaultSpec"):
        ServingFaultPlan([FaultSpec("exception")])
