"""Property-based tests (hypothesis) for optimizer update math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.framework import graph as graph_module
from repro.framework import ops
from repro.framework.optimizers import (AdamOptimizer,
                                        GradientDescentOptimizer,
                                        MomentumOptimizer,
                                        RMSPropOptimizer)
from repro.framework.session import Session

SETTINGS = dict(max_examples=25, deadline=None)


def quadratic(initial, target):
    graph = graph_module.reset_default_graph()
    w = ops.variable(initial.astype(np.float32), name="w")
    loss = ops.reduce_sum(ops.square(ops.subtract(
        w, ops.constant(target.astype(np.float32)))))
    return graph, w, loss


def vectors():
    return hnp.arrays(np.float32, st.integers(1, 6),
                      elements=st.floats(-5.0, 5.0, width=32))


class TestSGDProperties:
    @settings(**SETTINGS)
    @given(initial=vectors(), target=vectors(),
           lr=st.floats(1e-3, 0.4))
    def test_step_matches_closed_form(self, initial, target, lr):
        if initial.shape != target.shape:
            target = np.resize(target, initial.shape)
        graph, w, loss = quadratic(initial, target)
        train = GradientDescentOptimizer(lr).minimize(loss)
        session = Session(graph, seed=0)
        session.run(train)
        expected = initial - lr * 2.0 * (initial - target)
        np.testing.assert_allclose(session.variable_value(w), expected,
                                   rtol=1e-4, atol=1e-5)

    @settings(**SETTINGS)
    @given(initial=vectors(), lr=st.floats(1e-3, 0.4))
    def test_loss_never_increases_on_quadratic(self, initial, lr):
        # For f = ||w - t||^2 gradient descent with lr < 0.5 contracts.
        target = np.zeros_like(initial)
        graph, w, loss = quadratic(initial, target)
        train = GradientDescentOptimizer(lr).minimize(loss)
        session = Session(graph, seed=0)
        previous = float(session.run(loss))
        for _ in range(5):
            session.run(train)
            current = float(session.run(loss))
            assert current <= previous + 1e-5
            previous = current


class TestAdaptiveOptimizerProperties:
    @settings(**SETTINGS)
    @given(initial=vectors())
    def test_adam_first_step_magnitude_bounded_by_lr(self, initial):
        """Adam's bias-corrected first step has magnitude ~lr regardless
        of gradient scale — its defining property."""
        target = initial + np.float32(100.0)  # huge gradient
        graph, w, loss = quadratic(initial, target)
        lr = 0.05
        train = AdamOptimizer(lr).minimize(loss)
        session = Session(graph, seed=0)
        session.run(train)
        step = session.variable_value(w) - initial
        assert np.all(np.abs(step) <= lr * 1.01)
        assert np.all(np.abs(step) >= lr * 0.5)

    @settings(**SETTINGS)
    @given(initial=vectors(), scale=st.floats(0.1, 100.0))
    def test_rmsprop_step_scale_invariant(self, initial, scale):
        """Scaling the loss (hence gradient) leaves RMSProp's first-step
        direction magnitude nearly unchanged."""
        def first_step(loss_scale):
            graph = graph_module.reset_default_graph()
            w = ops.variable(initial.astype(np.float32), name="w")
            loss = ops.multiply(
                ops.reduce_sum(ops.square(ops.add(w, 1.0))),
                float(loss_scale))
            train = RMSPropOptimizer(0.01).minimize(loss)
            session = Session(graph, seed=0)
            session.run(train)
            return session.variable_value(w) - initial

        base = first_step(1.0)
        scaled = first_step(scale)
        np.testing.assert_allclose(np.abs(scaled), np.abs(base), rtol=0.3,
                                   atol=1e-4)

    @settings(**SETTINGS)
    @given(initial=vectors(), momentum=st.floats(0.0, 0.95))
    def test_momentum_zero_equals_sgd(self, initial, momentum):
        target = np.zeros_like(initial)
        lr = 0.1

        def final(optimizer):
            graph, w, loss = quadratic(initial, target)
            train = optimizer.minimize(loss)
            session = Session(graph, seed=0)
            session.run(train)
            return session.variable_value(w)

        sgd = final(GradientDescentOptimizer(lr))
        with_momentum = final(MomentumOptimizer(lr, momentum=0.0))
        np.testing.assert_allclose(sgd, with_momentum, rtol=1e-5,
                                   atol=1e-6)
