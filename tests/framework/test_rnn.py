"""Tests for recurrent cells and static unrolling."""

import numpy as np
import pytest

from repro.framework import ops, rnn
from repro.framework.session import Session


def manual_lstm_step(x, h, c, kernel, bias, forget_bias=1.0):
    """Reference LSTM step in plain numpy, matching the cell's gate order."""
    def sigmoid(v):
        return 1.0 / (1.0 + np.exp(-v))
    joined = np.concatenate([x, h], axis=1)
    gates = joined @ kernel + bias
    units = gates.shape[1] // 4
    i, j, f, o = (gates[:, k * units:(k + 1) * units] for k in range(4))
    new_c = c * sigmoid(f + forget_bias) + sigmoid(i) * np.tanh(j)
    new_h = np.tanh(new_c) * sigmoid(o)
    return new_h, new_c


class TestLSTMCell:
    def test_step_matches_manual_computation(self, fresh_graph, rng):
        cell = rnn.LSTMCell(num_units=5, input_size=3, rng=rng, name="cell")
        x = ops.placeholder((2, 3), name="x")
        out, (new_c, new_h) = cell(x, cell.zero_state(2))
        session = Session(fresh_graph, seed=0)
        x_val = rng.standard_normal((2, 3)).astype(np.float32)
        out_val, c_val = session.run([out, new_c], feed_dict={x: x_val})
        kernel = session.variable_value(cell.kernel)
        bias = session.variable_value(cell.bias)
        expected_h, expected_c = manual_lstm_step(
            x_val, np.zeros((2, 5), np.float32), np.zeros((2, 5), np.float32),
            kernel, bias)
        np.testing.assert_allclose(out_val, expected_h, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(c_val, expected_c, rtol=1e-4, atol=1e-5)

    def test_output_is_new_hidden_state(self, fresh_graph, rng):
        cell = rnn.LSTMCell(num_units=4, input_size=4, rng=rng)
        x = ops.placeholder((1, 4))
        out, (_, new_h) = cell(x, cell.zero_state(1))
        assert out is new_h

    def test_state_shapes(self, fresh_graph, rng):
        cell = rnn.LSTMCell(num_units=6, input_size=2, rng=rng)
        c0, h0 = cell.zero_state(3)
        assert c0.shape == (3, 6)
        assert h0.shape == (3, 6)


class TestBasicRNNCell:
    def test_activation_is_clipped_relu(self, fresh_graph, rng):
        cell = rnn.BasicRNNCell(num_units=4, input_size=4, rng=rng, clip=1.5)
        x = ops.placeholder((1, 4))
        out, _ = cell(x, cell.zero_state(1))
        session = Session(fresh_graph, seed=0)
        big = np.full((1, 4), 100.0, dtype=np.float32)
        out_val = session.run(out, feed_dict={x: big})
        assert np.all(out_val <= 1.5 + 1e-6)
        assert np.all(out_val >= 0.0)

    def test_state_feeds_back(self, fresh_graph, rng):
        cell = rnn.BasicRNNCell(num_units=3, input_size=3, rng=rng)
        x = ops.placeholder((1, 3))
        h1, state1 = cell(x, cell.zero_state(1))
        h2, _ = cell(x, state1)
        session = Session(fresh_graph, seed=0)
        x_val = np.ones((1, 3), dtype=np.float32)
        h1_val, h2_val = session.run([h1, h2], feed_dict={x: x_val})
        assert not np.allclose(h1_val, h2_val)


class TestStaticRNN:
    def test_unrolls_one_output_per_step(self, fresh_graph, rng):
        cell = rnn.LSTMCell(num_units=4, input_size=3, rng=rng)
        inputs = [ops.placeholder((2, 3), name=f"t{t}") for t in range(5)]
        outputs, final_state = rnn.static_rnn(cell, inputs)
        assert len(outputs) == 5
        assert all(o.shape == (2, 4) for o in outputs)
        assert final_state[0].shape == (2, 4)

    def test_empty_inputs_rejected(self, fresh_graph, rng):
        cell = rnn.LSTMCell(num_units=4, input_size=3, rng=rng)
        with pytest.raises(ValueError):
            rnn.static_rnn(cell, [])

    def test_order_sensitivity(self, fresh_graph, rng):
        """A recurrent stack must produce different final output for
        permuted input sequences (unlike a bag-of-words model)."""
        cell = rnn.LSTMCell(num_units=4, input_size=2, rng=rng)
        a = ops.placeholder((1, 2), name="a")
        b = ops.placeholder((1, 2), name="b")
        out_ab, _ = rnn.static_rnn(cell, [a, b])
        out_ba, _ = rnn.static_rnn(cell, [b, a])
        session = Session(fresh_graph, seed=0)
        feed = {a: np.array([[1.0, 0.0]], np.float32),
                b: np.array([[0.0, 1.0]], np.float32)}
        forward, backward = session.run([out_ab[-1], out_ba[-1]],
                                        feed_dict=feed)
        assert not np.allclose(forward, backward)


class TestBidirectional:
    def test_concatenates_directions(self, fresh_graph, rng):
        fwd = rnn.BasicRNNCell(num_units=3, input_size=2, rng=rng,
                               name="fwd")
        bwd = rnn.BasicRNNCell(num_units=3, input_size=2, rng=rng,
                               name="bwd")
        inputs = [ops.placeholder((2, 2), name=f"t{t}") for t in range(4)]
        outputs = rnn.bidirectional_rnn(fwd, bwd, inputs)
        assert len(outputs) == 4
        assert all(o.shape == (2, 6) for o in outputs)

    def test_backward_direction_sees_future(self, fresh_graph, rng):
        """The backward half of the first timestep's output must depend on
        the last input."""
        fwd = rnn.BasicRNNCell(num_units=3, input_size=2, rng=rng,
                               name="fwd")
        bwd = rnn.BasicRNNCell(num_units=3, input_size=2, rng=rng,
                               name="bwd")
        inputs = [ops.placeholder((1, 2), name=f"t{t}") for t in range(3)]
        outputs = rnn.bidirectional_rnn(fwd, bwd, inputs)
        session = Session(fresh_graph, seed=0)
        base = {p: np.zeros((1, 2), np.float32) for p in inputs}
        changed = dict(base)
        changed[inputs[2]] = np.ones((1, 2), np.float32)
        first_base = session.run(outputs[0], feed_dict=base)
        first_changed = session.run(outputs[0], feed_dict=changed)
        # forward half identical, backward half differs
        np.testing.assert_allclose(first_base[:, :3], first_changed[:, :3])
        assert not np.allclose(first_base[:, 3:], first_changed[:, 3:])
