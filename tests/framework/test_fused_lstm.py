"""Tests for the fused LSTM block op: equivalence, gradients, training."""

import numpy as np
import pytest

from repro.framework import ops, rnn
from repro.framework.autodiff import gradients
from repro.framework.errors import ShapeError
from repro.framework.ops.rnn_ops import LSTMBlockCellOp, lstm_block_cell
from repro.framework.optimizers import AdamOptimizer
from repro.framework.session import Session


def matched_cells(fresh_graph, rng, hidden=5, inputs=3):
    """A composed LSTMCell and a FusedLSTMCell sharing the same weights."""
    composed = rnn.LSTMCell(hidden, inputs, rng, name="composed")
    fused = rnn.FusedLSTMCell(hidden, inputs, rng, name="fused")
    return composed, fused


class TestEquivalence:
    def test_single_step_matches_composed(self, fresh_graph, rng):
        composed, fused = matched_cells(fresh_graph, rng)
        x = ops.placeholder((2, 3), name="x")
        out_composed, (c1, _) = composed(x, composed.zero_state(2))
        out_fused, (c2, _) = fused(x, fused.zero_state(2))
        session = Session(fresh_graph, seed=0)
        # Share weights.
        session.set_variable(fused.kernel,
                             session.variable_value(composed.kernel))
        session.set_variable(fused.bias,
                             session.variable_value(composed.bias))
        feed = {x: rng.standard_normal((2, 3)).astype(np.float32)}
        a, ca = session.run([out_composed, c1], feed_dict=feed)
        b, cb = session.run([out_fused, c2], feed_dict=feed)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(ca, cb, rtol=1e-4, atol=1e-5)

    def test_unrolled_sequence_matches(self, fresh_graph, rng):
        composed, fused = matched_cells(fresh_graph, rng)
        inputs = [ops.placeholder((1, 3), name=f"t{t}") for t in range(4)]
        out_composed, _ = rnn.static_rnn(composed, inputs)
        out_fused, _ = rnn.static_rnn(fused, inputs)
        session = Session(fresh_graph, seed=0)
        session.set_variable(fused.kernel,
                             session.variable_value(composed.kernel))
        session.set_variable(fused.bias,
                             session.variable_value(composed.bias))
        feed = {p: rng.standard_normal((1, 3)).astype(np.float32)
                for p in inputs}
        a = session.run(out_composed[-1], feed_dict=feed)
        b = session.run(out_fused[-1], feed_dict=feed)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_fused_uses_one_op_per_step(self, fresh_graph, rng):
        _, fused = matched_cells(fresh_graph, rng)
        before = len(fresh_graph)
        x = ops.placeholder((1, 3), name="x")
        fused(x, fused.zero_state(1))
        block_ops = [op for op in fresh_graph.operations
                     if op.type_name == "LSTMBlockCell"]
        assert len(block_ops) == 1


class TestGradients:
    def test_gradient_matches_numeric(self, fresh_graph, rng):
        from tests.conftest import numeric_gradient
        fused = rnn.FusedLSTMCell(4, 3, rng, name="cell")
        x = ops.placeholder((2, 3), name="x")
        out, (new_c, _) = fused(x, fused.zero_state(2))
        loss = ops.reduce_sum(ops.square(out)) \
            + ops.reduce_sum(ops.square(new_c))
        session = Session(fresh_graph, seed=0)
        value = rng.standard_normal((2, 3)).astype(np.float32)
        grad_x, grad_k = gradients(loss, [x, fused.kernel])
        analytic_x = session.run(grad_x, feed_dict={x: value})
        for index in [(0, 0), (1, 2)]:
            numeric = numeric_gradient(session, loss, x, value, index)
            np.testing.assert_allclose(analytic_x[index], numeric,
                                       rtol=5e-2, atol=1e-3)

    def test_kernel_gradient_via_check_gradients(self, fresh_graph, rng):
        from repro.framework.gradient_check import check_gradients
        fused = rnn.FusedLSTMCell(3, 2, rng, name="cell")
        x = ops.placeholder((2, 2), name="x")
        out, _ = fused(x, fused.zero_state(2))
        loss = ops.reduce_sum(ops.square(out))
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((2, 2)).astype(np.float32)}
        report = check_gradients(loss, [fused.kernel, fused.bias],
                                 session, feed_dict=feed,
                                 samples_per_tensor=4)
        assert report.max_relative_error < 5e-2, report.render()

    def test_chained_cell_state_gradient(self, fresh_graph, rng):
        """Gradients must flow through new_c into the previous step."""
        fused = rnn.FusedLSTMCell(3, 3, rng, name="cell")
        x1 = ops.placeholder((1, 3), name="x1")
        x2 = ops.placeholder((1, 3), name="x2")
        _, state = fused(x1, fused.zero_state(1))
        out, _ = fused(x2, state)
        loss = ops.reduce_sum(ops.square(out))
        grad = gradients(loss, [x1])[0]
        assert grad is not None
        session = Session(fresh_graph, seed=0)
        value = session.run(grad, feed_dict={
            x1: np.ones((1, 3), np.float32),
            x2: np.ones((1, 3), np.float32)})
        assert np.any(value != 0.0)


class TestTraining:
    def test_fused_stack_trains(self, fresh_graph, rng):
        fused = rnn.FusedLSTMCell(8, 4, rng, name="cell")
        inputs = [ops.placeholder((4, 4), name=f"t{t}") for t in range(3)]
        outputs, _ = rnn.static_rnn(fused, inputs)
        loss = ops.reduce_mean(ops.square(ops.subtract(outputs[-1], 0.5)))
        train = AdamOptimizer(0.05).minimize(loss)
        session = Session(fresh_graph, seed=0)
        feed = {p: rng.standard_normal((4, 4)).astype(np.float32)
                for p in inputs}
        first = session.run(loss, feed_dict=feed)
        for _ in range(60):
            session.run(train, feed_dict=feed)
        assert session.run(loss, feed_dict=feed) < 0.3 * first


class TestValidation:
    def test_kernel_shape_checked(self, fresh_graph, rng):
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        c = ops.constant(np.zeros((2, 4), dtype=np.float32))
        h = ops.constant(np.zeros((2, 4), dtype=np.float32))
        bad_kernel = ops.constant(np.zeros((5, 16), dtype=np.float32))
        bias = ops.constant(np.zeros(16, dtype=np.float32))
        with pytest.raises(ShapeError, match="kernel"):
            lstm_block_cell(x, c, h, bad_kernel, bias)

    def test_state_shape_checked(self, fresh_graph):
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        c = ops.constant(np.zeros((2, 4), dtype=np.float32))
        h = ops.constant(np.zeros((2, 5), dtype=np.float32))
        kernel = ops.constant(np.zeros((7, 16), dtype=np.float32))
        bias = ops.constant(np.zeros(16, dtype=np.float32))
        with pytest.raises(ShapeError):
            lstm_block_cell(x, c, h, kernel, bias)
