"""Tests for the automatic LSTM fusion pass."""

import numpy as np
import pytest

from repro.framework import ops, rnn
from repro.framework.autodiff import gradients
from repro.framework.fuse import fuse_lstm_cells
from repro.framework.graph import Graph, get_default_graph
from repro.framework.session import Session


def unrolled_stack(rng, steps=4, hidden=8, batch=2, layers=2):
    """A composed-LSTM stack like the workloads build."""
    inputs = [ops.placeholder((batch, hidden), name=f"t{t}")
              for t in range(steps)]
    cells = [rnn.LSTMCell(hidden, hidden, rng, name=f"l{i}")
             for i in range(layers)]
    states = [cell.zero_state(batch) for cell in cells]
    outputs = []
    for step_input in inputs:
        out = step_input
        new_states = []
        for cell, state in zip(cells, states):
            out, new_state = cell(out, state)
            new_states.append(new_state)
        states = new_states
        outputs.append(out)
    return inputs, outputs, cells


class TestFusionMatching:
    def test_every_step_fused(self, fresh_graph, rng):
        inputs, outputs, _ = unrolled_stack(rng, steps=4, layers=2)
        result = fuse_lstm_cells(get_default_graph(), [outputs[-1]])
        assert result.fused_cells == 8  # 4 steps x 2 layers
        fused_ops = [op for op in result.graph.operations
                     if op.type_name == "LSTMBlockCell"]
        assert len(fused_ops) == 8
        # The composed primitives are gone.
        assert not any(op.type_name == "Concat"
                       for op in result.graph.operations)
        assert result.stats.ops_out < 0.4 * result.stats.ops_in

    def test_fused_graph_is_numerically_identical(self, fresh_graph, rng):
        inputs, outputs, cells = unrolled_stack(rng, steps=3, layers=1)
        result = fuse_lstm_cells(get_default_graph(), [outputs[-1]])
        feed = {p: rng.standard_normal(p.shape).astype(np.float32)
                for p in inputs}
        original = Session(get_default_graph(), seed=0).run(
            outputs[-1], feed_dict=feed)
        fused = Session(result.graph, seed=0).run(
            result.map_tensor(outputs[-1]),
            feed_dict=result.map_feed(feed))
        np.testing.assert_allclose(original, fused, rtol=1e-4, atol=1e-6)

    def test_non_lstm_graphs_untouched(self, fresh_graph, rng):
        x = ops.placeholder((4, 8), name="x")
        out = ops.tanh(ops.matmul(
            x, ops.constant(rng.standard_normal((8, 4))
                            .astype(np.float32))))
        result = fuse_lstm_cells(get_default_graph(), [out])
        assert result.fused_cells == 0
        assert result.stats.ops_out == result.stats.ops_in

    def test_gru_not_mistaken_for_lstm(self, fresh_graph, rng):
        cell = rnn.GRUCell(8, 8, rng)
        x = ops.placeholder((2, 8), name="x")
        out, _ = cell(x, cell.zero_state(2))
        result = fuse_lstm_cells(get_default_graph(), [out])
        assert result.fused_cells == 0

    def test_interior_tensor_with_external_consumer_blocks_fusion(
            self, fresh_graph, rng):
        cell = rnn.LSTMCell(8, 8, rng)
        x = ops.placeholder((2, 8), name="x")
        out, (new_c, _) = cell(x, cell.zero_state(2))
        # Fetch an interior tensor (the pre-activation gates) directly.
        gates_op = next(op for op in get_default_graph().operations
                        if op.type_name == "BiasAdd")
        result = fuse_lstm_cells(get_default_graph(),
                                 [out, gates_op.outputs[0]])
        assert result.fused_cells == 0

    def test_training_graph_with_gradients_left_intact(self, fresh_graph,
                                                       rng):
        """Backward ops consume the gate activations, so a graph that
        already has gradients is not fusable (documented behaviour)."""
        cell = rnn.LSTMCell(8, 8, rng)
        x = ops.placeholder((2, 8), name="x")
        out, _ = cell(x, cell.zero_state(2))
        loss = ops.reduce_sum(ops.square(out))
        grads = gradients(loss, [cell.kernel])
        result = fuse_lstm_cells(get_default_graph(), [loss, grads[0]])
        assert result.fused_cells == 0


class TestWorkloadFusion:
    def test_seq2seq_inference_fuses_every_step(self):
        from repro import workloads
        model = workloads.create("seq2seq", config="tiny", seed=0)
        result = fuse_lstm_cells(model.graph, [model.inference_output])
        # encoder steps + decoder steps, times layers.
        steps = model.config["sequence_length"]
        layers = model.config["num_layers"]
        expected = (steps + steps + 1) * layers
        assert result.fused_cells == expected
        # Bit-identical output (fusion reorders no float arithmetic that
        # matters here).
        feed = model.sample_feed(training=False)
        original = model.session.run(model.inference_output,
                                     feed_dict=feed)
        fused = Session(result.graph, seed=0).run(
            result.map_tensor(model.inference_output),
            feed_dict=result.map_feed(feed))
        np.testing.assert_allclose(original, fused, rtol=1e-5, atol=1e-6)

    def test_lstm_lm_fuses(self):
        from repro.workloads import extensions
        model = extensions.create("lstm_lm", config="tiny", seed=0)
        result = fuse_lstm_cells(model.graph, [model.inference_output])
        assert result.fused_cells == (model.config["sequence_length"]
                                      * model.config["num_layers"])


class TestFuseThenTrain:
    def test_gradients_on_fused_graph(self, fresh_graph, rng):
        """The supported workflow: build forward, fuse, then autodiff —
        the fused op brings its own fused backward."""
        from repro.framework.optimizers import AdamOptimizer
        inputs, outputs, cells = unrolled_stack(rng, steps=3, layers=1)
        result = fuse_lstm_cells(get_default_graph(), [outputs[-1]])
        with result.graph.as_default():
            fused_out = result.map_tensor(outputs[-1])
            loss = ops.reduce_mean(ops.square(ops.subtract(fused_out,
                                                           0.5)))
            train = AdamOptimizer(0.05).minimize(loss)
        session = Session(result.graph, seed=0)
        feed = result.map_feed(
            {p: rng.standard_normal(p.shape).astype(np.float32)
             for p in inputs})
        first = session.run(loss, feed_dict=feed)
        for _ in range(50):
            session.run(train, feed_dict=feed)
        assert session.run(loss, feed_dict=feed) < 0.5 * first
        types = {op.type_name for op in result.graph.operations}
        assert "LSTMBlockGrad" in types
