"""Public-API surface tests: exports exist, __all__ is honest."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.framework",
    "repro.framework.ops",
    "repro.workloads",
    "repro.workloads.extensions",
    "repro.data",
    "repro.rl",
    "repro.profiling",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    def test_framework_namespace_has_the_toolchain(self):
        import repro.framework as fw
        for name in ("Session", "gradients", "check_gradients",
                     "calibrate_cpu", "cpu", "gpu", "Graph", "Tensor",
                     "Operation"):
            assert hasattr(fw, name)
        for module in ("rewrite", "fuse", "placement", "checkpoint",
                       "graph_export", "calibrate"):
            assert hasattr(fw, module)

    def test_op_registry_size(self):
        """The primitive vocabulary stays in TensorFlow's op-count
        ballpark; a sudden drop means a module stopped importing."""
        from repro.framework.graph import OP_TYPE_REGISTRY
        assert len(OP_TYPE_REGISTRY) >= 65

    def test_version(self):
        import repro
        assert repro.__version__


class TestRewriteFlags:
    def test_passes_can_be_disabled_independently(self, fresh_graph):
        import numpy as np
        from repro.framework import ops
        from repro.framework.graph import get_default_graph
        from repro.framework.rewrite import rewrite_graph

        a = ops.constant(np.ones(4, dtype=np.float32))
        out = ops.identity(ops.multiply(a, 2.0))
        graph = get_default_graph()

        no_fold = rewrite_graph(graph, [out], fold_constants=False)
        assert no_fold.stats.constants_folded == 0
        assert no_fold.map_tensor(out).op.type_name == "Mul"

        no_identity = rewrite_graph(graph, [out],
                                    eliminate_identities=False,
                                    fold_constants=False)
        assert no_identity.stats.identities_removed == 0
        assert no_identity.map_tensor(out).op.type_name == "Identity"

        no_cse = rewrite_graph(graph, [out], merge_subexpressions=False,
                               fold_constants=False)
        assert no_cse.stats.subexpressions_merged == 0


class TestWorkerPool:
    def test_pool_of_identical_workers(self):
        from repro.framework.placement import worker_pool
        pool = worker_pool(4, threads=2)
        assert len(pool) == 4
        assert all(model.threads == 2 for model in pool.values())

    def test_empty_pool_rejected(self):
        from repro.framework.placement import PlacementError, worker_pool
        with pytest.raises(PlacementError):
            worker_pool(0)

    def test_greedy_schedule_balances_independent_work(self, fresh_graph):
        import numpy as np
        from repro.framework import ops
        from repro.framework.graph import get_default_graph
        from repro.framework.placement import (simulate_greedy_schedule,
                                               worker_pool)
        base = ops.constant(np.ones((256, 256), dtype=np.float32))
        branches = [ops.matmul(base, base, name=f"branch{i}")
                    for i in range(4)]
        ops_list = get_default_graph().subgraph(branches)
        one = simulate_greedy_schedule(ops_list, worker_pool(1))
        four = simulate_greedy_schedule(ops_list, worker_pool(4))
        # Four independent matmuls over four workers: near-4x.
        assert one.makespan / four.makespan > 3.0
        assert sum(four.ops_per_device.values()) == len(ops_list)
