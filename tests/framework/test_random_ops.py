"""Tests for random sampling operations."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError
from repro.framework.session import Session


class TestRandomNormal:
    def test_moments(self, session):
        out = session.run(ops.random_normal((200, 200)))
        assert abs(out.mean()) < 0.02
        assert abs(out.std() - 1.0) < 0.02

    def test_shape_and_dtype(self, session):
        tensor = ops.random_normal((3, 5))
        assert tensor.shape == (3, 5)
        assert tensor.dtype == np.float32


class TestRandomUniform:
    def test_range(self, session):
        out = session.run(ops.random_uniform((100, 100)))
        assert out.min() >= 0.0
        assert out.max() < 1.0
        assert abs(out.mean() - 0.5) < 0.02


class TestMultinomial:
    def test_output_in_range(self, session):
        logits = ops.constant(np.zeros((4, 6), dtype=np.float32))
        out = session.run(ops.multinomial(logits, num_samples=10))
        assert out.shape == (4, 10)
        assert out.dtype == np.int32
        assert np.all((0 <= out) & (out < 6))

    def test_respects_distribution(self, session):
        # Overwhelming logit on class 2 -> nearly all samples are class 2.
        logits_value = np.full((1, 4), -10.0, dtype=np.float32)
        logits_value[0, 2] = 10.0
        out = session.run(ops.multinomial(ops.constant(logits_value),
                                          num_samples=200))
        assert (out == 2).mean() > 0.99

    def test_rank_check(self):
        bad = ops.constant(np.zeros((2, 3, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.multinomial(bad)


class TestDeterminism:
    def test_entire_random_stream_reproducible(self, fresh_graph):
        normal = ops.random_normal((10,))
        uniform = ops.random_uniform((10,))
        first = Session(fresh_graph, seed=9)
        second = Session(fresh_graph, seed=9)
        a = first.run([normal, uniform])
        b = second.run([normal, uniform])
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
