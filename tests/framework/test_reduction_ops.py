"""Correctness tests for reduction operations."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError

CASES = [
    (ops.reduce_sum, np.sum),
    (ops.reduce_mean, np.mean),
    (ops.reduce_max, np.max),
    (ops.reduce_min, np.min),
]
IDS = [c[0].__name__ for c in CASES]


class TestReductions:
    @pytest.mark.parametrize("op_fn,np_fn", CASES, ids=IDS)
    def test_full_reduction(self, session, rng, op_fn, np_fn):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        tensor = op_fn(ops.constant(x))
        assert tensor.shape == ()
        np.testing.assert_allclose(session.run(tensor), np_fn(x), rtol=1e-5)

    @pytest.mark.parametrize("op_fn,np_fn", CASES, ids=IDS)
    @pytest.mark.parametrize("axis", [0, 1, -1, (0, 2)])
    def test_axis_reduction(self, session, rng, op_fn, np_fn, axis):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        tensor = op_fn(ops.constant(x), axis=axis)
        np.testing.assert_allclose(session.run(tensor), np_fn(x, axis=axis),
                                   rtol=1e-5)

    @pytest.mark.parametrize("op_fn,np_fn", CASES, ids=IDS)
    def test_keepdims(self, session, rng, op_fn, np_fn):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        tensor = op_fn(ops.constant(x), axis=1, keepdims=True)
        assert tensor.shape == (3, 1)
        np.testing.assert_allclose(session.run(tensor),
                                   np_fn(x, axis=1, keepdims=True),
                                   rtol=1e-5)

    def test_out_of_range_axis_rejected(self):
        x = ops.constant(np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(ShapeError, match="out of range"):
            ops.reduce_sum(x, axis=2)

    def test_duplicate_axes_rejected(self):
        x = ops.constant(np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(ShapeError, match="duplicate"):
            ops.reduce_sum(x, axis=(1, -1))


class TestArgMax:
    def test_matches_numpy(self, session, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        out = session.run(ops.argmax(ops.constant(x), axis=1))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, np.argmax(x, axis=1))

    def test_negative_axis(self, session, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = session.run(ops.argmax(ops.constant(x), axis=-1))
        np.testing.assert_array_equal(out, np.argmax(x, axis=-1))
