"""Tests for the session executor: feeds, state, pruning, tracing."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ExecutionError, FeedError
from repro.framework.graph import Graph, get_default_graph
from repro.framework.session import Session
from repro.profiling.tracer import Tracer


class TestFetching:
    def test_single_fetch_returns_array(self, session):
        out = session.run(ops.constant(np.ones(3, dtype=np.float32)))
        np.testing.assert_array_equal(out, np.ones(3))

    def test_list_fetch_returns_list(self, session):
        a = ops.constant(1.0)
        b = ops.constant(2.0)
        out = session.run([a, b])
        assert isinstance(out, list) and len(out) == 2

    def test_fetching_intermediate_and_final(self, session):
        x = ops.constant(np.array([1.0, 2.0], dtype=np.float32))
        mid = ops.multiply(x, 2.0)
        final = ops.reduce_sum(mid)
        mid_val, final_val = session.run([mid, final])
        np.testing.assert_array_equal(mid_val, [2.0, 4.0])
        assert final_val == 6.0

    def test_unneeded_placeholder_not_required(self, session):
        used = ops.placeholder((2,), name="used")
        ops.placeholder((2,), name="unused")
        out = session.run(ops.reduce_sum(used),
                          feed_dict={used: np.ones(2, np.float32)})
        assert out == 2.0


class TestFeeds:
    def test_missing_placeholder_raises(self, session):
        x = ops.placeholder((2,), name="x")
        with pytest.raises(FeedError, match="was not fed"):
            session.run(ops.reduce_sum(x))

    def test_wrong_shape_feed_raises(self, session):
        x = ops.placeholder((2,), name="x")
        with pytest.raises(FeedError, match="shape"):
            session.run(ops.reduce_sum(x),
                        feed_dict={x: np.ones(3, np.float32)})

    def test_feeding_non_placeholder_raises(self, session):
        c = ops.constant(np.ones(2, dtype=np.float32))
        with pytest.raises(FeedError, match="placeholders"):
            session.run(c, feed_dict={c: np.zeros(2, np.float32)})

    def test_feed_value_cast_to_placeholder_dtype(self, session):
        x = ops.placeholder((2,), name="x")
        out = session.run(ops.multiply(x, 2.0),
                          feed_dict={x: [1, 2]})
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, [2.0, 4.0])


class TestVariables:
    def test_lazy_initialization(self, session):
        v = ops.variable(np.full(3, 7.0, dtype=np.float32))
        np.testing.assert_array_equal(session.run(v), [7.0, 7.0, 7.0])

    def test_assign_persists_across_runs(self, session):
        v = ops.variable(np.zeros(2, dtype=np.float32))
        update = ops.assign(v, ops.constant(np.ones(2, dtype=np.float32)))
        session.run(update)
        np.testing.assert_array_equal(session.run(v), [1.0, 1.0])

    def test_sessions_have_independent_state(self, fresh_graph):
        v = ops.variable(np.zeros(2, dtype=np.float32))
        update = ops.assign(v, ops.constant(np.ones(2, dtype=np.float32)))
        first = Session(fresh_graph, seed=0)
        second = Session(fresh_graph, seed=0)
        first.run(update)
        np.testing.assert_array_equal(first.run(v), [1.0, 1.0])
        np.testing.assert_array_equal(second.run(v), [0.0, 0.0])

    def test_set_and_get_variable(self, session):
        v = ops.variable(np.zeros(2, dtype=np.float32))
        session.set_variable(v, np.array([3.0, 4.0], dtype=np.float32))
        np.testing.assert_array_equal(session.variable_value(v), [3.0, 4.0])

    def test_set_variable_shape_checked(self, session):
        v = ops.variable(np.zeros(2, dtype=np.float32))
        with pytest.raises(FeedError, match="shape"):
            session.set_variable(v, np.zeros(3, dtype=np.float32))

    def test_set_variable_on_non_variable_raises(self, session):
        c = ops.constant(np.zeros(2, dtype=np.float32))
        with pytest.raises(FeedError, match="not a variable"):
            session.set_variable(c, np.zeros(2, dtype=np.float32))


class TestRandomness:
    def test_same_seed_reproduces(self, fresh_graph):
        sample = ops.random_normal((4, 4))
        a = Session(fresh_graph, seed=42).run(sample)
        b = Session(fresh_graph, seed=42).run(sample)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, fresh_graph):
        sample = ops.random_normal((4, 4))
        a = Session(fresh_graph, seed=1).run(sample)
        b = Session(fresh_graph, seed=2).run(sample)
        assert not np.array_equal(a, b)

    def test_sample_shared_within_run_fresh_across_runs(self, session):
        noise = ops.random_normal((8,))
        doubled = ops.multiply(noise, 2.0)
        noise_val, doubled_val = session.run([noise, doubled])
        np.testing.assert_allclose(doubled_val, 2 * noise_val, rtol=1e-6)
        second = session.run(noise)
        assert not np.array_equal(noise_val, second)


class TestErrors:
    def test_compute_failure_names_the_op(self, session):
        x = ops.placeholder((2, 2), name="x")
        # Gather with out-of-range indices fails at run time.
        bad = ops.gather(x, ops.constant(np.array([5], dtype=np.int32)))
        with pytest.raises(ExecutionError, match="Gather"):
            session.run(bad, feed_dict={x: np.zeros((2, 2), np.float32)})

    def test_chains_the_original_exception(self, session):
        x = ops.placeholder((2, 2), name="x")
        bad = ops.gather(x, ops.constant(np.array([5], dtype=np.int32)))
        with pytest.raises(ExecutionError) as info:
            session.run(bad, feed_dict={x: np.zeros((2, 2), np.float32)})
        # The kernel's own exception rides along as __cause__ so the
        # full traceback points at the real failure, not the wrapper.
        assert isinstance(info.value.__cause__, Exception)
        assert info.value.__cause__ is not info.value
        assert not info.value.transient

    def test_reports_input_shapes_of_failing_op(self, session):
        x = ops.placeholder((2, 3), name="x")
        bad = ops.gather(x, ops.constant(np.array([9], dtype=np.int32)))
        with pytest.raises(ExecutionError) as info:
            session.run(bad, feed_dict={x: np.zeros((2, 3), np.float32)})
        assert info.value.input_shapes == ((2, 3), (1,))
        assert "input shapes: (2, 3), (1,)" in str(info.value)


class TestCheckNumericsFirstOffender:
    def test_names_the_first_bad_op_not_a_downstream_one(self, session):
        """With two non-finite producers in topological order, the error
        must name the *earlier* one — that is where divergence started."""
        x = ops.placeholder((2,), name="x")
        first = ops.log(x, name="first_bad")        # NaN for x < 0
        second = ops.log(first, name="second_bad")  # NaN of NaN
        out = ops.reduce_sum(second, name="total")
        with pytest.raises(ExecutionError, match="first_bad") as info:
            session.run(out, feed_dict={x: np.array([-1.0, 1.0],
                                                    np.float32)},
                        check_numerics=True)
        assert "second_bad" not in str(info.value)
        assert info.value.op_name == "first_bad"

    def test_clean_prefix_executes_before_the_guard_fires(self, session):
        """Ops upstream of the offender run normally; the guard aborts
        the step at the first non-finite output."""
        x = ops.placeholder((2,), name="x")
        shifted = ops.add(x, 1.0, name="clean_shift")
        bad = ops.log(ops.subtract(shifted, 5.0), name="bad_log")
        tracer = Tracer()
        with pytest.raises(ExecutionError, match="bad_log"):
            session.run(bad, feed_dict={x: np.array([0.0, 1.0],
                                                    np.float32)},
                        tracer=tracer, check_numerics=True)
        executed = [r.op.name for r in tracer.records]
        assert "clean_shift" in executed
        assert executed[-1] == "bad_log"


class TestSnapshotRestore:
    def test_roundtrip_restores_variables_and_rng(self, session):
        w = ops.variable(np.zeros(3, dtype=np.float32), name="w")
        noise = ops.random_normal((3,))
        snapshot = session.state_snapshot()
        session.set_variable(w, np.full(3, 9.0, dtype=np.float32))
        first_draw = session.run(noise)
        session.restore_snapshot(snapshot)
        np.testing.assert_array_equal(session.variable_value(w),
                                      [0.0, 0.0, 0.0])
        # The RNG stream rewinds too: the same draw repeats exactly.
        np.testing.assert_array_equal(session.run(noise), first_draw)

    def test_snapshot_is_isolated_from_later_mutation(self, session):
        w = ops.variable(np.ones(2, dtype=np.float32), name="w")
        session.run(w)  # materialise the variable in session state
        snapshot = session.state_snapshot()
        session.set_variable(w, np.full(2, 5.0, dtype=np.float32))
        np.testing.assert_array_equal(snapshot.variables[id(w.op)],
                                      [1.0, 1.0])


class TestTracing:
    def test_tracer_records_each_op_per_step(self, session):
        x = ops.constant(np.ones((4, 4), dtype=np.float32))
        out = ops.reduce_sum(ops.multiply(x, x))
        tracer = Tracer()
        session.run(out, tracer=tracer)
        session.run(out, tracer=tracer)
        assert tracer.num_steps == 2
        types = {r.op_type for r in tracer.records}
        assert {"Mul", "Sum"} <= types
        step0 = tracer.records_for_step(0)
        step1 = tracer.records_for_step(1)
        assert len(step0) == len(step1) > 0

    def test_step_totals_bound_op_times(self, session):
        x = ops.constant(np.ones((64, 64), dtype=np.float32))
        out = ops.matmul(x, x)
        tracer = Tracer()
        session.run(out, tracer=tracer)
        assert tracer.step_totals[0] >= tracer.total_op_seconds() > 0.0

    def test_overhead_fraction_in_unit_interval(self, session):
        x = ops.constant(np.ones((32, 32), dtype=np.float32))
        out = ops.matmul(x, x)
        tracer = Tracer()
        for _ in range(3):
            session.run(out, tracer=tracer)
        assert 0.0 <= tracer.framework_overhead_fraction() < 1.0

    def test_clear_resets(self, session):
        out = ops.reduce_sum(ops.constant(np.ones(4, dtype=np.float32)))
        tracer = Tracer()
        session.run(out, tracer=tracer)
        tracer.clear()
        assert tracer.num_steps == 0
        assert tracer.records == []


class TestPlanCache:
    def test_repeat_runs_reuse_the_plan(self, session):
        total = ops.add(ops.constant(1.0), ops.constant(2.0))
        session.run(total)
        session.run(total)
        session.run(total)
        assert session.plan_compiles == 1
        assert session.plan_cache_hits == 2

    def test_graph_growth_invalidates_the_plan(self, fresh_graph):
        x = ops.variable(np.zeros(3, dtype=np.float32), name="w")
        y = ops.add(x, 1.0)
        session = Session(fresh_graph, seed=0)
        first = session.run(y)
        # Growing the graph must trigger recompilation on the next run,
        # even though the fetch is unchanged.
        ops.constant(5.0)
        second = session.run(y)
        np.testing.assert_array_equal(first, second)
        assert session.plan_compiles == 2

    def test_same_name_in_new_graph_is_rejected(self, fresh_graph):
        """Regression: the old cache was keyed only by fetch *names*.

        Running a same-named fetch from a different graph silently
        returned the first graph's cached value. It must now raise.
        """
        from repro.framework.errors import GraphError
        first = ops.constant(1.0)  # named "Const" in fresh_graph
        session = Session(fresh_graph, seed=0)
        assert float(session.run(first)) == 1.0
        other = Graph()
        with other.as_default():
            impostor = ops.constant(2.0)  # also named "Const"
        assert impostor.name == first.name
        with pytest.raises(GraphError):
            session.run(impostor)

    def test_compile_is_inspectable_without_running(self, session):
        total = ops.add(ops.constant(1.0), ops.constant(2.0))
        plan = session.compile(total)
        assert plan.num_steps == 3
        assert session.plan_compiles == 1
        assert session.compile_log[-1]["num_steps"] == 3
        # run() reuses what compile() built
        session.run(total)
        assert session.plan_compiles == 1


class TestValidatedFastPath:
    def test_steady_state_skips_asarray_normalization(self, session):
        """After first-run validation the executor must pass kernel
        outputs through without an np.asarray round trip."""
        a = ops.constant(np.ones((2, 2), dtype=np.float32))
        b = ops.add(a, a)
        plan = session.compile(b)
        assert all(not step.validated for step in plan.steps)
        session.run(b)
        assert all(step.validated for step in plan.steps)

        seen = []
        add_step = next(s for s in plan.steps if s.op is b.op)
        original_compute = type(b.op).compute

        class Canary(np.ndarray):
            pass

        def spying_compute(self, inputs, ctx):
            outputs = original_compute(self, inputs, ctx)
            tagged = tuple(np.asarray(o).view(Canary) for o in outputs)
            seen.append(tagged)
            return tagged

        type(b.op).compute = spying_compute
        try:
            result = session.run(b)
        finally:
            type(b.op).compute = original_compute
        # The exact object the kernel returned must be what run() hands
        # back: no asarray copy, no view-stripping, on the hot path.
        assert result is seen[0][0]
        assert isinstance(result, Canary)
        assert add_step.validated

    def test_check_numerics_still_names_first_offender_when_validated(
            self, session):
        x = ops.constant(np.zeros(3, dtype=np.float32), name="zeros")
        bad = ops.log(x, name="bad_log")  # -inf
        worse = ops.multiply(bad, 0.0, name="worse")  # nan downstream
        # Validate every step with the guard off...
        session.run(worse)
        # ...then the guard must still catch the first offender on the
        # validated fast path.
        with pytest.raises(ExecutionError, match="bad_log"):
            session.run(worse, check_numerics=True)
