"""Tests for the public gradient-check utility and check_numerics."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import DifferentiationError, ExecutionError
from repro.framework.gradient_check import check_gradients
from repro.framework.session import Session


class TestCheckGradients:
    def test_clean_gradients_pass(self, fresh_graph, rng):
        x = ops.placeholder((3, 4), name="x")
        w = ops.variable(rng.standard_normal((4, 2)).astype(np.float32),
                         name="w")
        loss = ops.reduce_mean(ops.square(ops.matmul(x, w)))
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((3, 4)).astype(np.float32)}
        report = check_gradients(loss, [x, w], session, feed_dict=feed,
                                 samples_per_tensor=4)
        assert report.max_relative_error < 2e-2
        assert len(report.entries) == 8

    def test_variable_state_restored_after_check(self, fresh_graph, rng):
        w = ops.variable(np.ones(3, dtype=np.float32), name="w")
        loss = ops.reduce_sum(ops.square(w))
        session = Session(fresh_graph, seed=0)
        check_gradients(loss, [w], session)
        np.testing.assert_array_equal(session.variable_value(w),
                                      [1.0, 1.0, 1.0])

    def test_rejects_non_scalar_loss(self, fresh_graph):
        x = ops.placeholder((3,), name="x")
        with pytest.raises(DifferentiationError, match="scalar"):
            check_gradients(ops.square(x), [x], Session(fresh_graph))

    def test_rejects_independent_target(self, fresh_graph):
        x = ops.placeholder((3,), name="x")
        y = ops.placeholder((3,), name="y")
        loss = ops.reduce_sum(x)
        session = Session(fresh_graph, seed=0)
        with pytest.raises(DifferentiationError, match="depend"):
            check_gradients(loss, [y], session,
                            feed_dict={x: np.ones(3, np.float32),
                                       y: np.ones(3, np.float32)})

    def test_detects_a_wrong_gradient(self, fresh_graph, rng):
        """A deliberately broken gradient rule must produce a large
        reported error (guard against the checker silently passing)."""
        from repro.framework.cost_model import elementwise_work
        from repro.framework.graph import Operation, OpClass

        class BadSquare(Operation):
            type_name = "BadSquare"
            op_class = OpClass.ELEMENTWISE

            def _output_specs(self):
                return [(self.inputs[0].shape, self.inputs[0].dtype)]

            def compute(self, inputs, ctx):
                return (np.square(inputs[0]),)

            def gradient(self, grads):
                # WRONG on purpose: forgets the factor of 2x.
                return [grads[0]]

        x = ops.placeholder((4,), name="x")
        loss = ops.reduce_sum(BadSquare([x]).output)
        session = Session(fresh_graph, seed=0)
        feed = {x: (rng.standard_normal(4).astype(np.float32) + 2.0)}
        report = check_gradients(loss, [x], session, feed_dict=feed)
        assert report.max_relative_error > 0.3

    def test_render(self, fresh_graph, rng):
        x = ops.placeholder((2, 2), name="x")
        loss = ops.reduce_sum(ops.tanh(x))
        session = Session(fresh_graph, seed=0)
        report = check_gradients(
            loss, [x], session,
            feed_dict={x: rng.standard_normal((2, 2)).astype(np.float32)})
        text = report.render()
        assert "max relative error" in text


class TestCheckNumerics:
    def test_flags_nan_with_op_name(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        bad = ops.log(x, name="log_op")
        session = Session(fresh_graph, seed=0)
        with pytest.raises(ExecutionError, match="log_op.*NaN"):
            session.run(bad, feed_dict={x: np.array([-1.0, 1.0],
                                                    np.float32)},
                        check_numerics=True)

    def test_flags_inf(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        bad = ops.divide(1.0, x, name="div_op")
        session = Session(fresh_graph, seed=0)
        with pytest.raises(ExecutionError, match="Inf"):
            session.run(bad, feed_dict={x: np.array([0.0, 1.0],
                                                    np.float32)},
                        check_numerics=True)

    def test_clean_run_unaffected(self, fresh_graph):
        x = ops.constant(np.ones(4, dtype=np.float32))
        out = ops.reduce_sum(ops.exp(x))
        session = Session(fresh_graph, seed=0)
        value = session.run(out, check_numerics=True)
        assert np.isfinite(value)

    def test_off_by_default(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        bad = ops.log(x)
        session = Session(fresh_graph, seed=0)
        out = session.run(bad, feed_dict={x: np.array([-1.0, 1.0],
                                                      np.float32)})
        assert np.isnan(out[0])


class TestTopK:
    def test_values_and_indices(self, session):
        x = ops.constant(np.array([[1.0, 5.0, 3.0, 2.0]], dtype=np.float32))
        values, indices = ops.top_k(x, k=2)
        v, i = session.run([values, indices])
        np.testing.assert_array_equal(v, [[5.0, 3.0]])
        np.testing.assert_array_equal(i, [[1, 2]])

    def test_k_out_of_range_rejected(self):
        from repro.framework.errors import ShapeError
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            ops.top_k(x, k=4)

    def test_batched(self, session, rng):
        x = rng.standard_normal((5, 8)).astype(np.float32)
        values, _ = ops.top_k(ops.constant(x), k=3)
        out = session.run(values)
        expected = np.sort(x, axis=-1)[:, ::-1][:, :3]
        np.testing.assert_allclose(out, expected)

    def test_classifier_reports_top5(self):
        from repro import workloads
        model = workloads.create("alexnet", config="tiny", seed=0)
        metrics = model.evaluate(batches=1)
        assert "top5_accuracy" in metrics
        assert metrics["top5_accuracy"] >= metrics["accuracy"]
