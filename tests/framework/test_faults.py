"""Tests for the deterministic fault-injection harness."""

import time

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ExecutionError
from repro.framework.faults import (FaultInjector, FaultPlan, FaultSpec,
                                    InjectedFault, InjectionEvent)
from repro.framework.session import Session


def tiny_graph():
    x = ops.placeholder((2, 3), name="x")
    w = ops.variable(np.ones((3, 2), dtype=np.float32), name="w")
    y = ops.matmul(x, w, name="proj")
    out = ops.reduce_sum(y, name="total")
    return x, out


def feed_for(x):
    return {x: np.ones((2, 3), dtype=np.float32)}


class TestFaultSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor")

    def test_rejects_bad_payload(self):
        with pytest.raises(ValueError, match="payload"):
            FaultSpec(kind="nan", payload="zero")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="exception", probability=0.0)

    def test_rejects_bad_regex(self):
        with pytest.raises(Exception):
            FaultSpec(kind="exception", name_pattern="(unclosed")


class TestExceptionFaults:
    def test_raises_transient_injected_fault(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(
            FaultPlan([FaultSpec(kind="exception", op_type="MatMul")]))
        with pytest.raises(InjectedFault, match="injected transient"):
            session.run(out, feed_dict=feed_for(x))
        # InjectedFault is a retryable ExecutionError naming the op.
        try:
            session2 = Session(fresh_graph, seed=0)
            session2.fault_injector = FaultInjector(
                FaultPlan([FaultSpec(kind="exception", op_type="MatMul")]))
            session2.run(out, feed_dict=feed_for(x))
        except ExecutionError as exc:
            assert exc.transient
            assert exc.op_name == "proj"

    def test_max_triggers_limits_injections(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul", max_triggers=1)]))
        session.fault_injector = injector
        with pytest.raises(InjectedFault):
            session.run(out, feed_dict=feed_for(x))
        # Second run: the single-shot fault is spent, execution succeeds.
        value = session.run(out, feed_dict=feed_for(x))
        assert float(value) == pytest.approx(12.0)
        assert injector.num_injected == 1

    def test_step_targeting(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul", step=1)]))
        session.fault_injector = injector
        session.run(out, feed_dict=feed_for(x))  # step 0: clean
        with pytest.raises(InjectedFault, match="step 1"):
            session.run(out, feed_dict=feed_for(x))
        assert injector.events == [InjectionEvent(
            step=1, op_name="proj", kind="exception", spec_index=0)]

    def test_aborted_run_still_advances_step(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul", step=0)]))
        session.fault_injector = injector
        with pytest.raises(InjectedFault):
            session.run(out, feed_dict=feed_for(x))
        assert injector.step == 1  # the aborted run counted


class TestNanFaults:
    def test_poisons_targeted_output(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", name_pattern="^total$")]))
        assert np.isnan(session.run(out, feed_dict=feed_for(x)))

    def test_inf_payload(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", name_pattern="^total$", payload="inf")]))
        assert np.isinf(session.run(out, feed_dict=feed_for(x)))

    def test_poison_copies_rather_than_mutates(self, fresh_graph):
        """Poisoning a Const output must not corrupt the graph's array."""
        c = ops.constant(np.ones(3, dtype=np.float32), name="c")
        out = ops.reduce_sum(c, name="s")
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", op_type="Const")]))
        assert np.isnan(session.run(out))
        np.testing.assert_array_equal(c.op.attrs["value"], [1.0, 1.0, 1.0])

    def test_untargeted_ops_untouched(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", op_type="Tanh")]))  # not in the graph
        assert float(session.run(out, feed_dict=feed_for(x))) == \
            pytest.approx(12.0)


class TestFeedFaults:
    def test_corrupts_fed_minibatch(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="feed", name_pattern="^x$")]))
        session.fault_injector = injector
        assert np.isnan(session.run(out, feed_dict=feed_for(x)))
        assert injector.events[0].kind == "feed"

    def test_caller_array_not_mutated(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="feed", name_pattern="^x$")]))
        batch = np.ones((2, 3), dtype=np.float32)
        session.run(out, feed_dict={x: batch})
        np.testing.assert_array_equal(batch, np.ones((2, 3)))


class TestLatencyFaults:
    def test_injects_sleep(self, fresh_graph):
        x, out = tiny_graph()
        session = Session(fresh_graph, seed=0)
        injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="latency", op_type="MatMul",
                       latency_seconds=0.02)]))
        session.fault_injector = injector
        start = time.perf_counter()
        session.run(out, feed_dict=feed_for(x))
        assert time.perf_counter() - start >= 0.02
        assert injector.events[0].kind == "latency"


class TestDeterminism:
    def run_plan(self, fresh_graph, plan, runs=4):
        from repro.framework.graph import Graph
        graph = Graph()  # own graph per run: identical op names
        with graph.as_default():
            x, out = tiny_graph()
        session = Session(graph, seed=0)
        injector = FaultInjector(plan)
        session.fault_injector = injector
        for _ in range(runs):
            try:
                session.run(out, feed_dict=feed_for(x))
            except InjectedFault:
                pass
        return injector.signature()

    def test_identical_runs_identical_events(self, fresh_graph):
        plan = FaultPlan([
            FaultSpec(kind="exception", op_type="MatMul", probability=0.5,
                      max_triggers=None),
            FaultSpec(kind="nan", name_pattern="total", probability=0.5,
                      max_triggers=None),
        ], seed=42)
        first = self.run_plan(fresh_graph, plan)
        second = self.run_plan(fresh_graph, plan)
        assert first == second
        assert first  # the probabilistic plan did fire at seed 42

    def test_different_seeds_can_differ(self, fresh_graph):
        def signature(seed):
            plan = FaultPlan([FaultSpec(kind="nan", name_pattern="total",
                                        probability=0.5,
                                        max_triggers=None)], seed=seed)
            return self.run_plan(fresh_graph, plan, runs=8)
        signatures = {signature(seed) for seed in range(6)}
        assert len(signatures) > 1

    def test_plan_is_immutable(self):
        plan = FaultPlan([FaultSpec(kind="exception")], seed=1)
        with pytest.raises(Exception):
            plan.seed = 2

    def test_injector_factory(self):
        plan = FaultPlan([FaultSpec(kind="exception")], seed=1)
        injector = plan.injector()
        assert injector.plan is plan
        assert injector.step == 0
