"""Tests for weight initializers."""

import numpy as np

from repro.framework import initializers


class TestBasics:
    def test_zeros_and_ones(self, rng):
        assert not initializers.zeros(rng, (3, 3)).any()
        assert initializers.ones(rng, (3, 3)).all()

    def test_constant_fill(self, rng):
        out = initializers.constant_fill(0.7)(rng, (4,))
        np.testing.assert_allclose(out, 0.7)

    def test_all_emit_float32(self, rng):
        for init in (initializers.zeros, initializers.ones,
                     initializers.glorot_uniform, initializers.he_normal,
                     initializers.truncated_normal(0.1),
                     initializers.uniform(0.5)):
            assert init(rng, (3, 4)).dtype == np.float32


class TestGlorot:
    def test_limit_respected(self, rng):
        shape = (100, 200)
        out = initializers.glorot_uniform(rng, shape)
        limit = np.sqrt(6.0 / (100 + 200))
        assert np.abs(out).max() <= limit

    def test_conv_fans_use_receptive_field(self, rng):
        out = initializers.glorot_uniform(rng, (3, 3, 16, 32))
        limit = np.sqrt(6.0 / (9 * 16 + 9 * 32))
        assert np.abs(out).max() <= limit


class TestHeNormal:
    def test_variance_scales_with_fan_in(self, rng):
        out = initializers.he_normal(rng, (1000, 50))
        expected_std = np.sqrt(2.0 / 1000)
        assert abs(out.std() - expected_std) < 0.15 * expected_std


class TestTruncatedNormal:
    def test_no_outliers_beyond_two_sigma(self, rng):
        init = initializers.truncated_normal(0.5)
        out = init(rng, (200, 200))
        assert np.abs(out).max() <= 2.0 * 0.5 + 1e-6

    def test_stddev_scaling(self, rng):
        small = initializers.truncated_normal(0.01)(rng, (100, 100))
        large = initializers.truncated_normal(1.0)(rng, (100, 100))
        assert large.std() > 10 * small.std()


class TestUniform:
    def test_symmetric_range(self, rng):
        out = initializers.uniform(0.3)(rng, (100, 100))
        assert out.min() >= -0.3
        assert out.max() <= 0.3
        assert abs(out.mean()) < 0.01


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = initializers.glorot_uniform(np.random.default_rng(5), (10, 10))
        b = initializers.glorot_uniform(np.random.default_rng(5), (10, 10))
        np.testing.assert_array_equal(a, b)
