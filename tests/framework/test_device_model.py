"""Tests for the analytic CPU/GPU device models.

These encode the mechanisms the paper's Figs. 5 and 6 rely on: threads
help large-trip-count ops, small ops are overhead-bound, the GPU beats
the CPU on dense work but pays per-kernel launch costs.
"""

import pytest

from repro.framework.cost_model import WorkEstimate, matmul_work
from repro.framework.device_model import (CPUDeviceModel, GPUDeviceModel,
                                          cpu, gpu)

BIG = matmul_work(512, 512, 512)             # dense, highly parallel
SMALL = WorkEstimate(flops=500.0, bytes_moved=2000.0, trip_count=50.0)
SERIAL = WorkEstimate(flops=1e6, bytes_moved=1e4, trip_count=1.0)


class TestCPUModel:
    def test_more_threads_never_slower(self):
        for work in (BIG, SMALL, SERIAL):
            times = [cpu(t).op_time(work) for t in (1, 2, 4, 8)]
            assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_big_ops_scale_nearly_linearly(self):
        t1 = cpu(1).op_time(BIG)
        t8 = cpu(8).op_time(BIG)
        assert t1 / t8 > 5.0

    def test_small_ops_do_not_scale(self):
        t1 = cpu(1).op_time(SMALL)
        t8 = cpu(8).op_time(SMALL)
        assert t1 / t8 < 1.2

    def test_serial_work_never_scales(self):
        assert cpu(1).op_time(SERIAL) == pytest.approx(cpu(8).op_time(SERIAL))

    def test_overhead_floors_tiny_ops(self):
        model = cpu(1)
        tiny = WorkEstimate(flops=1.0, bytes_moved=4.0, trip_count=1.0)
        assert model.op_time(tiny) >= model.dispatch_overhead

    def test_effective_threads_capped_by_trip_count(self):
        model = cpu(8)
        assert model.effective_threads(SERIAL) == 1.0
        assert model.effective_threads(BIG) == 8.0

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            cpu(0)

    def test_name_encodes_threads(self):
        assert cpu(4).name == "cpu4"


class TestGPUModel:
    def test_beats_cpu_on_dense_work(self):
        assert gpu().op_time(BIG) < cpu(1).op_time(BIG) / 5.0

    def test_launch_bound_on_tiny_ops(self):
        model = gpu()
        tiny = WorkEstimate(flops=10.0, bytes_moved=40.0, trip_count=4.0)
        assert model.op_time(tiny) >= model.launch_overhead

    def test_utilization_grows_with_trips(self):
        model = gpu()
        low = model.utilization(WorkEstimate(1, 1, trip_count=100))
        high = model.utilization(WorkEstimate(1, 1, trip_count=1_000_000))
        assert low < 0.1 < 0.9 < high

    def test_name(self):
        assert gpu().name == "gpu"


class TestRelativeBehaviour:
    def test_gpu_advantage_grows_with_skew(self):
        """A dense-heavy workload gains more from the GPU than a workload
        of many small ops — the paper's 'especially on workloads with
        higher skew' observation."""
        dense_cpu = cpu(1).op_time(BIG)
        dense_gpu = gpu().op_time(BIG)
        skinny_cpu = sum(cpu(1).op_time(SMALL) for _ in range(100))
        skinny_gpu = sum(gpu().op_time(SMALL) for _ in range(100))
        assert dense_cpu / dense_gpu > skinny_cpu / skinny_gpu

    def test_paper_constants_are_sane(self):
        # i7-6700k-class core vs GTX 960-class device
        cpu_model = CPUDeviceModel()
        gpu_model = GPUDeviceModel()
        assert 1e9 < cpu_model.per_core_flops < 1e11
        assert 1e11 < gpu_model.peak_flops < 1e13
        assert gpu_model.memory_bandwidth > cpu_model.memory_bandwidth
