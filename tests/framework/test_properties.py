"""Property-based tests (hypothesis) on framework invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.framework import graph as graph_module
from repro.framework import ops
from repro.framework.autodiff import gradients
from repro.framework.session import Session

SETTINGS = dict(max_examples=40, deadline=None)


def small_shapes():
    return hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5)


def float_arrays(shape=None):
    shape_strategy = st.just(shape) if shape is not None else small_shapes()
    return hnp.arrays(np.float32, shape_strategy,
                      elements=st.floats(-10.0, 10.0, width=32))


def fresh_session():
    graph = graph_module.reset_default_graph()
    return Session(graph, seed=0)


class TestElementwiseMatchesNumpy:
    @settings(**SETTINGS)
    @given(float_arrays())
    def test_add_commutes(self, x):
        session = fresh_session()
        a = ops.constant(x)
        b = ops.constant(x[::-1].copy() if x.ndim == 1 else x)
        left = session.run(ops.add(a, b))
        right = session.run(ops.add(b, a))
        np.testing.assert_array_equal(left, right)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_double_negative_is_identity(self, x):
        session = fresh_session()
        out = session.run(ops.negative(ops.negative(ops.constant(x))))
        np.testing.assert_array_equal(out, x)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_exp_log_roundtrip(self, x):
        session = fresh_session()
        out = session.run(ops.log(ops.exp(ops.constant(x))))
        np.testing.assert_allclose(out, x, rtol=1e-3, atol=1e-4)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_relu_idempotent(self, x):
        session = fresh_session()
        once = session.run(ops.relu(ops.constant(x)))
        twice = session.run(ops.relu(ops.relu(ops.constant(x))))
        np.testing.assert_array_equal(once, twice)


class TestMovementInvariants:
    @settings(**SETTINGS)
    @given(float_arrays())
    def test_reshape_preserves_content(self, x):
        session = fresh_session()
        flat = ops.reshape(ops.constant(x), (-1,))
        back = ops.reshape(flat, x.shape)
        np.testing.assert_array_equal(session.run(back), x)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_double_transpose_is_identity(self, x):
        session = fresh_session()
        out = session.run(ops.transpose(ops.transpose(ops.constant(x))))
        np.testing.assert_array_equal(out, x)

    @settings(**SETTINGS)
    @given(float_arrays(), st.integers(1, 3))
    def test_tile_multiplies_sum(self, x, reps):
        session = fresh_session()
        multiples = (reps,) + (1,) * (x.ndim - 1)
        tiled = ops.tile(ops.constant(x), multiples)
        total = session.run(ops.reduce_sum(tiled))
        np.testing.assert_allclose(total, reps * x.sum(dtype=np.float64),
                                   rtol=1e-3, atol=1e-3)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_pad_preserves_sum(self, x):
        session = fresh_session()
        padded = ops.pad(ops.constant(x), [(1, 2)] * x.ndim)
        np.testing.assert_allclose(session.run(ops.reduce_sum(padded)),
                                   x.sum(dtype=np.float64), rtol=1e-3,
                                   atol=1e-3)


class TestReductionInvariants:
    @settings(**SETTINGS)
    @given(float_arrays())
    def test_sum_over_all_axes_matches_full_sum(self, x):
        session = fresh_session()
        by_axes = ops.constant(x)
        for _ in range(x.ndim):
            by_axes = ops.reduce_sum(by_axes, axis=0)
        full = ops.reduce_sum(ops.constant(x))
        np.testing.assert_allclose(session.run(by_axes), session.run(full),
                                   rtol=1e-3, atol=1e-3)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_max_bounds_mean(self, x):
        session = fresh_session()
        mx = session.run(ops.reduce_max(ops.constant(x)))
        mean = session.run(ops.reduce_mean(ops.constant(x)))
        assert mx >= mean - 1e-5


class TestSoftmaxInvariants:
    @settings(**SETTINGS)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5),
                                            st.integers(2, 6)),
                      elements=st.floats(-20.0, 20.0, width=32)))
    def test_rows_are_distributions(self, x):
        session = fresh_session()
        out = session.run(ops.softmax(ops.constant(x)))
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)

    @settings(**SETTINGS)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5),
                                            st.integers(2, 6)),
                      elements=st.floats(-20.0, 20.0, width=32)),
           st.floats(-5.0, 5.0))
    def test_shift_invariance(self, x, shift):
        session = fresh_session()
        base = session.run(ops.softmax(ops.constant(x)))
        shifted = session.run(
            ops.softmax(ops.constant(x + np.float32(shift))))
        np.testing.assert_allclose(base, shifted, rtol=1e-3, atol=1e-5)


class TestAutodiffInvariants:
    @settings(**SETTINGS)
    @given(float_arrays())
    def test_gradient_of_sum_is_ones(self, x):
        session = fresh_session()
        ph = ops.placeholder(x.shape, name="x")
        grad = gradients(ops.reduce_sum(ph), [ph])[0]
        np.testing.assert_array_equal(session.run(grad, feed_dict={ph: x}),
                                      np.ones_like(x))

    @settings(**SETTINGS)
    @given(float_arrays(), st.floats(-3.0, 3.0))
    def test_gradient_linearity_in_scale(self, x, scale):
        session = fresh_session()
        ph = ops.placeholder(x.shape, name="x")
        base_grad = gradients(ops.reduce_sum(ops.square(ph)), [ph])[0]
        scaled_grad = gradients(
            ops.multiply(ops.reduce_sum(ops.square(ph)), np.float32(scale)),
            [ph])[0]
        g1 = session.run(base_grad, feed_dict={ph: x})
        g2 = session.run(scaled_grad, feed_dict={ph: x})
        np.testing.assert_allclose(g2, np.float32(scale) * g1, rtol=1e-3,
                                   atol=1e-3)

    @settings(**SETTINGS)
    @given(float_arrays())
    def test_gradient_through_movement_preserves_total(self, x):
        """d(sum(reshape/transpose(x)))/dx is all-ones regardless of the
        movement ops in between."""
        session = fresh_session()
        ph = ops.placeholder(x.shape, name="x")
        moved = ops.transpose(ops.reshape(ph, (-1,)), (0,))
        grad = gradients(ops.reduce_sum(moved), [ph])[0]
        np.testing.assert_array_equal(session.run(grad, feed_dict={ph: x}),
                                      np.ones_like(x))


class TestWorkEstimateInvariants:
    @settings(**SETTINGS)
    @given(st.integers(1, 32), st.integers(1, 32), st.integers(1, 32))
    def test_matmul_work_positive_and_symmetric_in_mn(self, m, k, n):
        from repro.framework.cost_model import matmul_work
        forward = matmul_work(m, k, n)
        swapped = matmul_work(n, k, m)
        assert forward.flops == swapped.flops
        assert forward.flops > 0
        assert forward.trip_count == m * n
