"""Tests for layer builders (dense, conv, batch norm, embedding)."""

import numpy as np

from repro.framework import layers, ops
from repro.framework.session import Session


class TestDense:
    def test_output_shape_and_value(self, fresh_graph, rng):
        x = ops.placeholder((3, 5), name="x")
        out = layers.dense(x, units=7, rng=rng, name="fc")
        assert out.shape == (3, 7)
        session = Session(fresh_graph, seed=0)
        x_val = rng.standard_normal((3, 5)).astype(np.float32)
        value = session.run(out, feed_dict={x: x_val})
        graph = fresh_graph
        weights = session.variable_value(
            graph.get_operation("fc/weights").output)
        bias = session.variable_value(graph.get_operation("fc/bias").output)
        np.testing.assert_allclose(value, x_val @ weights + bias, rtol=1e-4)

    def test_activation_applied(self, fresh_graph, rng):
        x = ops.placeholder((2, 4), name="x")
        out = layers.dense(x, units=3, rng=rng, activation=ops.relu)
        session = Session(fresh_graph, seed=0)
        value = session.run(
            out, feed_dict={x: rng.standard_normal((2, 4)).astype(np.float32)})
        assert np.all(value >= 0.0)


class TestConvLayer:
    def test_shapes_with_stride(self, fresh_graph, rng):
        x = ops.placeholder((2, 16, 16, 3), name="x")
        out = layers.conv2d_layer(x, filters=8, kernel_size=3, rng=rng,
                                  strides=2)
        assert out.shape == (2, 8, 8, 8)

    def test_no_bias_option(self, fresh_graph, rng):
        x = ops.placeholder((1, 8, 8, 1), name="x")
        layers.conv2d_layer(x, filters=4, kernel_size=3, rng=rng,
                            use_bias=False, name="nobias")
        names = [op.name for op in fresh_graph.operations]
        assert not any("nobias/bias" in name for name in names)


class TestBatchNorm:
    def test_normalizes_to_zero_mean_unit_variance(self, fresh_graph, rng):
        x = ops.placeholder((64, 8), name="x")
        out = layers.batch_norm(x, name="bn")
        session = Session(fresh_graph, seed=0)
        skewed = (rng.standard_normal((64, 8)) * 5.0 + 3.0).astype(np.float32)
        value = session.run(out, feed_dict={x: skewed})
        np.testing.assert_allclose(value.mean(axis=0), np.zeros(8),
                                   atol=1e-3)
        np.testing.assert_allclose(value.std(axis=0), np.ones(8), atol=1e-2)

    def test_gamma_beta_rescale(self, fresh_graph, rng):
        x = ops.placeholder((32, 4), name="x")
        out = layers.batch_norm(x, name="bn")
        session = Session(fresh_graph, seed=0)
        gamma = fresh_graph.get_operation("bn/gamma").output
        beta = fresh_graph.get_operation("bn/beta").output
        session.set_variable(gamma, np.full(4, 2.0, dtype=np.float32))
        session.set_variable(beta, np.full(4, 10.0, dtype=np.float32))
        value = session.run(
            out,
            feed_dict={x: rng.standard_normal((32, 4)).astype(np.float32)})
        np.testing.assert_allclose(value.mean(axis=0), np.full(4, 10.0),
                                   atol=1e-2)


class TestEmbedding:
    def test_lookup_shape(self, fresh_graph, rng):
        ids = ops.placeholder((4, 6), dtype=np.int32, name="ids")
        out = layers.embedding(ids, vocab_size=100, embed_dim=16, rng=rng)
        assert out.shape == (4, 6, 16)

    def test_same_id_same_vector(self, fresh_graph, rng):
        ids = ops.placeholder((1, 3), dtype=np.int32, name="ids")
        out = layers.embedding(ids, vocab_size=10, embed_dim=4, rng=rng)
        session = Session(fresh_graph, seed=0)
        value = session.run(
            out, feed_dict={ids: np.array([[7, 7, 2]], dtype=np.int32)})
        np.testing.assert_array_equal(value[0, 0], value[0, 1])
        assert not np.array_equal(value[0, 0], value[0, 2])
