"""Tests for the resilient training runner (retry, rollback, recovery)."""

import math

import numpy as np
import pytest

from repro.framework import checkpoint, ops
from repro.framework.errors import ExecutionError
from repro.framework.faults import FaultInjector, FaultPlan, FaultSpec
from repro.framework.graph import Operation, OpClass
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.resilience import (FailureEvent, NonFiniteLossError,
                                        ResilienceConfig, ResilientRunner)
from repro.framework.session import Session
from repro.profiling.tracer import Tracer


class FlakyLoss(Operation):
    """Identity on the loss that fails (non-transiently) N times."""

    type_name = "FlakyLossTestOp"
    op_class = OpClass.ELEMENTWISE

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        remaining = self.attrs.get("failures_left", 0)
        if remaining > 0:
            self.attrs["failures_left"] = remaining - 1
            raise ValueError("flaky hardware")
        return (inputs[0],)

    def gradient(self, grads):
        return [grads[0]]


class ToyModel:
    """Minimal TrainableModel: deterministic quadratic regression."""

    def __init__(self, graph, flaky_failures=0, seed=0):
        self.x = ops.placeholder((4, 3), name="toy_x")
        w = ops.variable(np.zeros((3, 1), dtype=np.float32), name="toy_w")
        self.w = w
        pred = ops.matmul(self.x, w)
        clean = ops.reduce_mean(ops.square(pred - 1.0))
        self.flaky_op = FlakyLoss([clean],
                                  attrs={"failures_left": flaky_failures},
                                  name="toy_loss")
        self.loss = self.flaky_op.output
        self.train_step = GradientDescentOptimizer(0.1).minimize(clean)
        self.session = Session(graph, seed=seed)
        rng = np.random.default_rng(7)
        self._batches = [rng.standard_normal((4, 3)).astype(np.float32)
                         for _ in range(32)]
        self._cursor = 0

    def sample_feed(self, training=True):
        batch = self._batches[self._cursor % len(self._batches)]
        self._cursor += 1
        return {self.x: batch}


def plain_losses(model, steps):
    losses = []
    for _ in range(steps):
        loss, _ = model.session.run([model.loss, model.train_step],
                                    feed_dict=model.sample_feed())
        losses.append(float(loss))
    return losses


class TestFaultFreeEquivalence:
    def test_resilient_run_matches_plain_loop(self, fresh_graph):
        baseline = plain_losses(ToyModel(fresh_graph), steps=6)
        runner = ResilientRunner(ToyModel(fresh_graph),
                                 config=ResilienceConfig())
        assert runner.run(6) == baseline
        assert runner.events == []


class TestRetry:
    def inject(self, model, spec, seed=0):
        injector = FaultInjector(FaultPlan([spec], seed=seed))
        model.session.fault_injector = injector
        return injector

    def test_transient_fault_recovers_exactly(self, fresh_graph):
        baseline = plain_losses(ToyModel(fresh_graph), steps=6)
        model = ToyModel(fresh_graph)
        self.inject(model, FaultSpec(kind="exception", op_type="MatMul",
                                     step=3))
        tracer = Tracer()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=2), tracer=tracer)
        assert runner.run(6) == baseline
        retries = tracer.failure_events("retry")
        assert len(retries) == 1
        assert retries[0].step == 3
        assert retries[0].attempt == 1
        assert tracer.fault_seconds() > 0.0

    def test_non_transient_error_not_retried_by_default(self, fresh_graph):
        model = ToyModel(fresh_graph, flaky_failures=1)
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=3))
        with pytest.raises(ExecutionError, match="flaky hardware"):
            runner.run(4)

    def test_retry_all_execution_errors_opt_in(self, fresh_graph):
        baseline = plain_losses(ToyModel(fresh_graph), steps=4)
        model = ToyModel(fresh_graph, flaky_failures=2)
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=3, retry_all_execution_errors=True))
        assert runner.run(4) == baseline
        assert [e.kind for e in runner.events] == ["retry", "retry"]

    def test_exhausted_retries_without_checkpoint_raise(self, fresh_graph):
        model = ToyModel(fresh_graph)
        self.inject(model, FaultSpec(kind="exception", op_type="MatMul",
                                     max_triggers=None))
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1))
        with pytest.raises(ExecutionError, match="injected"):
            runner.run(2)
        # One retry was attempted before giving up on step 0.
        assert [(e.step, e.kind, e.attempt) for e in runner.events] == \
            [(0, "retry", 1)]

    def test_exhausted_retries_restore_last_good(self, fresh_graph):
        model = ToyModel(fresh_graph)
        # Two clean checkpointed steps, then a persistent fault.
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1, checkpoint_every=1))
        runner.run(2)
        good_w = model.session.variable_value(model.w).copy()
        self.inject(model, FaultSpec(kind="exception", op_type="MatMul",
                                     max_triggers=None))
        losses = runner.run(1)
        assert math.isnan(losses[0])
        kinds = [e.kind for e in runner.events]
        # ckpt, ckpt (clean steps), retry, restore, then a checkpoint of
        # the restored state at the end of the surviving step.
        assert kinds == ["checkpoint", "checkpoint", "retry", "restore",
                         "checkpoint"]
        np.testing.assert_array_equal(
            model.session.variable_value(model.w), good_w)


class TestNanGuard:
    def test_transient_nan_rolls_back_and_retries(self, fresh_graph):
        baseline = plain_losses(ToyModel(fresh_graph), steps=5)
        model = ToyModel(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", name_pattern="toy_loss", step=2)]))
        tracer = Tracer()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=2), tracer=tracer)
        assert runner.run(5) == baseline
        events = tracer.failure_events("nan_rollback")
        assert len(events) == 1 and events[0].step == 2

    def test_persistent_nan_skips_the_step(self, fresh_graph):
        model = ToyModel(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", name_pattern="toy_loss",
                       max_triggers=None)]))
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1))
        before = model.session.variable_value(model.w).copy()
        losses = runner.run(1)
        assert math.isnan(losses[0])
        assert [e.kind for e in runner.events] == ["nan_rollback", "skip"]
        # rollback-and-skip: the poisoned update never landed
        np.testing.assert_array_equal(
            model.session.variable_value(model.w), before)

    def test_guard_can_be_disabled(self, fresh_graph):
        model = ToyModel(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="nan", name_pattern="toy_loss")]))
        runner = ResilientRunner(model, config=ResilienceConfig(
            nan_guard=False))
        losses = runner.run(1)
        assert math.isnan(losses[0])
        assert runner.events == []


class TestWatchdog:
    def test_slow_step_emits_event(self, fresh_graph):
        model = ToyModel(fresh_graph)
        runner = ResilientRunner(model, config=ResilienceConfig(
            watchdog_seconds=0.0))
        runner.run(2)
        watchdogs = [e for e in runner.events if e.kind == "watchdog"]
        assert len(watchdogs) == 2
        assert all(e.seconds_lost > 0 for e in watchdogs)

    def test_fast_steps_stay_silent(self, fresh_graph):
        model = ToyModel(fresh_graph)
        runner = ResilientRunner(model, config=ResilienceConfig(
            watchdog_seconds=60.0))
        runner.run(2)
        assert runner.events == []


class TestCheckpointing:
    def test_periodic_checkpoints_written(self, fresh_graph, tmp_path):
        model = ToyModel(fresh_graph)
        path = tmp_path / "toy.npz"
        runner = ResilientRunner(model, config=ResilienceConfig(
            checkpoint_path=path, checkpoint_every=2))
        runner.run(5)
        assert path.exists()
        assert [e.kind for e in runner.events] == ["checkpoint",
                                                   "checkpoint"]

    def test_resume_from_checkpoint(self, fresh_graph, tmp_path):
        from repro.framework.graph import Graph
        model = ToyModel(fresh_graph)
        path = tmp_path / "toy.npz"
        ResilientRunner(model, config=ResilienceConfig(
            checkpoint_path=path, checkpoint_every=3)).run(3)
        trained_w = model.session.variable_value(model.w).copy()
        assert not np.array_equal(trained_w, np.zeros_like(trained_w))

        other = Graph()  # identical variable names, fresh session state
        with other.as_default():
            fresh = ToyModel(other, seed=5)
        runner = ResilientRunner(fresh, config=ResilienceConfig(
            resume_from=path))
        runner.run(0)  # resume happens before the first step
        assert [e.kind for e in runner.events] == ["resume"]
        assert runner.events[0].step == -1
        np.testing.assert_array_equal(
            fresh.session.variable_value(fresh.w), trained_w)


class TestDurableCheckpointStore:
    """The runner on the replicated store transport."""

    def make_store(self, replicas=3, **kwargs):
        from repro.framework.clock import VirtualClock
        from repro.storage import MemoryStore, ReplicatedCheckpointStore
        clock = VirtualClock()
        return ReplicatedCheckpointStore(
            [MemoryStore(store_id=i, clock=clock)
             for i in range(replicas)], clock=clock, **kwargs)

    def test_periodic_store_checkpoints(self, fresh_graph):
        model = ToyModel(fresh_graph)
        store = self.make_store()
        runner = ResilientRunner(model, config=ResilienceConfig(
            checkpoint_store=store, checkpoint_every=2))
        runner.run(5)
        assert store.checkpoint_ids() == [0, 1]
        kinds = [e.kind for e in runner.events]
        assert kinds == ["checkpoint", "checkpoint"]
        assert "replicas" in runner.events[0].detail

    def test_resume_latest_from_store(self, fresh_graph):
        from repro.framework.graph import Graph
        model = ToyModel(fresh_graph)
        store = self.make_store()
        ResilientRunner(model, config=ResilienceConfig(
            checkpoint_store=store, checkpoint_every=3)).run(3)
        trained_w = model.session.variable_value(model.w).copy()

        other = Graph()
        with other.as_default():
            fresh = ToyModel(other, seed=5)
        runner = ResilientRunner(fresh, config=ResilienceConfig(
            checkpoint_store=store, resume_from="latest"))
        runner.run(0)
        assert [e.kind for e in runner.events] == ["resume"]
        assert "replicated store" in runner.events[0].detail
        np.testing.assert_array_equal(
            fresh.session.variable_value(fresh.w), trained_w)

    def test_missed_quorum_is_an_event_not_a_crash(self, fresh_graph):
        """A durable checkpoint that misses quorum must not kill the
        training run — it surfaces as a checkpoint_failed event."""
        from repro.framework.faults import (StorageFaultPlan,
                                            StorageFaultSpec)
        model = ToyModel(fresh_graph)
        store = self.make_store()
        store.install_faults(StorageFaultPlan([
            StorageFaultSpec("disk_full", store=0, max_triggers=None),
            StorageFaultSpec("disk_full", store=1, max_triggers=None),
        ], seed=0))
        runner = ResilientRunner(model, config=ResilienceConfig(
            checkpoint_store=store, checkpoint_every=2))
        losses = runner.run(2)
        assert len(losses) == 2  # training completed regardless
        assert [e.kind for e in runner.events] == ["checkpoint_failed"]
        assert "missed quorum" in runner.events[0].detail


class TestBackoff:
    def test_deterministic_given_seed(self):
        config = ResilienceConfig(backoff_base=0.1, backoff_factor=2.0,
                                  backoff_jitter=0.2, seed=11)
        first = [ResilientRunner(None, config).backoff_delay(a)
                 for a in range(4)]
        second = [ResilientRunner(None, config).backoff_delay(a)
                  for a in range(4)]
        # Fresh runners with the same seed draw identical jitter.
        r1, r2 = ResilientRunner(None, config), ResilientRunner(None, config)
        assert [r1.backoff_delay(a) for a in range(4)] == \
            [r2.backoff_delay(a) for a in range(4)]
        assert first == second

    def test_exponential_growth(self):
        config = ResilienceConfig(backoff_base=0.1, backoff_factor=2.0,
                                  backoff_jitter=0.0)
        runner = ResilientRunner(None, config)
        assert runner.backoff_delay(0) == pytest.approx(0.1)
        assert runner.backoff_delay(1) == pytest.approx(0.2)
        assert runner.backoff_delay(2) == pytest.approx(0.4)

    def test_zero_base_never_sleeps(self):
        runner = ResilientRunner(None, ResilienceConfig(backoff_base=0.0))
        assert runner.backoff_delay(0) == 0.0
        assert runner.backoff_delay(5) == 0.0

    def test_jitter_bounded(self):
        config = ResilienceConfig(backoff_base=1.0, backoff_factor=1.0,
                                  backoff_jitter=0.5, seed=3)
        runner = ResilientRunner(None, config)
        for attempt in range(16):
            assert 0.5 <= runner.backoff_delay(attempt) <= 1.5

    def test_recorded_delays_reproduce_run_to_run(self):
        """The jitter stream is seeded, so recovery traces replay."""
        config = ResilienceConfig(backoff_base=0.01, backoff_factor=2.0,
                                  backoff_jitter=0.3, seed=11)

        def delays(cfg):
            runner = ResilientRunner(None, cfg)
            for attempt in range(5):
                runner.backoff_delay(attempt)
            return runner.backoff_delays

        assert delays(config) == delays(config)
        reseeded = ResilienceConfig(backoff_base=0.01, backoff_factor=2.0,
                                    backoff_jitter=0.3, seed=12)
        assert delays(config) != delays(reseeded)

    def test_jitter_decorrelated_from_session_rng(self):
        """Same numeric seed as a model's RNG must not share a stream."""
        config = ResilienceConfig(backoff_base=1.0, backoff_factor=1.0,
                                  backoff_jitter=0.5, seed=0)
        runner = ResilientRunner(None, config)
        session_rng = np.random.default_rng(0)
        swings = [runner.backoff_delay(a) - 1.0 for a in range(8)]
        session_draws = [0.5 * float(session_rng.uniform(-1.0, 1.0))
                         for _ in range(8)]
        assert swings != session_draws


class TestEvents:
    def test_events_flow_through_tracer(self, fresh_graph):
        model = ToyModel(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul", step=1)]))
        tracer = Tracer()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1), tracer=tracer)
        runner.run(3)
        assert tracer.events == runner.events
        assert tracer.failure_events("retry") == runner.events

    def test_signature_excludes_timing(self):
        a = FailureEvent(step=1, kind="retry", op_name="m", attempt=1,
                         seconds_lost=0.5)
        b = FailureEvent(step=1, kind="retry", op_name="m", attempt=1,
                         seconds_lost=9.9)
        assert a.signature() == b.signature()

    def test_non_finite_loss_error_message(self):
        error = NonFiniteLossError(4, float("nan"))
        assert "step 4" in str(error)
        assert error.step == 4


class TestPerWorkerBackoff:
    """Regression: per-worker jitter streams must be independent —
    sharing one stream re-synchronizes simultaneous retransmits."""

    def delays(self, policy, count=8):
        return [policy.delay(a) for a in range(count)]

    def test_distinct_workers_draw_distinct_jitter(self):
        from repro.framework.resilience import BackoffPolicy
        a = BackoffPolicy.for_worker(0, base=0.1, jitter=0.3, seed=0)
        b = BackoffPolicy.for_worker(1, base=0.1, jitter=0.3, seed=0)
        assert self.delays(a) != self.delays(b)

    def test_same_worker_same_seed_reproduces(self):
        from repro.framework.resilience import BackoffPolicy
        first = BackoffPolicy.for_worker(2, base=0.1, jitter=0.3, seed=5)
        second = BackoffPolicy.for_worker(2, base=0.1, jitter=0.3, seed=5)
        assert self.delays(first) == self.delays(second)

    def test_worker_stream_differs_from_default_stream(self):
        from repro.framework.resilience import BackoffPolicy
        worker = BackoffPolicy.for_worker(0, base=0.1, jitter=0.3, seed=0)
        plain = BackoffPolicy(base=0.1, jitter=0.3, seed=0)
        assert self.delays(worker) != self.delays(plain)

    def test_server_id_gets_its_own_stream(self):
        from repro.framework.resilience import BackoffPolicy
        server = BackoffPolicy.for_worker(-1, base=0.1, jitter=0.3, seed=0)
        worker = BackoffPolicy.for_worker(0, base=0.1, jitter=0.3, seed=0)
        assert self.delays(server) != self.delays(worker)


class TestInjectableClock:
    """Satellite: the runner's wall-clock reads route through a clock."""

    def test_virtual_clock_attributes_backoff_time(self, fresh_graph):
        from repro.framework.clock import VirtualClock
        model = ToyModel(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul", step=1)]))
        clock = VirtualClock()
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=1, backoff_base=0.25, backoff_jitter=0.0),
            clock=clock)
        runner.run(3)
        retries = [e for e in runner.events if e.kind == "retry"]
        assert retries
        # The backoff sleep advanced the virtual clock, not wall time.
        assert clock.now() >= 0.25

    def test_virtual_clock_runs_are_deterministic(self, fresh_graph):
        from repro.framework.clock import VirtualClock
        import repro.framework.graph as graph_module

        def run_once():
            graph_module.reset_default_graph()
            model = ToyModel(graph_module.get_default_graph())
            model.session.fault_injector = FaultInjector(FaultPlan(
                [FaultSpec(kind="exception", op_type="MatMul", step=1)]))
            runner = ResilientRunner(model, config=ResilienceConfig(
                max_retries=1, seed=4), clock=VirtualClock())
            losses = runner.run(3)
            return losses, [e.signature() for e in runner.events]

        assert run_once() == run_once()
