"""Tests for the static memory planner vs the executor's measurement."""

import numpy as np
import pytest

from repro import workloads
from repro.framework import ops
from repro.framework.graph import get_default_graph
from repro.framework.graph_export import static_peak_bytes
from repro.framework.session import Session
from repro.profiling.tracer import Tracer


class TestStaticPlanMatchesExecutor:
    # Exact agreement is a strong invariant: it fails if any kernel
    # silently returns float64 (8-byte) arrays, which is how a float64
    # leak in ApplyAdam was originally caught.
    @pytest.mark.parametrize("name", ["memnet", "autoenc", "deepq",
                                      "seq2seq", "speech", "alexnet"])
    def test_training_peak_exact(self, name):
        model = workloads.create(name, config="tiny", seed=0)
        fetches = [model.loss, model.train_step]
        # Plan at the same optimization level the session executes at.
        planned = static_peak_bytes(model.graph, fetches=fetches,
                                    options=model.session.options)
        tracer = Tracer()
        model.session.run(fetches, feed_dict=model.sample_feed(),
                          tracer=tracer)
        measured = tracer.step_peak_bytes[0]
        assert planned == measured, (planned, measured)

    def test_inference_peak_exact(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        fetches = [model.inference_output]
        planned = static_peak_bytes(model.graph, fetches=fetches,
                                    options=model.session.options)
        tracer = Tracer()
        model.session.run(fetches,
                          feed_dict=model.sample_feed(training=False),
                          tracer=tracer)
        assert planned == tracer.step_peak_bytes[0]

    def test_structural_peak_matches_structural_session(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        fetches = [model.loss, model.train_step]
        planned = static_peak_bytes(model.graph, fetches=fetches)
        session = Session(model.graph, seed=1)  # structural by default
        session.run(fetches, feed_dict=model.sample_feed())
        assert planned == session.last_peak_live_bytes

    def test_plan_without_running(self, fresh_graph):
        """The planner needs no session, no data, no execution."""
        x = ops.placeholder((64, 64), name="x")
        y = ops.matmul(x, x)
        z = ops.reduce_sum(y)
        planned = static_peak_bytes(get_default_graph(), fetches=[z])
        # x (16KB) + y (16KB) + scalar, with x freed only after y's
        # consumer... peak = x + y + z at least.
        assert planned >= 2 * 64 * 64 * 4

    def test_freeing_reduces_peak_versus_sum(self, fresh_graph):
        """A long chain reuses memory: peak ~ two live tensors, not the
        sum of all intermediates."""
        x = ops.constant(np.ones((128, 128), dtype=np.float32))
        out = x
        for _ in range(10):
            out = ops.multiply(out, 1.01)
        planned = static_peak_bytes(get_default_graph(), fetches=[out])
        tensor_bytes = 128 * 128 * 4
        assert planned < 4 * tensor_bytes  # not 11 tensors
        assert planned >= 2 * tensor_bytes


class TestPlannerScaling:
    def test_bigger_batch_bigger_plan(self):
        small = workloads.MemN2N(config={"batch_size": 4}, seed=0)
        large = workloads.MemN2N(config={"batch_size": 32}, seed=0)
        plan_small = static_peak_bytes(
            small.graph, fetches=[small.loss, small.train_step])
        plan_large = static_peak_bytes(
            large.graph, fetches=[large.loss, large.train_step])
        assert plan_large > plan_small


class TestArenaBestFit:
    def test_alexnet_hit_rate_regression(self):
        """Regression: exact (shape, dtype) matching alone left alexnet's
        small, shape-diverse plan at a 0.49 hit rate. The best-fit
        fallback (reuse the smallest freed same-dtype buffer with enough
        capacity) must keep it well above that."""
        model = workloads.create("alexnet", config="tiny", seed=0)
        plan = model.compile_plan("training")
        assert plan.memory.hit_rate >= 0.6, plan.memory.as_dict()

    def test_best_fit_prefers_exact_shape_match(self, fresh_graph):
        """When an exactly-matching freed buffer exists it is chosen, so
        the best-fit fallback never degrades the old exact-match rate."""
        x = ops.constant(np.ones((32, 32), dtype=np.float32))
        a = ops.multiply(x, 2.0)
        b = ops.multiply(a, 3.0)   # a freed after b: not reusable yet
        c = ops.multiply(b, 4.0)   # c reuses a's freed buffer (hit 1)
        d = ops.multiply(c, 5.0)   # d reuses b's freed buffer (hit 2)
        from repro.framework.compiler import compile_plan
        plan = compile_plan(get_default_graph(), [d], "structural")
        assert plan.memory.arena_hits >= 2, plan.memory.as_dict()
        # Same shapes throughout, so every reuse is an exact match: the
        # buffer pool never grows past the two live at any point.
        assert plan.memory.num_buffers == 2

    def test_best_fit_reuses_larger_same_dtype_buffer(self, fresh_graph):
        """A freed larger buffer of the same dtype serves a smaller,
        differently shaped request instead of forcing a fresh one."""
        big = ops.constant(np.ones((64, 64), dtype=np.float32))
        dead = ops.multiply(big, 2.0)         # 16 KB compute output
        gate = ops.reduce_sum(dead)           # frees `dead`
        small = ops.add(gate, 1.0)            # scalar fits in 16 KB
        from repro.framework.compiler import compile_plan
        plan = compile_plan(get_default_graph(), [small], "structural")
        assert plan.memory.arena_hits >= 1, plan.memory.as_dict()
