"""Correctness tests for data-movement operations."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError


class TestReshape:
    def test_basic(self, session, rng):
        x = rng.standard_normal((2, 6)).astype(np.float32)
        out = session.run(ops.reshape(ops.constant(x), (3, 4)))
        np.testing.assert_array_equal(out, x.reshape(3, 4))

    def test_infer_minus_one(self):
        x = ops.constant(np.zeros((4, 6), dtype=np.float32))
        assert ops.reshape(x, (2, -1)).shape == (2, 12)
        assert ops.reshape(x, (-1,)).shape == (24,)

    def test_size_mismatch_rejected(self):
        x = ops.constant(np.zeros((4, 6), dtype=np.float32))
        with pytest.raises(ShapeError, match="size mismatch"):
            ops.reshape(x, (5, 5))

    def test_double_minus_one_rejected(self):
        x = ops.constant(np.zeros((4, 6), dtype=np.float32))
        with pytest.raises(ShapeError, match="multiple -1"):
            ops.reshape(x, (-1, -1))

    def test_non_divisible_inference_rejected(self):
        x = ops.constant(np.zeros((4, 6), dtype=np.float32))
        with pytest.raises(ShapeError, match="infer -1"):
            ops.reshape(x, (5, -1))


class TestTranspose:
    def test_default_reverses_axes(self, session, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = session.run(ops.transpose(ops.constant(x)))
        np.testing.assert_array_equal(out, x.transpose(2, 1, 0))

    def test_custom_permutation(self, session, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        out = session.run(ops.transpose(ops.constant(x), (1, 0, 2)))
        np.testing.assert_array_equal(out, x.transpose(1, 0, 2))

    def test_invalid_permutation_rejected(self):
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError, match="permutation"):
            ops.transpose(x, (0, 0))


class TestTile:
    def test_matches_numpy(self, session, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        out = session.run(ops.tile(ops.constant(x), (2, 3)))
        np.testing.assert_array_equal(out, np.tile(x, (2, 3)))

    def test_rank_mismatch_rejected(self):
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError, match="match rank"):
            ops.tile(x, (2,))


class TestConcatSplit:
    def test_concat_matches_numpy(self, session, rng):
        parts = [rng.standard_normal((2, n)).astype(np.float32)
                 for n in (1, 2, 3)]
        out = session.run(ops.concat([ops.constant(p) for p in parts],
                                     axis=1))
        np.testing.assert_array_equal(out, np.concatenate(parts, axis=1))

    def test_concat_negative_axis(self, session, rng):
        parts = [rng.standard_normal((2, 3)).astype(np.float32)
                 for _ in range(2)]
        tensor = ops.concat([ops.constant(p) for p in parts], axis=-1)
        assert tensor.shape == (2, 6)

    def test_concat_shape_mismatch_rejected(self):
        a = ops.constant(np.zeros((2, 3), dtype=np.float32))
        b = ops.constant(np.zeros((3, 3), dtype=np.float32))
        with pytest.raises(ShapeError, match="differ outside axis"):
            ops.concat([a, b], axis=1)

    def test_split_then_concat_roundtrips(self, session, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        parts = ops.split(ops.constant(x), 3, axis=1)
        assert all(p.shape == (4, 2) for p in parts)
        out = session.run(ops.concat(parts, axis=1))
        np.testing.assert_array_equal(out, x)

    def test_uneven_split_rejected(self):
        x = ops.constant(np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ShapeError, match="split"):
            ops.split(x, 3, axis=1)


class TestSlicePad:
    def test_slice_matches_numpy(self, session, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        out = session.run(ops.slice_(ops.constant(x), (1, 2), (2, 3)))
        np.testing.assert_array_equal(out, x[1:3, 2:5])

    def test_slice_out_of_bounds_rejected(self):
        x = ops.constant(np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ShapeError, match="out of bounds"):
            ops.slice_(x, (2, 0), (3, 5))

    def test_pad_matches_numpy(self, session, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        out = session.run(ops.pad(ops.constant(x), [(1, 0), (0, 2)]))
        np.testing.assert_array_equal(out, np.pad(x, ((1, 0), (0, 2))))

    def test_pad_then_slice_roundtrips(self, session, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        padded = ops.pad(ops.constant(x), [(1, 1), (2, 2)])
        out = session.run(ops.slice_(padded, (1, 2), (2, 3)))
        np.testing.assert_array_equal(out, x)


class TestGather:
    def test_row_lookup(self, session, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        idx = np.array([3, 3, 0, 7], dtype=np.int32)
        out = session.run(ops.gather(ops.constant(table), ops.constant(idx)))
        np.testing.assert_array_equal(out, table[idx])

    def test_multidimensional_indices(self, session, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        idx = np.array([[1, 2], [3, 4]], dtype=np.int32)
        tensor = ops.gather(ops.constant(table), ops.constant(idx))
        assert tensor.shape == (2, 2, 4)
        np.testing.assert_array_equal(session.run(tensor), table[idx])


class TestOneHot:
    def test_expands_indices(self, session):
        idx = np.array([0, 2, 1], dtype=np.int32)
        out = session.run(ops.one_hot(ops.constant(idx), depth=4))
        expected = np.zeros((3, 4), dtype=np.float32)
        expected[[0, 1, 2], [0, 2, 1]] = 1.0
        np.testing.assert_array_equal(out, expected)

    def test_batched_indices(self, session):
        idx = np.array([[0, 1], [2, 0]], dtype=np.int32)
        tensor = ops.one_hot(ops.constant(idx), depth=3)
        assert tensor.shape == (2, 2, 3)
        out = session.run(tensor)
        assert out.sum() == 4.0


class TestExpandSqueeze:
    def test_expand_dims(self, session, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        assert ops.expand_dims(ops.constant(x), 1).shape == (2, 1, 3)
        assert ops.expand_dims(ops.constant(x), -1).shape == (2, 3, 1)

    def test_squeeze(self, session, rng):
        x = rng.standard_normal((2, 1, 3, 1)).astype(np.float32)
        tensor = ops.squeeze(ops.constant(x), [1, 3])
        assert tensor.shape == (2, 3)
        np.testing.assert_array_equal(session.run(tensor), x[:, 0, :, 0])

    def test_squeeze_non_unit_axis_rejected(self):
        x = ops.constant(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError, match="squeeze"):
            ops.squeeze(x, [1])


class TestShapeAndFlatten:
    def test_shape_of(self, session):
        x = ops.constant(np.zeros((2, 3, 4), dtype=np.float32))
        out = session.run(ops.shape_of(x))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, [2, 3, 4])

    def test_flatten_keeps_batch(self, session, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        tensor = ops.flatten(ops.constant(x))
        assert tensor.shape == (2, 12)
        np.testing.assert_array_equal(session.run(tensor), x.reshape(2, 12))
