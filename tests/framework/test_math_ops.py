"""Correctness tests for elementwise and matrix operations."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import ShapeError


def run(session, tensor):
    return session.run(tensor)


class TestBinaryElementwise:
    CASES = [
        (ops.add, np.add),
        (ops.subtract, np.subtract),
        (ops.multiply, np.multiply),
        (ops.divide, np.divide),
        (ops.maximum, np.maximum),
        (ops.minimum, np.minimum),
    ]

    @pytest.mark.parametrize("op_fn,np_fn", CASES,
                             ids=[c[0].__name__ for c in CASES])
    def test_matches_numpy(self, session, rng, op_fn, np_fn):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4)).astype(np.float32) + 2.0
        out = run(session, op_fn(ops.constant(a), ops.constant(b)))
        np.testing.assert_allclose(out, np_fn(a, b), rtol=1e-6)

    def test_power(self, session):
        a = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = run(session, ops.power(ops.constant(a), 3.0))
        np.testing.assert_allclose(out, a ** 3, rtol=1e-6)

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((3, 4), (4,)),
        ((3, 1), (1, 4)),
        ((2, 3, 4), (3, 4)),
        ((5,), ()),
    ])
    def test_broadcasting_shapes(self, session, rng, shape_a, shape_b):
        a = rng.standard_normal(shape_a).astype(np.float32)
        b = rng.standard_normal(shape_b).astype(np.float32)
        tensor = ops.add(ops.constant(a), ops.constant(b))
        assert tensor.shape == np.broadcast_shapes(shape_a, shape_b)
        np.testing.assert_allclose(run(session, tensor), a + b, rtol=1e-6)

    def test_incompatible_broadcast_rejected(self):
        a = ops.constant(np.zeros((3, 4), dtype=np.float32))
        b = ops.constant(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ShapeError, match="broadcast"):
            ops.add(a, b)


class TestComparisons:
    def test_equal_emits_float_mask(self, session):
        a = ops.constant(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        b = ops.constant(np.array([1.0, 0.0, 3.0], dtype=np.float32))
        out = run(session, ops.equal(a, b))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, [1.0, 0.0, 1.0])

    @pytest.mark.parametrize("op_fn,np_fn", [
        (ops.greater, np.greater),
        (ops.greater_equal, np.greater_equal),
        (ops.less, np.less),
        (ops.less_equal, np.less_equal),
    ])
    def test_orderings(self, session, rng, op_fn, np_fn):
        a = rng.standard_normal(10).astype(np.float32)
        b = rng.standard_normal(10).astype(np.float32)
        out = run(session, op_fn(ops.constant(a), ops.constant(b)))
        np.testing.assert_array_equal(out, np_fn(a, b).astype(np.float32))


class TestUnary:
    CASES = [
        (ops.negative, lambda x: -x),
        (ops.exp, np.exp),
        (ops.sqrt, np.sqrt),
        (ops.square, np.square),
        (ops.abs_, np.abs),
        (ops.sign, np.sign),
        (ops.tanh, np.tanh),
    ]

    @pytest.mark.parametrize("op_fn,np_fn", CASES,
                             ids=[c[0].__name__ for c in CASES])
    def test_matches_numpy(self, session, rng, op_fn, np_fn):
        x = np.abs(rng.standard_normal((4, 5))).astype(np.float32) + 0.1
        out = run(session, op_fn(ops.constant(x)))
        np.testing.assert_allclose(out, np_fn(x), rtol=1e-5)

    def test_log(self, session):
        x = np.array([0.5, 1.0, np.e], dtype=np.float32)
        out = run(session, ops.log(ops.constant(x)))
        np.testing.assert_allclose(out, np.log(x), rtol=1e-6)

    def test_sigmoid_is_stable_for_large_inputs(self, session):
        x = np.array([-500.0, -10.0, 0.0, 10.0, 500.0], dtype=np.float32)
        out = run(session, ops.sigmoid(ops.constant(x)))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[[0, 4]], [0.0, 1.0], atol=1e-4)
        np.testing.assert_allclose(out[2], 0.5)

    def test_relu(self, session):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        out = run(session, ops.relu(ops.constant(x)))
        np.testing.assert_array_equal(out, [0.0, 0.0, 3.0])

    def test_cast(self, session):
        x = ops.constant(np.array([1.7, -2.3], dtype=np.float32))
        out = run(session, ops.cast(x, np.int32))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, [1, -2])


class TestAddN:
    def test_sums_many_inputs(self, session, rng):
        arrays = [rng.standard_normal((2, 3)).astype(np.float32)
                  for _ in range(5)]
        out = run(session, ops.add_n([ops.constant(a) for a in arrays]))
        np.testing.assert_allclose(out, sum(arrays), rtol=1e-6)

    def test_single_input_passthrough(self):
        tensor = ops.constant(np.zeros(3, dtype=np.float32))
        assert ops.add_n([tensor]) is tensor

    def test_mismatched_shapes_rejected(self):
        a = ops.constant(np.zeros(3, dtype=np.float32))
        b = ops.constant(np.zeros(4, dtype=np.float32))
        with pytest.raises(ShapeError, match="share a shape"):
            ops.add_n([a, b])

    def test_does_not_mutate_inputs(self, session):
        base = np.ones(3, dtype=np.float32)
        a = ops.constant(base)
        total = ops.add_n([a, a, a])
        np.testing.assert_allclose(run(session, total), [3.0, 3.0, 3.0])
        # The Const op's stored array must be untouched by accumulation.
        np.testing.assert_allclose(run(session, a), [1.0, 1.0, 1.0])


class TestMatMul:
    @pytest.mark.parametrize("ta,tb", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_transpose_combinations(self, session, rng, ta, tb):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        a_in = a.T.copy() if ta else a
        b_in = b.T.copy() if tb else b
        out = run(session, ops.matmul(ops.constant(a_in), ops.constant(b_in),
                                      transpose_a=ta, transpose_b=tb))
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)

    def test_inner_dimension_mismatch_rejected(self):
        a = ops.constant(np.zeros((3, 4), dtype=np.float32))
        b = ops.constant(np.zeros((5, 6), dtype=np.float32))
        with pytest.raises(ShapeError, match="inner dimensions"):
            ops.matmul(a, b)

    def test_rank_mismatch_rejected(self):
        a = ops.constant(np.zeros((3, 4, 5), dtype=np.float32))
        b = ops.constant(np.zeros((5, 6), dtype=np.float32))
        with pytest.raises(ShapeError, match="rank-2"):
            ops.matmul(a, b)


class TestBatchMatMul:
    @pytest.mark.parametrize("adj_a,adj_b", [(False, False), (True, False),
                                             (False, True), (True, True)])
    def test_adjoint_combinations(self, session, rng, adj_a, adj_b):
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4, 5)).astype(np.float32)
        a_in = np.swapaxes(a, 1, 2).copy() if adj_a else a
        b_in = np.swapaxes(b, 1, 2).copy() if adj_b else b
        out = run(session, ops.batch_matmul(
            ops.constant(a_in), ops.constant(b_in), adj_a=adj_a, adj_b=adj_b))
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)

    def test_batch_dim_mismatch_rejected(self):
        a = ops.constant(np.zeros((2, 3, 4), dtype=np.float32))
        b = ops.constant(np.zeros((3, 4, 5), dtype=np.float32))
        with pytest.raises(ShapeError, match="batch dims"):
            ops.batch_matmul(a, b)
