"""Property tests: snapshot/rollback is bit-exact under compiled plans.

The resilient runner's recovery guarantee rests on one invariant:
restoring a :class:`SessionSnapshot` after a *mid-plan* fault puts every
piece of mutable session state — variables, optimizer slot variables,
and the RNG stream — back bit-for-bit, so re-running the identical step
reproduces the fault-free trajectory exactly. These tests drive that
invariant with hypothesis across fault placements (forward MatMul,
post-RNG Square, and the optimizer's ApplyAdam update itself) under
fully optimized plans, where folded/fused steps and slot-aliased memory
make partial execution most likely to leak state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import graph as graph_module
from repro.framework import ops
from repro.framework.errors import ExecutionError
from repro.framework.faults import FaultInjector, FaultPlan, FaultSpec
from repro.framework.optimizers import AdamOptimizer
from repro.framework.session import Session

SETTINGS = dict(max_examples=15, deadline=None)
STEPS = 4

#: fault anchors, chosen to abort the plan at different depths: during
#: the forward pass, after the dropout RNG draw, and inside the
#: optimizer update (when slot-variable writes are in flight)
FAULT_TARGETS = ("MatMul", "Square", "ApplyAdam")


def build_model(seed):
    """Adam-trained regression with dropout, under full optimization.

    Dropout makes every step consume RNG state; Adam adds slot
    variables (m, v, t) beyond the weights — both must survive
    rollback bit-exactly for recovery to be exact.
    """
    graph = graph_module.reset_default_graph()
    x = ops.placeholder((4, 3), name="px")
    w = ops.variable(np.full((3, 2), 0.5, dtype=np.float32), name="w")
    hidden = ops.dropout(ops.matmul(x, w), 0.25)
    loss = ops.reduce_mean(ops.square(hidden - 1.0))
    train = AdamOptimizer(0.05).minimize(loss)
    session = Session(graph, seed=seed, optimize="full")
    return session, x, loss, train


def batches(seed):
    rng = np.random.default_rng(seed + 100)
    return [rng.standard_normal((4, 3)).astype(np.float32)
            for _ in range(STEPS)]


def state_by_name(session):
    """All session variables (weights + optimizer slots), keyed by name."""
    return {op.name: session._variables[key].copy()
            for key, op in session._variable_ops.items()}


def assert_states_equal(actual, expected):
    assert actual.keys() == expected.keys()
    for name, value in expected.items():
        np.testing.assert_array_equal(
            actual[name], value,
            err_msg=f"variable {name!r} not restored bit-exactly")


class TestRollbackBitExactness:
    @settings(**SETTINGS)
    @given(fault_step=st.integers(0, STEPS - 1),
           op_type=st.sampled_from(FAULT_TARGETS),
           seed=st.integers(0, 7))
    def test_mid_plan_fault_rollback_and_retry_is_exact(
            self, fault_step, op_type, seed):
        # Fault-free twin: the trajectory recovery must reproduce.
        session, x, loss, train = build_model(seed)
        feeds = batches(seed)
        clean_losses = []
        for feed in feeds:
            value, _ = session.run([loss, train], feed_dict={x: feed})
            clean_losses.append(float(value))
        clean_state = state_by_name(session)

        # Faulted twin: one step aborts mid-plan, rolls back, retries.
        session, x, loss, train = build_model(seed)
        losses = []
        for step, feed in enumerate(feeds):
            snapshot = session.state_snapshot()
            if step == fault_step:
                injector = FaultInjector(FaultPlan(
                    [FaultSpec(kind="exception", op_type=op_type,
                               step=0)]))
                session.fault_injector = injector
                with pytest.raises(ExecutionError):
                    session.run([loss, train], feed_dict={x: feed})
                assert injector.num_injected == 1
                session.fault_injector = None
                session.restore_snapshot(snapshot)
                # The rollback itself is bit-exact: every variable
                # (including Adam's m/v/t slots) and the RNG stream.
                assert_states_equal(state_by_name(session),
                                    {op.name: value for (_, value), op in
                                     zip(snapshot.variables.items(),
                                         snapshot.variable_ops.values())})
                assert session.rng.bit_generator.state == \
                    snapshot.rng_state
            value, _ = session.run([loss, train], feed_dict={x: feed})
            losses.append(float(value))

        assert losses == clean_losses
        assert_states_equal(state_by_name(session), clean_state)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 7), rounds=st.integers(1, 3))
    def test_restore_is_idempotent_and_plans_stay_cached(
            self, seed, rounds):
        session, x, loss, train = build_model(seed)
        feed = batches(seed)[0]
        session.run([loss, train], feed_dict={x: feed})
        compiles = session.plan_compiles
        snapshot = session.state_snapshot()
        expected = state_by_name(session)
        rng_state = session.rng.bit_generator.state
        for _ in range(rounds):
            session.run([loss, train], feed_dict={x: feed})
            session.restore_snapshot(snapshot)
        assert_states_equal(state_by_name(session), expected)
        assert session.rng.bit_generator.state == rng_state
        # Restoring mutates the variable store in place, so compiled
        # plans survive rollback — no recompilation churn on retry.
        assert session.plan_compiles == compiles
