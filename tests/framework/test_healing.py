"""Tests for self-healing execution: blame localization, tiered
de-optimization, pass quarantine, and op-level numerical guardrails."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.compiler import (PASS_FLAGS, PassQuarantine,
                                      PlanOptions, compile_plan)
from repro.framework.errors import ExecutionError, GuardrailViolation
from repro.framework.faults import FaultInjector, FaultPlan, FaultSpec
from repro.framework.graph import get_default_graph
from repro.framework.session import (DegradationEvent, GuardrailPolicy,
                                     HealingConfig, HealingPolicy, Session)
from repro.profiling.tracer import Tracer


def feed_x(shape=(2, 3)):
    return np.arange(np.prod(shape), dtype=np.float32).reshape(shape) + 1.0


class TestPassQuarantine:
    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown compiler pass"):
            PassQuarantine().quarantine("vectorize")

    def test_filter_disables_quarantined_flags(self):
        quarantine = PassQuarantine()
        quarantine.quarantine("fuse", reason="blamed")
        options = quarantine.filter(PlanOptions.full())
        assert options.fuse_lstm is False
        assert options.fold_constants is True
        # Without entries, filter is the identity.
        assert PassQuarantine().filter(PlanOptions.full()) == \
            PlanOptions.full()

    def test_lift_soft_keeps_sticky_entries(self):
        quarantine = PassQuarantine()
        quarantine.quarantine("fuse", sticky=True)
        quarantine.quarantine("fold", sticky=False)
        assert quarantine.has_soft()
        assert quarantine.lift_soft() == ["fold"]
        assert not quarantine.has_soft()
        assert quarantine.is_quarantined("fuse")

    def test_clear_and_version(self):
        quarantine = PassQuarantine()
        v0 = quarantine.version
        quarantine.quarantine("cse")
        assert quarantine.version > v0
        assert quarantine.clear("cse") == ["cse"]
        assert not quarantine.is_quarantined("cse")
        assert quarantine.clear() == []  # idempotent

    def test_as_dict_round_trips_fields(self):
        quarantine = PassQuarantine()
        quarantine.quarantine("fold", reason="r", op_name="op", sticky=False)
        blob = quarantine.as_dict()
        assert blob["entries"] == [
            {"pass": "fold", "reason": "r", "op": "op", "sticky": False}]


class TestQuarantineEquivalence:
    """Quarantining a pass == compiling with that pass disabled."""

    def build(self):
        x = ops.placeholder((2, 3), name="x")
        scale = ops.multiply(ops.constant(2.0), ops.constant(3.0))
        return ops.multiply(ops.add(x, scale), ops.add(x, scale)), x

    def test_quarantined_fold_matches_fold_free_compile(self, fresh_graph):
        y, x = self.build()
        feed = {x: feed_x()}
        quarantined = Session(fresh_graph, optimize="full")
        quarantined.quarantine.quarantine("fold", reason="test")
        explicit = Session(fresh_graph,
                           optimize=PlanOptions(fold_constants=False))
        assert quarantined.effective_options() == \
            PlanOptions(fold_constants=False)
        np.testing.assert_array_equal(quarantined.run(y, feed_dict=feed),
                                      explicit.run(y, feed_dict=feed))
        # The quarantined session compiled without the fold pass.
        assert quarantined.compile_log[-1]["options"] == \
            explicit.compile_log[-1]["options"]

    def test_quarantine_change_invalidates_cached_plan(self, fresh_graph):
        y, x = self.build()
        feed = {x: feed_x()}
        session = Session(fresh_graph, optimize="full")
        session.run(y, feed_dict=feed)
        assert session.plan_compiles == 1
        session.quarantine.quarantine("fold")
        session.run(y, feed_dict=feed)
        assert session.plan_compiles == 2  # recompiled without fold
        session.quarantine.clear("fold")
        session.run(y, feed_dict=feed)
        # Clearing returns to the original cached full-tier plan.
        assert session.plan_compiles == 2
        assert session.plan_cache_hits == 1


class TestProvenance:
    def folded_plan(self, graph):
        x = ops.placeholder((2, 3), name="x")
        product = ops.multiply(ops.constant(2.0, name="two"),
                               ops.constant(3.0, name="three"),
                               name="scale")
        y = ops.add(x, product, name="shifted")
        return compile_plan(graph, [y], "full"), x, y

    def test_folded_steps_carry_provenance(self, fresh_graph):
        plan, _, _ = self.folded_plan(fresh_graph)
        folded = [s for s in plan.steps if s.origin_pass == "fold"]
        assert folded, "expected the const product to fold"
        assert any("scale" in s.provenance for s in folded)
        assert all(s.op.name.endswith("/folded") for s in folded)

    def test_fused_step_carries_provenance(self, fresh_graph):
        from repro.framework.rnn import LSTMCell
        cell = LSTMCell(num_units=3, input_size=4,
                        rng=np.random.default_rng(0), name="cell")
        x = ops.placeholder((2, 4), name="x")
        _, (new_c, new_h) = cell(x, cell.zero_state(batch_size=2))
        plan = compile_plan(fresh_graph, [new_c, new_h], "full")
        assert plan.fused_cells == 1
        fused = [s for s in plan.steps if s.origin_pass == "fuse"]
        assert len(fused) == 1
        # The fused step's provenance names the ops it replaced,
        # anchor (the cell's output op) first.
        assert len(fused[0].provenance) > 1
        assert all("cell" in name or "zero_state" in name or name
                   for name in fused[0].provenance)

    def test_fault_in_folded_step_blames_source_ops(self, fresh_graph):
        plan, x, y = self.folded_plan(fresh_graph)
        session = Session(fresh_graph, optimize="full")
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", name_pattern="/folded")]))
        with pytest.raises(ExecutionError) as info:
            session.run(y, feed_dict={x: feed_x()})
        error = info.value
        assert error.origin_pass == "fold"
        assert error.blamed_op == "scale"
        assert "synthesized by fold pass" in str(error)
        assert "scale" in str(error)

    def test_error_message_lists_replaced_ops(self):
        error = ExecutionError("scale/folded", "boom",
                               provenance=("scale", "two", "three"),
                               origin_pass="fold")
        assert error.blamed_op == "scale"
        assert "replacing: scale, two, three" in str(error)

    def test_attach_provenance_is_idempotent(self):
        error = ExecutionError("op", "boom", provenance=("a",),
                               origin_pass="fold")
        error.attach_provenance(("b",), "fuse")  # already blamed: no-op
        assert error.provenance == ("a",)
        plain = ExecutionError("op", "boom")
        plain.attach_provenance((), None)  # nothing to attach: no-op
        assert plain.blamed_op == "op"


class ToyTrainer:
    """Quadratic regression over a full-tier session (has fold fodder)."""

    def __init__(self, graph, seed=0):
        self.x = ops.placeholder((4, 3), name="toy_x")
        w = ops.variable(np.zeros((3, 1), dtype=np.float32), name="toy_w")
        self.w = w
        pred = ops.matmul(self.x, w)
        from repro.framework.optimizers import GradientDescentOptimizer
        self.loss = ops.reduce_mean(ops.square(pred - 1.0))
        self.train_step = GradientDescentOptimizer(0.1).minimize(self.loss)
        self.session = Session(graph, seed=seed, optimize="full")
        rng = np.random.default_rng(7)
        self._batches = [rng.standard_normal((4, 3)).astype(np.float32)
                         for _ in range(32)]
        self._cursor = 0

    def sample_feed(self, training=True):
        batch = self._batches[self._cursor % len(self._batches)]
        self._cursor += 1
        return {self.x: batch}

    def step(self):
        loss, _ = self.session.run([self.loss, self.train_step],
                                   feed_dict=self.sample_feed())
        return float(loss)


class TestHealingPolicy:
    def test_repeated_failures_demote_then_enter_safe_mode(self, fresh_graph):
        session = Session(fresh_graph, optimize="full")
        policy = HealingPolicy(session, HealingConfig(demote_after=2))
        error = ExecutionError("MatMul", "boom")
        assert policy.on_failure(error, step=0) is False  # first strike
        assert policy.on_failure(error, step=0) is True   # demoted
        assert session.execution_tier == "structural"
        assert session.quarantine.has_soft()
        assert policy.on_failure(error, step=0) is True   # safe mode
        assert session.safe_mode and session.execution_tier == "safe"
        assert policy.on_failure(error, step=0) is False  # floor reached
        kinds = [e.kind for e in policy.events]
        assert kinds.count("tier_drop") == 2

    def test_provenance_blame_sticky_quarantines_the_pass(self, fresh_graph):
        session = Session(fresh_graph, optimize="full")
        policy = HealingPolicy(session, HealingConfig(quarantine_after=2))
        error = ExecutionError("cell/fused", "boom",
                               provenance=("cell_out", "cell_gate"),
                               origin_pass="fuse")
        policy.on_failure(error, step=0)
        assert not session.quarantine.is_quarantined("fuse")
        policy.on_failure(error, step=1)
        assert session.quarantine.is_quarantined("fuse")
        entry = session.quarantine.entries[0]
        assert entry.sticky and entry.op_name == "cell_out"
        # Sticky quarantine survives re-escalation.
        for step in range(3):
            policy.on_success(step)
        assert session.quarantine.is_quarantined("fuse")
        # ... until explicitly cleared.
        assert policy.clear_quarantine("fuse") == ["fuse"]
        assert not session.quarantine.is_quarantined("fuse")
        assert [e.kind for e in policy.events].count("quarantine_clear") == 1

    def test_deoptimize_hint_demotes_immediately(self, fresh_graph):
        session = Session(fresh_graph, optimize="full")
        policy = HealingPolicy(session, HealingConfig(demote_after=99))
        violation = GuardrailViolation("Exp", "overflow",
                                       deoptimize_hint=True)
        assert policy.on_failure(violation, step=0) is True
        assert session.execution_tier == "structural"

    def test_reescalation_climbs_one_tier_per_streak(self, fresh_graph):
        session = Session(fresh_graph, optimize="full")
        policy = HealingPolicy(session, HealingConfig(
            demote_after=1, reescalate_after=2))
        error = ExecutionError("MatMul", "boom")
        policy.on_failure(error, step=0)   # -> structural
        policy.on_failure(error, step=0)   # -> safe
        assert session.execution_tier == "safe"
        policy.on_success(1)
        assert policy.on_success(2) is True
        assert session.execution_tier == "structural"  # one tier at a time
        policy.on_success(3)
        assert policy.on_success(4) is True
        assert session.execution_tier == "full"
        tiers = [e.tier for e in policy.events if e.kind == "reescalate"]
        assert tiers == ["structural", "full"]

    def test_healing_run_trains_through_persistent_plan_fault(
            self, fresh_graph):
        """End-to-end: a fault the retry budget alone cannot absorb."""
        from repro.framework.resilience import (ResilienceConfig,
                                                ResilientRunner)
        baseline_model = ToyTrainer(fresh_graph)
        baseline = [baseline_model.step() for _ in range(4)]
        model = ToyTrainer(fresh_graph)
        model.session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", op_type="MatMul",
                       max_triggers=2)]))
        runner = ResilientRunner(model, config=ResilienceConfig(
            max_retries=3, healing=True))
        losses = runner.run(4)
        assert losses == baseline
        assert model.session.execution_tier == "full"  # re-escalated
        assert runner.degradation_signatures() == tuple(
            e.signature() for e in runner.degradations)


class TestGuardrails:
    def build_nan_graph(self):
        x = ops.placeholder((2, 2), name="x")
        y = ops.log(x, name="logged")          # NaN for negative input
        return ops.add(y, 1.0, name="out"), x

    def test_raise_policy_names_first_offender(self, fresh_graph):
        out, x = self.build_nan_graph()
        session = Session(fresh_graph, guardrails="raise")
        bad = np.array([[1.0, -1.0], [2.0, 3.0]], dtype=np.float32)
        with pytest.raises(ExecutionError, match=r"logged.*\(guardrail\)"):
            session.run(out, feed_dict={x: bad})

    def test_zero_policy_patches_and_records(self, fresh_graph):
        out, x = self.build_nan_graph()
        session = Session(fresh_graph, guardrails="zero")
        bad = np.array([[1.0, -1.0], [2.0, 3.0]], dtype=np.float32)
        tracer = Tracer()
        result = session.run(out, feed_dict={x: bad}, tracer=tracer)
        assert np.isfinite(result).all()
        assert result[0, 1] == 1.0  # the NaN was zeroed before the add
        events = session.degradation_log
        assert [e.kind for e in events] == ["guardrail"]
        assert events[0].op_name == "logged"
        assert tracer.degradation_events("guardrail") == events

    def test_deoptimize_policy_raises_violation_with_hint(self, fresh_graph):
        out, x = self.build_nan_graph()
        session = Session(fresh_graph)
        bad = np.array([[-1.0, 1.0], [2.0, 3.0]], dtype=np.float32)
        with pytest.raises(GuardrailViolation) as info:
            session.run(out, feed_dict={x: bad}, guardrails="deoptimize")
        assert info.value.deoptimize_hint is True

    def test_overflow_limit_flags_large_finite_values(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        out = ops.multiply(x, 1000.0, name="scaled")
        session = Session(fresh_graph, guardrails=GuardrailPolicy(
            on_violation="raise", overflow_limit=1e4))
        with pytest.raises(ExecutionError, match="overflow"):
            session.run(out, feed_dict={x: np.array([1.0, 100.0],
                                                    dtype=np.float32)})

    def test_per_call_guardrails_override_session_default(self, fresh_graph):
        out, x = self.build_nan_graph()
        session = Session(fresh_graph, guardrails="raise")
        bad = np.array([[-1.0, 1.0], [2.0, 3.0]], dtype=np.float32)
        result = session.run(out, feed_dict={x: bad}, guardrails="zero")
        assert np.isfinite(result).all()

    def test_legacy_check_numerics_message_preserved(self, fresh_graph):
        out, x = self.build_nan_graph()
        session = Session(fresh_graph)
        bad = np.array([[-1.0, 1.0], [2.0, 3.0]], dtype=np.float32)
        with pytest.raises(ExecutionError, match=r"\(check_numerics\)"):
            session.run(out, feed_dict={x: bad}, check_numerics=True)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="guardrail policy"):
            GuardrailPolicy(on_violation="explode")
        with pytest.raises(TypeError):
            GuardrailPolicy.coerce(42)


class TestSafeMode:
    def test_failing_op_is_zeroed_and_the_step_survives(self, fresh_graph):
        x = ops.placeholder((2, 2), name="x")
        y = ops.add(ops.multiply(x, 2.0, name="doubled"), 1.0, name="out")
        session = Session(fresh_graph)
        session.safe_mode = True
        session.fault_injector = FaultInjector(FaultPlan(
            [FaultSpec(kind="exception", name_pattern="doubled",
                       max_triggers=None)]))
        result = session.run(y, feed_dict={x: feed_x((2, 2))})
        # The multiply was zeroed, so out == 0 + 1 everywhere.
        np.testing.assert_array_equal(result, np.ones((2, 2),
                                                      dtype=np.float32))
        kinds = [e.kind for e in session.degradation_log]
        assert kinds == ["op_zeroed"]
        assert session.degradation_log[0].op_name == "doubled"

    def test_safe_mode_forces_structural_plans_and_screening(
            self, fresh_graph):
        x = ops.placeholder((2, 2), name="x")
        out = ops.add(ops.log(x, name="logged"), 1.0, name="out")
        session = Session(fresh_graph, optimize="full")
        session.safe_mode = True
        assert session.execution_tier == "safe"
        assert session.effective_options() == PlanOptions.structural()
        bad = np.array([[-1.0, 1.0], [2.0, 3.0]], dtype=np.float32)
        result = session.run(out, feed_dict={x: bad})  # no raise
        assert np.isfinite(result).all()
        assert any(e.kind == "guardrail" for e in session.degradation_log)

    def test_pass_flags_cover_every_optimizing_pass(self):
        assert set(PASS_FLAGS.values()) == {
            "eliminate_identities", "fold_constants",
            "merge_subexpressions", "fuse_lstm"}
