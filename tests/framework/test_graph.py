"""Tests for the dataflow graph core: tensors, operations, naming, pruning."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import GraphError, ShapeError
from repro.framework.graph import (Graph, OpClass, Tensor, get_default_graph,
                                   name_scope, reset_default_graph)
from repro.framework.session import Session


class TestTensor:
    def test_name_combines_op_and_index(self):
        tensor = ops.constant(np.zeros((2, 3)), name="zeros")
        assert tensor.name == "zeros:0"

    def test_shape_and_size(self):
        tensor = ops.constant(np.zeros((2, 3, 4)))
        assert tensor.shape == (2, 3, 4)
        assert tensor.ndim == 3
        assert tensor.size == 24

    def test_scalar_shape(self):
        tensor = ops.constant(1.5)
        assert tensor.shape == ()
        assert tensor.size == 1

    def test_float64_constants_downcast_to_float32(self):
        tensor = ops.constant(np.zeros(3, dtype=np.float64))
        assert tensor.dtype == np.float32

    def test_int64_constants_downcast_to_int32(self):
        tensor = ops.constant(np.zeros(3, dtype=np.int64))
        assert tensor.dtype == np.int32

    def test_repr_mentions_op_type(self):
        tensor = ops.constant(1.0, name="c")
        assert "Const" in repr(tensor)

    def test_operator_sugar_builds_ops(self, session):
        a = ops.constant(np.array([1.0, 2.0], dtype=np.float32))
        b = ops.constant(np.array([3.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose(session.run(a + b), [4.0, 6.0])
        np.testing.assert_allclose(session.run(a - b), [-2.0, -2.0])
        np.testing.assert_allclose(session.run(a * b), [3.0, 8.0])
        np.testing.assert_allclose(session.run(a / b), [1 / 3, 0.5],
                                   rtol=1e-6)
        np.testing.assert_allclose(session.run(-a), [-1.0, -2.0])
        np.testing.assert_allclose(session.run(a ** 2.0), [1.0, 4.0])

    def test_scalar_broadcast_via_operators(self, session):
        a = ops.constant(np.array([1.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(session.run(2.0 * a), [2.0, 4.0])
        np.testing.assert_allclose(session.run(1.0 - a), [0.0, -1.0])

    def test_matmul_operator(self, session):
        a = ops.constant(np.eye(2, dtype=np.float32))
        b = ops.constant(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_allclose(session.run(a @ b),
                                   [[1.0, 2.0], [3.0, 4.0]])


class TestNaming:
    def test_duplicate_names_get_suffixes(self):
        first = ops.constant(1.0, name="c")
        second = ops.constant(2.0, name="c")
        assert first.op.name == "c"
        assert second.op.name == "c_1"

    def test_name_scope_prefixes(self):
        with name_scope("outer"):
            with name_scope("inner"):
                tensor = ops.constant(1.0, name="c")
        assert tensor.op.name == "outer/inner/c"

    def test_scope_exits_cleanly_on_error(self):
        graph = get_default_graph()
        with pytest.raises(ValueError):
            with graph.name_scope("broken"):
                raise ValueError("boom")
        tensor = ops.constant(1.0, name="after")
        assert tensor.op.name == "after"

    def test_get_operation_by_name(self):
        tensor = ops.constant(1.0, name="lookup")
        graph = get_default_graph()
        assert graph.get_operation("lookup") is tensor.op

    def test_get_operation_unknown_raises(self):
        with pytest.raises(GraphError):
            get_default_graph().get_operation("nope")


class TestGraphStructure:
    def test_construction_order_is_topological(self):
        a = ops.constant(1.0)
        b = ops.constant(2.0)
        c = a + b
        d = c * a
        graph = get_default_graph()
        order = {op.name: i for i, op in enumerate(graph.operations)}
        for op in graph.operations:
            for tensor in op.inputs:
                assert order[tensor.op.name] < order[op.name]

    def test_subgraph_prunes_unreachable(self):
        a = ops.constant(1.0)
        b = ops.constant(2.0)
        used = a + a
        unused = b * b
        graph = get_default_graph()
        sub = graph.subgraph([used])
        names = {op.name for op in sub}
        assert used.op.name in names
        assert a.op.name in names
        assert unused.op.name not in names
        assert b.op.name not in names

    def test_consumers_tracks_usage(self):
        a = ops.constant(1.0)
        first = a + 1.0
        second = a * 2.0
        graph = get_default_graph()
        consumer_types = {op.type_name for op in graph.consumers(a)}
        assert consumer_types == {"Add", "Mul"}

    def test_cross_graph_input_rejected(self):
        a = ops.constant(1.0)
        other = Graph()
        with other.as_default():
            with pytest.raises(GraphError, match="different graph"):
                ops.identity(a)

    def test_raw_value_input_rejected(self):
        with pytest.raises(GraphError, match="wrap raw values"):
            from repro.framework.ops.math_ops import Add
            Add([np.zeros(3), np.zeros(3)])

    def test_len_counts_operations(self):
        graph = get_default_graph()
        before = len(graph)
        ops.constant(1.0)
        assert len(graph) == before + 1


class TestDefaultGraphStack:
    def test_as_default_scopes_construction(self):
        outer = get_default_graph()
        inner = Graph()
        with inner.as_default():
            tensor = ops.constant(1.0)
            assert tensor.graph is inner
        after = ops.constant(2.0)
        assert after.graph is outer

    def test_reset_creates_fresh_graph(self):
        ops.constant(1.0)
        fresh = reset_default_graph()
        assert len(fresh) == 0
        assert get_default_graph() is fresh


class TestShapes:
    def test_negative_dimension_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(ops.constant(1.0).op, 0, (-1, 2), np.float32)

    def test_single_output_property(self):
        tensor = ops.constant(1.0)
        assert tensor.op.output is tensor

    def test_multi_output_property_raises(self):
        logits = ops.constant(np.zeros((3, 2, 4), dtype=np.float32))
        labels = ops.constant(np.zeros((2, 1), dtype=np.int32))
        lengths = ops.constant(np.ones(2, dtype=np.int32))
        frames = ops.constant(np.full(2, 3, dtype=np.int32))
        loss = ops.ctc_loss(logits, labels, lengths, frames)
        with pytest.raises(GraphError, match="outputs"):
            _ = loss.op.output


class TestOpClassTaxonomy:
    def test_every_registered_type_has_a_class(self):
        from repro.framework.graph import OP_TYPE_REGISTRY
        for name, op_cls in OP_TYPE_REGISTRY.items():
            assert isinstance(op_cls.op_class, OpClass), name

    def test_registry_covers_core_vocabulary(self):
        from repro.framework.graph import OP_TYPE_REGISTRY
        expected = {"MatMul", "Conv2D", "Conv2DBackpropFilter",
                    "Conv2DBackpropInput", "Mul", "Add", "Tile",
                    "Transpose", "Softmax", "CTCLoss", "ApplyRMSProp",
                    "StandardRandomNormal", "Gather", "AddN"}
        assert expected <= set(OP_TYPE_REGISTRY)
