"""Tests for the ExecutionPlan compiler pipeline."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.compiler import (ExecutionPlan, PlanOptions,
                                      compile_plan)
from repro.framework.errors import GraphError
from repro.framework.graph import Graph, get_default_graph
from repro.framework.memory import K_COMPUTE, K_CONST, K_PLACEHOLDER
from repro.framework.session import Session


class TestPlanOptions:
    def test_coerce_levels(self):
        assert PlanOptions.coerce(None) == PlanOptions.structural()
        assert PlanOptions.coerce("none") == PlanOptions.structural()
        assert PlanOptions.coerce("structural") == PlanOptions.structural()
        assert PlanOptions.coerce("full") == PlanOptions.full()
        custom = PlanOptions(fuse_lstm=False)
        assert PlanOptions.coerce(custom) is custom

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValueError):
            PlanOptions.coerce("turbo")
        with pytest.raises(TypeError):
            PlanOptions.coerce(3)

    def test_describe(self):
        assert PlanOptions.full().describe() == "full"
        assert PlanOptions.structural().describe() == "structural"
        assert "fold" in PlanOptions(
            eliminate_identities=False, merge_subexpressions=False,
            fuse_lstm=False).describe()


class TestStructuralPlans:
    """The default level must preserve the classic executor's behaviour."""

    def test_every_subgraph_op_becomes_a_step(self, fresh_graph):
        a = ops.constant(np.ones((2, 2), np.float32))
        b = ops.constant(np.ones((2, 2), np.float32))
        c = ops.add(a, b)
        d = ops.reduce_sum(c)
        unrelated = ops.constant(5.0)  # outside the fetch subgraph
        plan = compile_plan(get_default_graph(), [d])
        assert plan.num_steps == 4
        assert unrelated.op not in [step.op for step in plan.steps]

    def test_steps_reference_original_operations(self, fresh_graph):
        a = ops.constant(np.ones((2, 2), np.float32))
        b = ops.add(a, a)
        plan = compile_plan(get_default_graph(), [b])
        original = {id(op) for op in get_default_graph().operations}
        assert all(id(step.op) in original for step in plan.steps)

    def test_kinds(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        c = ops.constant(np.ones(2, np.float32))
        y = ops.add(x, c)
        plan = compile_plan(get_default_graph(), [y])
        kinds = {step.op.name: step.kind for step in plan.steps}
        assert kinds["x"] == K_PLACEHOLDER
        assert kinds[c.op.name] == K_CONST
        assert kinds[y.op.name] == K_COMPUTE

    def test_foreign_fetch_raises(self, fresh_graph):
        other = Graph()
        with other.as_default():
            foreign = ops.constant(1.0)
        with pytest.raises(GraphError):
            compile_plan(get_default_graph(), [foreign])


class TestOptimizingPasses:
    def test_identity_elimination_aliases_slots(self, fresh_graph):
        x = ops.placeholder((2,), name="x")
        y = ops.identity(ops.identity(x))
        plan = compile_plan(get_default_graph(), [y], "full")
        assert plan.num_steps == 1  # just the placeholder
        assert plan.fetch_slots == plan.steps[0].output_slots[:1]

    def test_constant_folding_chains(self, fresh_graph):
        a = ops.constant(2.0)
        b = ops.constant(3.0)
        c = ops.multiply(ops.add(a, b), 2.0)
        plan = compile_plan(get_default_graph(), [c], "full")
        # Everything folds into one synthesized constant step.
        assert plan.num_steps == 1
        assert plan.steps[0].kind == K_CONST
        assert plan.steps[0].const_value == np.float32(10.0)
        assert plan.stats.constants_folded == 2

    def test_folding_skips_nonfinite_results(self, fresh_graph):
        bad = ops.log(ops.constant(-1.0))  # NaN at fold time
        plan = compile_plan(get_default_graph(), [bad], "full")
        # The op must stay live so check_numerics can name it at run time.
        assert any(step.op is bad.op for step in plan.steps)

    def test_cse_merges_duplicate_constants(self, fresh_graph):
        a = ops.constant(np.ones((4,), np.float32))
        b = ops.constant(np.ones((4,), np.float32))
        c = ops.add(a, b)
        plan = compile_plan(get_default_graph(), [c], "full")
        assert plan.stats.subexpressions_merged >= 1

    def test_cse_preserves_random_ops(self, fresh_graph):
        r1 = ops.random_normal((3,), name="r1")
        r2 = ops.random_normal((3,), name="r2")
        total = ops.add(r1, r2)
        session = Session(get_default_graph(), seed=0, optimize="full")
        value = session.run(total)
        baseline = Session(get_default_graph(), seed=0)
        np.testing.assert_array_equal(value, baseline.run(total))

    def test_dce_keeps_placeholder_requirements(self, fresh_graph):
        from repro.framework.errors import FeedError
        x = ops.placeholder((2,), name="x")
        y = ops.constant(np.ones(2, np.float32))
        z = ops.add(ops.multiply(x, 0.0), y)
        session = Session(get_default_graph(), seed=0, optimize="full")
        # x is still semantically required even if an optimizer could
        # in principle prove the result independent of it.
        with pytest.raises(FeedError, match="required but was not fed"):
            session.run(z)

    def test_pass_records_cover_pipeline(self, fresh_graph):
        y = ops.add(ops.constant(1.0), ops.constant(2.0))
        plan = compile_plan(get_default_graph(), [y], "full")
        names = [record.name for record in plan.pass_records]
        assert names == ["prune", "identity", "fold", "cse", "fuse",
                         "dce", "schedule"]
        structural = compile_plan(get_default_graph(), [y])
        assert [r.name for r in structural.pass_records] == ["prune",
                                                             "schedule"]

    def test_report_renders(self, fresh_graph):
        y = ops.add(ops.constant(1.0), ops.constant(2.0))
        plan = compile_plan(get_default_graph(), [y], "full")
        text = plan.report()
        assert "fold" in text and "planned peak" in text

    def test_summary_is_json_serializable(self, fresh_graph):
        import json
        y = ops.add(ops.constant(1.0), ops.constant(2.0))
        plan = compile_plan(get_default_graph(), [y], "full")
        json.dumps(plan.summary())


class TestScheduleInvariants:
    def _plan(self, options=None):
        x = ops.placeholder((8, 8), name="x")
        w = ops.constant(np.ones((8, 8), np.float32))
        h = ops.relu(ops.matmul(x, w))
        out = ops.reduce_sum(ops.multiply(h, h))
        return compile_plan(get_default_graph(), [out], options), out

    def test_slots_are_defined_before_use(self, fresh_graph):
        plan, _ = self._plan("full")
        produced = set()
        for step in plan.steps:
            assert all(slot in produced for slot in step.input_slots)
            produced.update(step.output_slots)
        assert all(slot in produced for slot in plan.fetch_slots)

    def test_fetch_slots_never_freed(self, fresh_graph):
        plan, _ = self._plan("full")
        freed = {slot for step in plan.steps for slot in step.free_slots}
        assert not freed & set(plan.fetch_slots)

    def test_each_slot_freed_at_most_once(self, fresh_graph):
        plan, _ = self._plan("full")
        freed = [slot for step in plan.steps for slot in step.free_slots]
        assert len(freed) == len(set(freed))

    def test_memory_plan_arena_reuses_buffers(self, fresh_graph):
        x = ops.constant(np.ones((64, 64), np.float32))
        out = x
        for _ in range(10):
            out = ops.multiply(out, 1.01)
        plan = compile_plan(get_default_graph(), [out])
        # Ten same-shaped intermediates with chained lifetimes need far
        # fewer than ten arena buffers.
        assert plan.memory.arena_hits > 0
        assert plan.memory.num_buffers < 5
        assert plan.memory.hit_rate > 0.5
        assert plan.memory.reuse_saving_bytes > 0

    def test_planned_peak_matches_session_measurement(self, fresh_graph):
        plan, out = self._plan()
        session = Session(get_default_graph(), seed=0)
        session.run(out, feed_dict={
            get_default_graph().get_operation("x").outputs[0]:
                np.ones((8, 8), np.float32)})
        assert plan.planned_peak_bytes == session.last_peak_live_bytes


class TestLSTMFusionPass:
    def _build_cell(self):
        from repro.framework.rnn import LSTMCell
        rng = np.random.default_rng(0)
        cell = LSTMCell(num_units=3, input_size=4, rng=rng, name="cell")
        x = ops.placeholder((2, 4), name="x")
        c, h = cell.zero_state(batch_size=2)
        return cell, x, c, h

    def test_fusion_fires_and_is_bit_exact(self, fresh_graph):
        cell, x, c, h = self._build_cell()
        _, (new_c, new_h) = cell(x, (c, h))
        graph = get_default_graph()
        plan = compile_plan(graph, [new_c, new_h], "full")
        assert plan.fused_cells == 1
        feed_value = np.random.default_rng(1).normal(
            size=(2, 4)).astype(np.float32)
        fused = Session(graph, optimize="full").run(
            [new_c, new_h], feed_dict={x: feed_value})
        composed = Session(graph).run([new_c, new_h],
                                      feed_dict={x: feed_value})
        np.testing.assert_array_equal(fused[0], composed[0])
        np.testing.assert_array_equal(fused[1], composed[1])

    def test_fusion_skipped_when_gate_is_fetched(self, fresh_graph):
        cell, x, c, h = self._build_cell()
        _, (new_c, new_h) = cell(x, (c, h))
        graph = get_default_graph()
        # Fetching an interior tensor (the forget-gate sigmoid) must
        # veto fusion for that cell.
        interior = next(t for op in graph.operations
                        for t in op.outputs
                        if op.type_name == "Sigmoid")
        plan = compile_plan(graph, [new_c, new_h, interior], "full")
        assert plan.fused_cells == 0
