"""Tests for optimizers and their Apply* update operations."""

import numpy as np
import pytest

from repro.framework import ops
from repro.framework.errors import DifferentiationError
from repro.framework.graph import get_default_graph
from repro.framework.optimizers import (AdamOptimizer,
                                        GradientDescentOptimizer,
                                        MomentumOptimizer, RMSPropOptimizer)
from repro.framework.session import Session


def quadratic_problem():
    """min ||w - target||^2 over a 4-vector variable."""
    target = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
    w = ops.variable(np.zeros(4, dtype=np.float32), name="w")
    loss = ops.reduce_sum(ops.square(ops.subtract(w, ops.constant(target))))
    return w, loss, target


OPTIMIZERS = [
    ("sgd", lambda: GradientDescentOptimizer(0.1), 100),
    ("momentum", lambda: MomentumOptimizer(0.05, momentum=0.9), 100),
    ("rmsprop", lambda: RMSPropOptimizer(0.05), 300),
    ("adam", lambda: AdamOptimizer(0.1), 300),
]


class TestConvergence:
    @pytest.mark.parametrize("name,make,steps", OPTIMIZERS,
                             ids=[o[0] for o in OPTIMIZERS])
    def test_reaches_quadratic_minimum(self, fresh_graph, name, make, steps):
        w, loss, target = quadratic_problem()
        train = make().minimize(loss)
        session = Session(fresh_graph, seed=0)
        initial = session.run(loss)
        for _ in range(steps):
            session.run(train)
        final = session.run(loss)
        assert final < 1e-2 * initial
        np.testing.assert_allclose(session.variable_value(w), target,
                                   atol=0.15)

    @pytest.mark.parametrize("name,make,steps", OPTIMIZERS,
                             ids=[o[0] for o in OPTIMIZERS])
    def test_loss_monotone_trend(self, fresh_graph, name, make, steps):
        _, loss, _ = quadratic_problem()
        train = make().minimize(loss)
        session = Session(fresh_graph, seed=0)
        losses = []
        for _ in range(30):
            value, _ = session.run([loss, train])
            losses.append(float(value))
        assert losses[-1] < losses[0]


class TestUpdateMath:
    def test_sgd_step_is_exact(self, fresh_graph):
        w = ops.variable(np.array([2.0], dtype=np.float32))
        loss = ops.reduce_sum(ops.square(w))  # dL/dw = 2w
        train = GradientDescentOptimizer(0.25).minimize(loss)
        session = Session(fresh_graph, seed=0)
        session.run(train)
        # w <- 2.0 - 0.25 * 4.0 = 1.0
        np.testing.assert_allclose(session.variable_value(w), [1.0],
                                   rtol=1e-6)

    def test_momentum_accumulates(self, fresh_graph):
        w = ops.variable(np.array([1.0], dtype=np.float32))
        loss = ops.reduce_sum(w)  # constant gradient of 1
        train = MomentumOptimizer(0.1, momentum=0.5).minimize(loss)
        session = Session(fresh_graph, seed=0)
        session.run(train)  # accum=1, w = 1 - 0.1 = 0.9
        session.run(train)  # accum=1.5, w = 0.9 - 0.15 = 0.75
        np.testing.assert_allclose(session.variable_value(w), [0.75],
                                   rtol=1e-5)

    def test_adam_step_counter_advances(self, fresh_graph):
        w = ops.variable(np.array([1.0], dtype=np.float32))
        loss = ops.reduce_sum(ops.square(w))
        optimizer = AdamOptimizer(0.1)
        train = optimizer.minimize(loss)
        session = Session(fresh_graph, seed=0)
        first = session.run(loss)
        session.run(train)
        second = session.run(loss)
        assert second < first

    def test_rmsprop_normalizes_gradient_scale(self, fresh_graph):
        # Two coordinates with wildly different gradient scales should
        # move at comparable speeds under RMSProp.
        w = ops.variable(np.array([1.0, 1.0], dtype=np.float32))
        scales = ops.constant(np.array([100.0, 0.01], dtype=np.float32))
        loss = ops.reduce_sum(ops.multiply(scales, ops.square(w)))
        train = RMSPropOptimizer(0.01).minimize(loss)
        session = Session(fresh_graph, seed=0)
        for _ in range(10):
            session.run(train)
        value = session.variable_value(w)
        moved = 1.0 - value
        assert moved[0] > 0.0 and moved[1] > 0.0
        assert moved[0] / moved[1] < 10.0


class TestStructure:
    def test_minimize_defaults_to_trainable_variables(self, fresh_graph):
        w = ops.variable(np.ones(2, dtype=np.float32), name="trainme")
        frozen = ops.variable(np.ones(2, dtype=np.float32), name="frozen",
                              trainable=False)
        loss = ops.reduce_sum(ops.multiply(w, frozen))
        train = GradientDescentOptimizer(0.5).minimize(loss)
        session = Session(fresh_graph, seed=0)
        session.run(train)
        np.testing.assert_allclose(session.variable_value(frozen),
                                   [1.0, 1.0])
        assert not np.allclose(session.variable_value(w), [1.0, 1.0])

    def test_var_list_restricts_updates(self, fresh_graph):
        a = ops.variable(np.ones(1, dtype=np.float32), name="a")
        b = ops.variable(np.ones(1, dtype=np.float32), name="b")
        loss = ops.reduce_sum(ops.multiply(a, b))
        train = GradientDescentOptimizer(0.5).minimize(loss, var_list=[a])
        session = Session(fresh_graph, seed=0)
        session.run(train)
        np.testing.assert_allclose(session.variable_value(b), [1.0])

    def test_no_dependence_raises(self, fresh_graph):
        ops.variable(np.ones(1, dtype=np.float32))
        loss = ops.constant(1.0)
        with pytest.raises(DifferentiationError):
            GradientDescentOptimizer(0.1).minimize(loss)

    def test_no_trainables_raises(self, fresh_graph):
        loss = ops.constant(1.0)
        with pytest.raises(DifferentiationError, match="no trainable"):
            GradientDescentOptimizer(0.1).minimize(loss)

    def test_apply_ops_are_optimization_class(self, fresh_graph):
        from repro.framework.graph import OpClass
        _, loss, _ = quadratic_problem()
        RMSPropOptimizer(0.01).minimize(loss)
        graph = get_default_graph()
        apply_ops = [op for op in graph.operations
                     if op.type_name == "ApplyRMSProp"]
        assert apply_ops
        assert all(op.op_class is OpClass.OPTIMIZATION for op in apply_ops)

    def test_shared_training_node_updates_all_variables(self, fresh_graph):
        a = ops.variable(np.full(2, 5.0, dtype=np.float32), name="a")
        b = ops.variable(np.full(3, -5.0, dtype=np.float32), name="b")
        loss = ops.add(ops.reduce_sum(ops.square(a)),
                       ops.reduce_sum(ops.square(b)))
        train = GradientDescentOptimizer(0.4).minimize(loss)
        session = Session(fresh_graph, seed=0)
        session.run(train)
        np.testing.assert_allclose(session.variable_value(a), [1.0, 1.0],
                                   rtol=1e-5)
        np.testing.assert_allclose(session.variable_value(b),
                                   [-1.0, -1.0, -1.0], rtol=1e-5)
