"""Tests for the extended op vocabulary: Select, Floor/Ceil/Round, Elu,
leaky_relu, clip_by_value, stack/unstack, GRU."""

import numpy as np
import pytest

from repro.framework import ops, rnn
from repro.framework.autodiff import gradients
from repro.framework.session import Session
from tests.conftest import numeric_gradient


class TestRounding:
    def test_floor_ceil_round(self, session):
        x = ops.constant(np.array([-1.5, -0.4, 0.5, 2.7], dtype=np.float32))
        np.testing.assert_array_equal(session.run(ops.floor(x)),
                                      [-2.0, -1.0, 0.0, 2.0])
        np.testing.assert_array_equal(session.run(ops.ceil(x)),
                                      [-1.0, -0.0, 1.0, 3.0])
        np.testing.assert_array_equal(session.run(ops.round_(x)),
                                      [-2.0, -0.0, 0.0, 3.0])

    def test_rounding_blocks_gradients(self):
        x = ops.placeholder((3,), name="x")
        loss = ops.reduce_sum(ops.floor(x))
        assert gradients(loss, [x]) == [None]


class TestSelect:
    def test_chooses_by_mask(self, session):
        cond = ops.constant(np.array([1.0, 0.0, 1.0], dtype=np.float32))
        x = ops.constant(np.array([10.0, 20.0, 30.0], dtype=np.float32))
        y = ops.constant(np.array([-1.0, -2.0, -3.0], dtype=np.float32))
        out = session.run(ops.select(cond, x, y))
        np.testing.assert_array_equal(out, [10.0, -2.0, 30.0])

    def test_gradient_routes_through_mask(self, session):
        cond = ops.constant(np.array([1.0, 0.0], dtype=np.float32))
        x = ops.placeholder((2,), name="x")
        y = ops.placeholder((2,), name="y")
        loss = ops.reduce_sum(ops.select(cond, x, y))
        gx, gy = gradients(loss, [x, y])
        feed = {x: np.zeros(2, np.float32), y: np.zeros(2, np.float32)}
        np.testing.assert_array_equal(session.run(gx, feed_dict=feed),
                                      [1.0, 0.0])
        np.testing.assert_array_equal(session.run(gy, feed_dict=feed),
                                      [0.0, 1.0])

    def test_condition_from_comparison(self, session):
        x = ops.constant(np.array([-2.0, 3.0], dtype=np.float32))
        out = session.run(ops.select(ops.greater(x, 0.0), x,
                                     ops.negative(x)))
        np.testing.assert_array_equal(out, [2.0, 3.0])  # abs via select


class TestActivations:
    def test_elu_values(self, session):
        x = ops.constant(np.array([-2.0, 0.0, 3.0], dtype=np.float32))
        out = session.run(ops.elu(x, alpha=1.0))
        np.testing.assert_allclose(out, [np.exp(-2.0) - 1.0, 0.0, 3.0],
                                   rtol=1e-5)

    def test_elu_gradient_numeric(self, session, rng):
        x = ops.placeholder((6,), name="x")
        loss = ops.reduce_sum(ops.square(ops.elu(x)))
        grad = gradients(loss, [x])[0]
        value = np.array([-2.0, -0.5, -0.1, 0.1, 0.5, 2.0],
                         dtype=np.float32)
        analytic = session.run(grad, feed_dict={x: value})
        for index in [(0,), (2,), (5,)]:
            numeric = numeric_gradient(session, loss, x, value, index)
            np.testing.assert_allclose(analytic[index], numeric, rtol=5e-2,
                                       atol=1e-3)

    def test_leaky_relu(self, session):
        x = ops.constant(np.array([-10.0, 5.0], dtype=np.float32))
        out = session.run(ops.leaky_relu(x, alpha=0.1))
        np.testing.assert_allclose(out, [-1.0, 5.0], rtol=1e-6)

    def test_clip_by_value(self, session):
        x = ops.constant(np.array([-5.0, 0.5, 5.0], dtype=np.float32))
        out = session.run(ops.clip_by_value(x, -1.0, 1.0))
        np.testing.assert_array_equal(out, [-1.0, 0.5, 1.0])

    def test_clip_gradient_zero_outside(self, session):
        x = ops.placeholder((3,), name="x")
        loss = ops.reduce_sum(ops.clip_by_value(x, -1.0, 1.0))
        grad = gradients(loss, [x])[0]
        value = np.array([-5.0, 0.0, 5.0], dtype=np.float32)
        np.testing.assert_array_equal(session.run(grad, feed_dict={x: value}),
                                      [0.0, 1.0, 0.0])


class TestStackUnstack:
    def test_stack_matches_numpy(self, session, rng):
        arrays = [rng.standard_normal((2, 3)).astype(np.float32)
                  for _ in range(4)]
        out = session.run(ops.stack([ops.constant(a) for a in arrays],
                                    axis=0))
        np.testing.assert_array_equal(out, np.stack(arrays, axis=0))

    def test_stack_middle_axis(self, session, rng):
        arrays = [rng.standard_normal((2, 3)).astype(np.float32)
                  for _ in range(4)]
        tensor = ops.stack([ops.constant(a) for a in arrays], axis=1)
        assert tensor.shape == (2, 4, 3)

    def test_unstack_roundtrips(self, session, rng):
        x = rng.standard_normal((3, 2, 4)).astype(np.float32)
        parts = ops.unstack(ops.constant(x), axis=0)
        assert len(parts) == 3
        assert parts[0].shape == (2, 4)
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(session.run(part), x[i])

    def test_unstack_negative_axis(self, session, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        parts = ops.unstack(ops.constant(x), axis=-1)
        assert len(parts) == 3
        assert parts[0].shape == (2,)


class TestGRUCell:
    def test_step_shapes_and_state_identity(self, fresh_graph, rng):
        cell = rnn.GRUCell(num_units=5, input_size=3, rng=rng)
        x = ops.placeholder((2, 3), name="x")
        out, state = cell(x, cell.zero_state(2))
        assert out is state
        assert out.shape == (2, 5)

    def test_interpolates_between_state_and_candidate(self, fresh_graph,
                                                      rng):
        """GRU output is a convex combination, so it stays within the
        [-1, 1] envelope of tanh candidates and initial zero state."""
        cell = rnn.GRUCell(num_units=4, input_size=4, rng=rng)
        x = ops.placeholder((1, 4), name="x")
        out, _ = cell(x, cell.zero_state(1))
        session = Session(fresh_graph, seed=0)
        value = session.run(
            out, feed_dict={x: 100.0 * np.ones((1, 4), dtype=np.float32)})
        assert np.all(np.abs(value) <= 1.0 + 1e-5)

    def test_unrolls_with_static_rnn(self, fresh_graph, rng):
        cell = rnn.GRUCell(num_units=4, input_size=2, rng=rng)
        inputs = [ops.placeholder((2, 2), name=f"t{t}") for t in range(3)]
        outputs, final_state = rnn.static_rnn(cell, inputs)
        assert len(outputs) == 3
        assert final_state.shape == (2, 4)

    def test_trainable_end_to_end(self, fresh_graph, rng):
        from repro.framework.optimizers import AdamOptimizer
        cell = rnn.GRUCell(num_units=8, input_size=4, rng=rng)
        x = ops.placeholder((4, 4), name="x")
        out, _ = cell(x, cell.zero_state(4))
        loss = ops.reduce_mean(ops.square(ops.subtract(out, 0.5)))
        train = AdamOptimizer(0.05).minimize(loss)
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((4, 4)).astype(np.float32)}
        first = session.run(loss, feed_dict=feed)
        for _ in range(50):
            session.run(train, feed_dict=feed)
        assert session.run(loss, feed_dict=feed) < 0.5 * first
