"""Tests for variable checkpointing."""

import numpy as np
import pytest

from repro.framework import checkpoint, ops
from repro.framework.checkpoint import CheckpointError
from repro.framework.graph import Graph
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session


def small_model():
    w = ops.variable(np.zeros((4, 2), dtype=np.float32), name="w")
    b = ops.variable(np.zeros(2, dtype=np.float32), name="b")
    x = ops.placeholder((3, 4), name="x")
    loss = ops.reduce_sum(ops.square(ops.bias_add(ops.matmul(x, w), b)
                                     - 1.0))
    train = GradientDescentOptimizer(0.05).minimize(loss)
    return x, loss, train, w, b


class TestSaveRestore:
    def test_roundtrip_preserves_training_state(self, fresh_graph, tmp_path,
                                                rng):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((3, 4)).astype(np.float32)}
        for _ in range(5):
            session.run(train, feed_dict=feed)
        trained_loss = session.run(loss, feed_dict=feed)
        path = tmp_path / "model.npz"
        saved = checkpoint.save(session, path)
        assert "w" in saved and "b" in saved

        fresh = Session(fresh_graph, seed=1)
        assert fresh.run(loss, feed_dict=feed) != pytest.approx(
            float(trained_loss))
        checkpoint.restore(fresh, path)
        np.testing.assert_allclose(fresh.run(loss, feed_dict=feed),
                                   trained_loss, rtol=1e-6)

    def test_save_includes_optimizer_slots(self, fresh_graph, tmp_path, rng):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        session.run(train,
                    feed_dict={x: np.ones((3, 4), dtype=np.float32)})
        saved = checkpoint.save(session, tmp_path / "ckpt.npz")
        # SGD has no slots, but the graph's variables are all there.
        assert set(saved) == {"w", "b"}

    def test_untouched_variables_saved_at_initial_value(self, fresh_graph,
                                                        tmp_path):
        ops.variable(np.full(3, 7.0, dtype=np.float32), name="v")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "init.npz")
        with np.load(tmp_path / "init.npz") as archive:
            np.testing.assert_array_equal(archive["v"], [7.0, 7.0, 7.0])

    def test_strict_restore_rejects_missing(self, fresh_graph, tmp_path):
        ops.variable(np.zeros(2, dtype=np.float32), name="a")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "a.npz")
        # New graph with an extra variable.
        other = Graph()
        with other.as_default():
            ops.variable(np.zeros(2, dtype=np.float32), name="a")
            ops.variable(np.zeros(2, dtype=np.float32), name="extra")
        other_session = Session(other, seed=0)
        with pytest.raises(CheckpointError, match="mismatch"):
            checkpoint.restore(other_session, tmp_path / "a.npz")
        restored = checkpoint.restore(other_session, tmp_path / "a.npz",
                                      strict=False)
        assert restored == ["a"]

    def test_shape_mismatch_rejected(self, fresh_graph, tmp_path):
        ops.variable(np.zeros(2, dtype=np.float32), name="v")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "v.npz")
        other = Graph()
        with other.as_default():
            ops.variable(np.zeros(3, dtype=np.float32), name="v")
        with pytest.raises(CheckpointError, match="shape"):
            checkpoint.restore(Session(other, seed=0), tmp_path / "v.npz")

    def test_workload_checkpoint_roundtrip(self, tmp_path):
        from repro import workloads
        model = workloads.create("autoenc", config="tiny", seed=0)
        model.run_training(steps=3)
        images = model.sample_feed(training=False)[model.images]
        reference = model.session.run(model.loss,
                                      feed_dict={model.images: images})
        checkpoint.save(model.session, tmp_path / "autoenc.npz")

        clone = workloads.create("autoenc", config="tiny", seed=99)
        checkpoint.restore(clone.session, tmp_path / "autoenc.npz")
        restored = clone.session.run(clone.loss,
                                     feed_dict={clone.images: images})
        # Same weights, same input; the only difference is the sampling
        # noise stream, so losses are close but not identical.
        assert abs(float(restored) - float(reference)) < \
            0.1 * abs(float(reference))
