"""Tests for variable checkpointing."""

import json

import numpy as np
import pytest

from repro.framework import checkpoint, ops
from repro.framework.checkpoint import CheckpointError
from repro.framework.graph import Graph
from repro.framework.optimizers import GradientDescentOptimizer
from repro.framework.session import Session


def small_model():
    w = ops.variable(np.zeros((4, 2), dtype=np.float32), name="w")
    b = ops.variable(np.zeros(2, dtype=np.float32), name="b")
    x = ops.placeholder((3, 4), name="x")
    loss = ops.reduce_sum(ops.square(ops.bias_add(ops.matmul(x, w), b)
                                     - 1.0))
    train = GradientDescentOptimizer(0.05).minimize(loss)
    return x, loss, train, w, b


class TestSaveRestore:
    def test_roundtrip_preserves_training_state(self, fresh_graph, tmp_path,
                                                rng):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((3, 4)).astype(np.float32)}
        for _ in range(5):
            session.run(train, feed_dict=feed)
        trained_loss = session.run(loss, feed_dict=feed)
        path = tmp_path / "model.npz"
        saved = checkpoint.save(session, path)
        assert "w" in saved and "b" in saved

        fresh = Session(fresh_graph, seed=1)
        assert fresh.run(loss, feed_dict=feed) != pytest.approx(
            float(trained_loss))
        checkpoint.restore(fresh, path)
        np.testing.assert_allclose(fresh.run(loss, feed_dict=feed),
                                   trained_loss, rtol=1e-6)

    def test_save_includes_optimizer_slots(self, fresh_graph, tmp_path, rng):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        session.run(train,
                    feed_dict={x: np.ones((3, 4), dtype=np.float32)})
        saved = checkpoint.save(session, tmp_path / "ckpt.npz")
        # SGD has no slots, but the graph's variables are all there.
        assert set(saved) == {"w", "b"}

    def test_untouched_variables_saved_at_initial_value(self, fresh_graph,
                                                        tmp_path):
        ops.variable(np.full(3, 7.0, dtype=np.float32), name="v")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "init.npz")
        with np.load(tmp_path / "init.npz") as archive:
            np.testing.assert_array_equal(archive["v"], [7.0, 7.0, 7.0])

    def test_strict_restore_rejects_missing(self, fresh_graph, tmp_path):
        ops.variable(np.zeros(2, dtype=np.float32), name="a")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "a.npz")
        # New graph with an extra variable.
        other = Graph()
        with other.as_default():
            ops.variable(np.zeros(2, dtype=np.float32), name="a")
            ops.variable(np.zeros(2, dtype=np.float32), name="extra")
        other_session = Session(other, seed=0)
        with pytest.raises(CheckpointError, match="mismatch"):
            checkpoint.restore(other_session, tmp_path / "a.npz")
        restored = checkpoint.restore(other_session, tmp_path / "a.npz",
                                      strict=False)
        assert restored == ["a"]

    def test_shape_mismatch_rejected(self, fresh_graph, tmp_path):
        ops.variable(np.zeros(2, dtype=np.float32), name="v")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "v.npz")
        other = Graph()
        with other.as_default():
            ops.variable(np.zeros(3, dtype=np.float32), name="v")
        with pytest.raises(CheckpointError, match="shape"):
            checkpoint.restore(Session(other, seed=0), tmp_path / "v.npz")

    def test_save_appends_npz_suffix_like_savez(self, fresh_graph,
                                                tmp_path):
        ops.variable(np.zeros(2, dtype=np.float32), name="v")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "bare")
        assert (tmp_path / "bare.npz").exists()

    def test_workload_checkpoint_roundtrip(self, tmp_path):
        from repro import workloads
        model = workloads.create("autoenc", config="tiny", seed=0)
        model.run_training(steps=3)
        images = model.sample_feed(training=False)[model.images]
        reference = model.session.run(model.loss,
                                      feed_dict={model.images: images})
        checkpoint.save(model.session, tmp_path / "autoenc.npz")

        clone = workloads.create("autoenc", config="tiny", seed=99)
        checkpoint.restore(clone.session, tmp_path / "autoenc.npz")
        restored = clone.session.run(clone.loss,
                                     feed_dict={clone.images: images})
        # Same weights, same input; the only difference is the sampling
        # noise stream, so losses are close but not identical.
        assert abs(float(restored) - float(reference)) < \
            0.1 * abs(float(reference))


class TestAtomicSave:
    """checkpoint.save must never leave a corrupt archive behind."""

    def make_session(self, fresh_graph, value):
        ops.variable(np.full(4, value, dtype=np.float32), name="v")
        return Session(fresh_graph, seed=0)

    def test_interrupted_save_preserves_previous_checkpoint(
            self, fresh_graph, tmp_path, monkeypatch):
        """A crash mid-write (simulated: savez writes partial bytes then
        dies) must leave the previous checkpoint intact and loadable."""
        session = self.make_session(fresh_graph, 1.0)
        path = tmp_path / "model.npz"
        checkpoint.save(session, path)

        real_savez = np.savez

        def dying_savez(file, **arrays):
            file.write(b"PK\x03\x04 truncated")  # partial, invalid npz
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(checkpoint.np, "savez", dying_savez)
        session.set_variable(
            session.graph.operations[0].output,
            np.full(4, 2.0, dtype=np.float32))
        with pytest.raises(OSError, match="simulated crash"):
            checkpoint.save(session, path)
        monkeypatch.setattr(checkpoint.np, "savez", real_savez)

        # The old checkpoint survives, bit-for-bit valid.
        restored = Session(fresh_graph, seed=3)
        checkpoint.restore(restored, path)
        np.testing.assert_array_equal(
            restored.variable_value(fresh_graph.operations[0].output),
            [1.0, 1.0, 1.0, 1.0])

    def test_interrupted_save_leaves_no_temp_litter(
            self, fresh_graph, tmp_path, monkeypatch):
        session = self.make_session(fresh_graph, 1.0)

        def dying_savez(file, **arrays):
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(checkpoint.np, "savez", dying_savez)
        with pytest.raises(OSError):
            checkpoint.save(session, tmp_path / "model.npz")
        assert list(tmp_path.iterdir()) == []

    def test_write_fault_before_publish_cleans_the_temp_file(
            self, tmp_path, monkeypatch):
        """An injected I/O fault during the write itself (fsync dying,
        e.g. the device going away) must remove the temp file and leave
        the previous contents untouched."""
        from repro.framework.checkpoint import atomic_write_bytes
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"previous contents")

        def dying_fsync(fd):
            raise OSError("simulated I/O error during fsync")

        monkeypatch.setattr(checkpoint.os, "fsync", dying_fsync)
        with pytest.raises(OSError, match="simulated I/O error"):
            atomic_write_bytes(target, b"new contents")
        assert target.read_bytes() == b"previous contents"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob"]

    def test_write_fault_at_publish_cleans_the_temp_file(
            self, tmp_path, monkeypatch):
        """Same contract when the fault lands on the rename itself."""
        from repro.framework.checkpoint import atomic_write_bytes
        target = tmp_path / "blob"

        def dying_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(checkpoint.os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_bytes(target, b"data")
        assert list(tmp_path.iterdir()) == []

    def test_save_goes_through_os_replace(self, fresh_graph, tmp_path,
                                          monkeypatch):
        """The final publish step is an atomic rename, not a write."""
        import os as os_module
        session = self.make_session(fresh_graph, 1.0)
        replaced = []
        real_replace = os_module.replace

        def spying_replace(src, dst):
            replaced.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(checkpoint.os, "replace", spying_replace)
        checkpoint.save(session, tmp_path / "model.npz")
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert dst == str(tmp_path / "model.npz")
        # temp file lived in the same directory (required for atomicity)
        assert os_module.path.dirname(src) == str(tmp_path)


class TestIntegrity:
    """CRC32 verification: corruption after save is localized on restore."""

    def _tamper(self, path, name, mutate):
        """Rewrite one stored array, keeping the original checksum table."""
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        data[name] = mutate(data[name])
        np.savez(path, **data)

    def test_tampered_payload_names_the_variable(self, fresh_graph,
                                                 tmp_path):
        from repro.framework.checkpoint import CheckpointCorruptError
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        self._tamper(path, "w", lambda value: value + 1.0)
        fresh = Session(fresh_graph, seed=1)
        with pytest.raises(CheckpointCorruptError,
                           match="'w' failed its CRC32") as excinfo:
            checkpoint.restore(fresh, path)
        assert excinfo.value.variable == "w"
        # corruption errors are still CheckpointErrors for callers that
        # catch broadly (the resilient runner's resume path)
        assert isinstance(excinfo.value, CheckpointError)

    def test_untampered_checkpoint_passes_verification(self, fresh_graph,
                                                       tmp_path):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        restored = checkpoint.restore(Session(fresh_graph, seed=1), path)
        assert restored == ["b", "w"]

    def test_corrupt_checksum_table_rejected(self, fresh_graph, tmp_path):
        from repro.framework.checkpoint import (CheckpointCorruptError,
                                                _CHECKSUM_KEY)
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        self._tamper(path, _CHECKSUM_KEY,
                     lambda value: np.frombuffer(b"not json",
                                                 dtype=np.uint8).copy())
        with pytest.raises(CheckpointCorruptError, match="checksum table"):
            checkpoint.restore(Session(fresh_graph, seed=1), path)

    def test_legacy_checkpoint_without_checksums_restores(self, fresh_graph,
                                                          tmp_path):
        """Archives written before checksums existed still load."""
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "legacy.npz"
        np.savez(path, w=np.ones((4, 2), dtype=np.float32),
                 b=np.ones(2, dtype=np.float32))
        restored = checkpoint.restore(session, path)
        assert restored == ["b", "w"]
        np.testing.assert_array_equal(session.variable_value(w),
                                      np.ones((4, 2), dtype=np.float32))

    def test_truncated_archive_is_a_checkpoint_error(self, fresh_graph,
                                                     tmp_path):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            checkpoint.restore(Session(fresh_graph, seed=1), path)

    def test_checksum_table_entry_without_payload_is_localized(
            self, fresh_graph, tmp_path):
        """A table/payload divergence names the offending variable
        instead of surfacing as a confusing graph mismatch."""
        from repro.framework.checkpoint import CheckpointCorruptError
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        del data["w"]  # payload vanishes; the table still lists it
        np.savez(path, **data)
        with pytest.raises(CheckpointCorruptError,
                           match="lists variable 'w' but the archive "
                                 "holds no such payload") as excinfo:
            checkpoint.restore(Session(fresh_graph, seed=1), path)
        assert excinfo.value.variable == "w"

    def test_payload_missing_from_checksum_table_is_localized(
            self, fresh_graph, tmp_path):
        from repro.framework.checkpoint import (CheckpointCorruptError,
                                                _CHECKSUM_KEY)
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        path = tmp_path / "ckpt.npz"
        checkpoint.save(session, path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        table = json.loads(bytes(data[_CHECKSUM_KEY]).decode("utf-8"))
        del table["b"]  # the table forgets a payload it shipped
        data[_CHECKSUM_KEY] = np.frombuffer(
            json.dumps(table, sort_keys=True).encode("utf-8"),
            dtype=np.uint8).copy()
        np.savez(path, **data)
        with pytest.raises(CheckpointCorruptError,
                           match="payload 'b' is missing from the "
                                 "checksum table") as excinfo:
            checkpoint.restore(Session(fresh_graph, seed=1), path)
        assert excinfo.value.variable == "b"


class TestEdgeCasePayloads:
    """Zero-length arrays and non-default dtypes must round-trip."""

    def test_zero_length_array_roundtrips(self, fresh_graph, tmp_path):
        empty = ops.variable(np.zeros((0, 4), dtype=np.float32),
                             name="empty")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "empty.npz")
        fresh = Session(fresh_graph, seed=1)
        assert checkpoint.restore(fresh, tmp_path / "empty.npz") \
            == ["empty"]
        value = fresh.variable_value(empty)
        assert value.shape == (0, 4) and value.dtype == np.float32

    @pytest.mark.parametrize("dtype", [np.float16, np.int8, np.int64])
    def test_dtype_roundtrips_exactly(self, fresh_graph, tmp_path,
                                      dtype):
        initial = np.array([-3, 0, 7], dtype=dtype)
        var = ops.variable(initial, name="q")
        session = Session(fresh_graph, seed=0)
        checkpoint.save(session, tmp_path / "q.npz")
        fresh = Session(fresh_graph, seed=1)
        checkpoint.restore(fresh, tmp_path / "q.npz")
        value = fresh.variable_value(var)
        assert value.dtype == dtype
        np.testing.assert_array_equal(value, initial)


class TestBytesTransport:
    """save_bytes/restore_bytes: the archive format minus the filesystem
    (what the replicated blob stores carry)."""

    def test_bytes_roundtrip_matches_file_roundtrip(self, fresh_graph,
                                                    tmp_path, rng):
        x, loss, train, w, b = small_model()
        session = Session(fresh_graph, seed=0)
        feed = {x: rng.standard_normal((3, 4)).astype(np.float32)}
        for _ in range(4):
            session.run(train, feed_dict=feed)
        data = checkpoint.save_bytes(session)

        # The byte payload *is* the file format: written out verbatim it
        # restores through the file path, and vice versa.
        (tmp_path / "ckpt.npz").write_bytes(data)
        via_file = Session(fresh_graph, seed=1)
        checkpoint.restore(via_file, tmp_path / "ckpt.npz")
        via_bytes = Session(fresh_graph, seed=2)
        assert checkpoint.restore_bytes(via_bytes, data) == ["b", "w"]
        np.testing.assert_array_equal(via_file.variable_value(w),
                                      via_bytes.variable_value(w))
        np.testing.assert_array_equal(via_file.variable_value(w),
                                      session.variable_value(w))

    def test_restore_bytes_labels_errors_with_the_source(self,
                                                         fresh_graph):
        small_model()
        session = Session(fresh_graph, seed=0)
        data = bytearray(checkpoint.save_bytes(session))
        data[100] ^= 0xFF
        with pytest.raises(CheckpointError,
                           match="ckpt/00000000/payload"):
            checkpoint.restore_bytes(session, bytes(data),
                                     source="ckpt/00000000/payload")
