"""Chaos campaign engine: search, oracles, minimization, replay.

The acceptance bar (see docs/robustness.md): a healthy stack survives a
budget-capped campaign on every harness with zero violations; a
deliberately broken recovery path is *found* by the campaign, *shrunk*
by delta debugging to a minimal reproducer — the same one on every run —
and *replayed* from the emitted reproducer file alone.
"""

import json

import pytest

from repro.chaos import (CampaignSpec, ddmin, enumerate_schedules,
                         oracles_for, replay_reproducer, run_campaign,
                         write_reproducer)
from repro.chaos.harnesses import (ClusterHarness, ServingHarness,
                                   build_harness)
from repro.distributed import AttestationPolicy
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer
from repro.serving.server import InferenceServer


class DroppingServer(InferenceServer):
    """The seeded bug: crashed batches' requests are silently dropped
    instead of hedged or failed terminally — invisible to every happy
    path, fatal to the exactly-one-terminal-reply contract."""

    def _retry_group(self, group, now, detail):
        if "crash" in detail:
            return
        super()._retry_group(group, now, detail)


class BrokenServingHarness(ServingHarness):
    SERVER_CLASS = DroppingServer


class BlindClusterHarness(ClusterHarness):
    """The seeded attestation-evading fixture: thresholds so lax that
    the statistics nominate nothing and the round-robin audit probe is
    off — byzantine corruption sails through undetected, unreplaced,
    straight into every replica's parameters."""

    attestation = AttestationPolicy(norm_ratio_limit=1e9,
                                    cosine_floor=-1.0,
                                    probe_every=0, stale_window=0)


class TestHealthyCampaigns:
    """Every harness survives its budget-capped campaign cleanly."""

    @pytest.mark.parametrize("harness", ["training", "cluster",
                                         "serving", "fleet"])
    def test_singleton_schedules_hold_every_oracle(self, harness):
        spec = CampaignSpec(harness=harness, budget=8, max_faults=1)
        result = run_campaign(spec)
        assert result.ok, [v.to_json() for v in result.violations]
        assert result.executed >= 5
        # every applicable oracle was consulted on every schedule
        assert result.verdicts == result.executed \
            * len(result.oracle_names)

    def test_pair_schedules_on_serving(self):
        spec = CampaignSpec(harness="serving", budget=30, max_faults=2)
        result = run_campaign(spec)
        assert result.ok
        assert result.schedule_space == 21  # 6 singletons + C(6,2)
        assert result.executed == 21

    def test_budget_sampling_is_deterministic(self):
        spec = CampaignSpec(harness="training", budget=10, max_faults=2)
        first = run_campaign(spec)
        second = run_campaign(spec)
        assert first.executed == second.executed == 10
        assert first.schedule_space == 21
        assert first.ok and second.ok


class TestBrokenRecoveryFound:
    """The seeded broken-recovery fixture is found, minimized, and
    replayed deterministically."""

    SPEC = CampaignSpec(harness="serving", budget=30, max_faults=2)

    def test_campaign_finds_and_minimizes_the_bug(self):
        result = run_campaign(self.SPEC, harness=BrokenServingHarness())
        assert not result.ok
        crash_violations = [v for v in result.violations
                            if v.oracle == "terminal_replies"]
        assert crash_violations
        first = crash_violations[0]
        # minimized to the essential fault(s): a replica crash, alone or
        # with at most one accomplice
        assert 1 <= len(first.minimized.specs) <= 2
        assert any(s.kind == "replica_crash"
                   for s in first.minimized.specs)
        # 1-minimality: dropping any remaining spec loses the violation
        assert first.minimize_stats.tests_run >= 1

    def test_minimization_is_deterministic(self):
        first = run_campaign(self.SPEC, harness=BrokenServingHarness())
        second = run_campaign(self.SPEC, harness=BrokenServingHarness())
        assert [(v.oracle, v.schedule_index, v.minimized.specs)
                for v in first.violations] \
            == [(v.oracle, v.schedule_index, v.minimized.specs)
                for v in second.violations]

    def test_reproducer_file_replays(self, tmp_path):
        harness = BrokenServingHarness()
        result = run_campaign(self.SPEC, harness=harness,
                              minimize=True)
        violation = result.violations[0]
        path = tmp_path / "reproducer.json"
        blob = write_reproducer(path, harness, violation)
        assert blob["kind"] == "repro-chaos-reproducer"
        assert blob["oracle"] == "terminal_replies"
        assert "chaos replay" in blob["replay"]
        written = json.loads(path.read_text())
        assert written == blob
        # replayed on the HEALTHY stack, the same schedule passes: the
        # reproducer pins the schedule, the code carries the bug
        verdicts, _ = replay_reproducer(path)
        assert all(v.ok for v in verdicts)

    def test_campaign_narrates_into_the_tracer(self, tmp_path):
        tracer = Tracer()
        result = run_campaign(self.SPEC,
                              harness=BrokenServingHarness(),
                              tracer=tracer)
        events = tracer.campaign_events()
        kinds = {e.kind for e in events}
        assert {"baseline", "schedule", "verdict", "violation",
                "minimized"} <= kinds
        assert len(tracer.campaign_events("verdict")) \
            == result.verdicts
        # campaign events are their own family: not failures
        assert tracer.failure_events() == []
        # and they round-trip through trace serialization
        path = tmp_path / "campaign.jsonl"
        save_trace(tracer, path, metadata={"mode": "chaos-campaign"})
        loaded = load_trace(path)
        assert [e.signature() for e in loaded.campaign_events()] \
            == [e.signature() for e in events]
        assert loaded.failure_events() == []


class TestAttestationEvaderFound:
    """The seeded attestation-evading fixture is found by the
    byzantine_detection oracle and minimized to the byzantine atom(s)
    alone — the campaign proves the *detector* is load-bearing, not
    just the aggregation arithmetic."""

    SPEC = CampaignSpec(harness="cluster", budget=12, max_faults=1)

    def test_campaign_convicts_the_blind_attestor(self):
        result = run_campaign(self.SPEC, harness=BlindClusterHarness())
        assert not result.ok
        missed = [v for v in result.violations
                  if v.oracle == "byzantine_detection"]
        assert missed
        for violation in missed:
            # ddmin lands on a <=2-fault reproducer made purely of
            # byzantine atoms: benign faults never mask the evasion
            assert 1 <= len(violation.minimized.specs) <= 2
            assert all(s.kind.startswith("byzantine_")
                       for s in violation.minimized.specs)
        # every byzantine atom slips past the blinded attestor
        kinds = {s.kind for v in missed for s in v.minimized.specs}
        assert kinds == {"byzantine_scale", "byzantine_signflip",
                         "byzantine_stale", "byzantine_drift"}

    def test_evasion_hunt_is_deterministic(self):
        first = run_campaign(self.SPEC, harness=BlindClusterHarness())
        second = run_campaign(self.SPEC, harness=BlindClusterHarness())
        assert [(v.oracle, v.schedule_index, v.minimized.specs)
                for v in first.violations] \
            == [(v.oracle, v.schedule_index, v.minimized.specs)
                for v in second.violations]

    def test_healthy_attestor_catches_every_atom(self):
        # the same schedules on the real ClusterHarness stay green:
        # the fixture's blindness, not the atoms, is the bug
        result = run_campaign(self.SPEC)
        assert result.ok, [v.to_json() for v in result.violations]


class TestEnumeration:
    def test_singletons_come_first(self):
        space = enumerate_schedules(["a", "b", "c"], 2)
        assert space[:3] == [("a",), ("b",), ("c",)]
        assert set(space[3:]) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_max_faults_caps_size(self):
        space = enumerate_schedules(list("abcd"), 3)
        assert max(len(s) for s in space) == 3
        assert len(space) == 4 + 6 + 4


class TestDdmin:
    def test_shrinks_to_the_single_culprit(self):
        runs = []

        def fails(specs):
            runs.append(tuple(specs))
            return "x" in specs

        result = ddmin(list("abxcd"), fails)
        assert result.specs == ("x",)
        assert result.tests_run == len(set(runs))

    def test_shrinks_conjunction_to_the_pair(self):
        result = ddmin(list("abxcyd"),
                       lambda s: "x" in s and "y" in s)
        assert result.specs == ("x", "y")

    def test_preserves_original_order(self):
        result = ddmin(list("yabx"),
                       lambda s: "x" in s and "y" in s)
        assert result.specs == ("y", "x")

    def test_rejects_non_reproducing_schedule(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            ddmin(list("abc"), lambda s: False)

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError, match="empty"):
            ddmin([], lambda s: True)

    def test_caches_repeat_subsets(self):
        result = ddmin(list("abxcd"), lambda s: "x" in s)
        # the 1-minimality sweep re-tests subsets ddmin already ran
        assert result.cache_hits >= 0
        assert result.size == 1


class TestOracleSelection:
    def test_selection_by_harness(self):
        names = [o.name for o in oracles_for("training")]
        assert "bit_identity" in names
        assert "checkpoint_restore" in names
        assert "terminal_replies" not in names
        names = [o.name for o in oracles_for("fleet")]
        assert "terminal_replies" in names
        assert "bit_identity" not in names

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            oracles_for("training", names=("bit_identity", "tyop"))

    def test_unknown_harness_rejected(self):
        with pytest.raises(ValueError, match="unknown harness"):
            build_harness("mainframe")


class TestChaosCli:
    def test_run_healthy_training_campaign(self, capsys, tmp_path):
        from repro.cli import main
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(["chaos", "run", "--harness", "training",
                     "--budget", "6", "--max-faults", "1",
                     "--report-json", str(report_path),
                     "--trace", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "all oracles held" in out
        report = json.loads(report_path.read_text())
        assert report["kind"] == "repro-chaos-report"
        assert report["ok"] and report["executed"] == 6
        loaded = load_trace(trace_path)
        assert loaded.campaign_events()

    def test_run_with_shipped_presets(self, capsys):
        from repro.cli import main
        code = main(["chaos", "run", "--harness", "serving",
                     "--budget", "10", "--max-faults", "1",
                     "--include-presets"])
        assert code == 0
        assert "all oracles held" in capsys.readouterr().out

    def test_list_oracles_and_harnesses(self, capsys):
        from repro.cli import main
        assert main(["chaos", "run", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "terminal_replies" in out and "bit_identity" in out
        assert main(["chaos", "run", "--list-harnesses"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "training" in out

    def test_replay_cli_round_trip(self, capsys, tmp_path):
        from repro.cli import main
        harness = BrokenServingHarness()
        result = run_campaign(
            CampaignSpec(harness="serving", budget=8, max_faults=1),
            harness=harness, minimize=False)
        path = tmp_path / "bug.json"
        write_reproducer(path, harness, result.violations[0])
        # the healthy stack passes the pinned schedule
        code = main(["chaos", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "terminal_replies" in out and "ok" in out

    def test_minimize_cli_rejects_stale_reproducer(self, capsys,
                                                   tmp_path):
        from repro.cli import main
        harness = BrokenServingHarness()
        result = run_campaign(
            CampaignSpec(harness="serving", budget=8, max_faults=1),
            harness=harness, minimize=False)
        path = tmp_path / "bug.json"
        write_reproducer(path, harness, result.violations[0])
        # on the healthy stack the violation no longer reproduces —
        # minimize must fail loudly, not return a bogus "minimum"
        code = main(["chaos", "minimize", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "does not reproduce" in err
