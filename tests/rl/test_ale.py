"""Tests for the Arcade-Learning-Environment substitute games."""

import numpy as np
import pytest

from repro.rl import ale
from repro.rl.ale import Catch, Dodge


class TestCatch:
    def test_reset_returns_frame(self):
        env = Catch(screen_size=12, seed=0)
        frame = env.reset()
        assert frame.shape == (12, 12)
        assert frame.dtype == np.float32
        # One ball pixel plus a three-pixel paddle.
        assert frame.sum() == 4.0

    def test_episode_length_is_screen_height(self):
        env = Catch(screen_size=10, seed=0)
        env.reset()
        steps = 0
        done = False
        while not done:
            _, _, done = env.step(1)
            steps += 1
        assert steps == 9

    def test_perfect_play_always_catches(self):
        env = Catch(screen_size=12, seed=1)
        total = 0.0
        for _ in range(10):
            env.reset()
            done = False
            while not done:
                # Move the paddle toward the ball column.
                delta = env._ball_col - env._paddle_col
                action = 1 + int(np.sign(delta))
                _, reward, done = env.step(action)
            total += reward
        assert total == 10.0

    def test_ignoring_ball_eventually_misses(self):
        env = Catch(screen_size=16, seed=3)
        rewards = []
        for _ in range(20):
            env.reset()
            done = False
            while not done:
                _, reward, done = env.step(0)  # always move left
            rewards.append(reward)
        assert -1.0 in rewards

    def test_step_after_done_raises(self):
        env = Catch(screen_size=8, seed=0)
        env.reset()
        done = False
        while not done:
            _, _, done = env.step(1)
        with pytest.raises(RuntimeError):
            env.step(1)

    def test_invalid_action_rejected(self):
        env = Catch(screen_size=8, seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step(5)

    def test_too_small_screen_rejected(self):
        with pytest.raises(ValueError):
            Catch(screen_size=3)

    def test_render_ascii(self):
        env = Catch(screen_size=8, seed=0)
        env.reset()
        art = env.render_ascii()
        assert art.count("\n") == 7
        assert "#" in art


class TestDodge:
    def test_survival_accumulates_reward(self):
        env = Dodge(screen_size=10, spawn_probability=0.0, max_steps=20,
                    seed=0)
        env.reset()
        total = 0.0
        done = False
        while not done:
            _, reward, done = env.step(1)
            total += reward
        assert total == pytest.approx(2.0)  # 20 steps * 0.1

    def test_collision_ends_episode_with_penalty(self):
        env = Dodge(screen_size=8, spawn_probability=1.0, max_steps=500,
                    seed=0)
        env.reset()
        done = False
        last_reward = 0.0
        steps = 0
        while not done and steps < 500:
            _, last_reward, done = env.step(1)  # never dodge
            steps += 1
        assert done
        assert last_reward == -1.0

    def test_frame_contains_player(self):
        env = Dodge(screen_size=10, seed=0)
        frame = env.reset()
        assert frame[-1].sum() >= 1.0


class TestRegistry:
    def test_make_by_name(self):
        assert isinstance(ale.make("catch"), Catch)
        assert isinstance(ale.make("dodge"), Dodge)

    def test_unknown_game_rejected(self):
        with pytest.raises(ValueError, match="unknown game"):
            ale.make("pacman")

    def test_seeded_determinism(self):
        a = ale.make("catch", seed=7)
        b = ale.make("catch", seed=7)
        np.testing.assert_array_equal(a.reset(), b.reset())
