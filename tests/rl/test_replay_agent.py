"""Tests for experience replay and the DQN control loop."""

import numpy as np
import pytest

from repro.rl import ale
from repro.rl.agent import DQNAgent, EpsilonSchedule, FrameStack
from repro.rl.replay import ReplayBuffer


class TestReplayBuffer:
    def _filled(self, capacity=10, count=5):
        buffer = ReplayBuffer(capacity, state_shape=(2, 2), seed=0)
        for i in range(count):
            state = np.full((2, 2), i, dtype=np.float32)
            buffer.add(state, i % 3, float(i), state + 1, i % 2 == 0)
        return buffer

    def test_length_grows_then_saturates(self):
        buffer = self._filled(capacity=4, count=10)
        assert len(buffer) == 4

    def test_circular_overwrite(self):
        buffer = self._filled(capacity=3, count=5)
        batch = buffer.sample(64)
        # Transitions 0 and 1 were overwritten by 3 and 4.
        assert batch["rewards"].min() >= 2.0

    def test_sample_fields_and_shapes(self):
        buffer = self._filled()
        batch = buffer.sample(8)
        assert batch["states"].shape == (8, 2, 2)
        assert batch["actions"].dtype == np.int32
        assert batch["dones"].dtype == np.float32
        assert set(batch) == {"states", "actions", "rewards", "next_states",
                              "dones"}

    def test_sample_empty_raises(self):
        buffer = ReplayBuffer(4, state_shape=(2,))
        with pytest.raises(ValueError):
            buffer.sample(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, state_shape=(2,))

    def test_stored_transitions_are_copies(self):
        buffer = ReplayBuffer(4, state_shape=(2,))
        state = np.zeros(2, dtype=np.float32)
        buffer.add(state, 0, 0.0, state, False)
        state[:] = 99.0
        assert buffer.sample(1)["states"].max() == 0.0


class TestEpsilonSchedule:
    def test_linear_annealing(self):
        schedule = EpsilonSchedule(start=1.0, end=0.1, decay_steps=100)
        assert schedule.value(0) == 1.0
        assert schedule.value(50) == pytest.approx(0.55)
        assert schedule.value(100) == 0.1
        assert schedule.value(10_000) == 0.1


class TestFrameStack:
    def test_reset_repeats_frame(self):
        stack = FrameStack(depth=4)
        frame = np.ones((3, 3), dtype=np.float32)
        state = stack.reset(frame)
        assert state.shape == (3, 3, 4)
        np.testing.assert_array_equal(state[..., 0], state[..., 3])

    def test_push_slides_window(self):
        stack = FrameStack(depth=3)
        stack.reset(np.zeros((2, 2), dtype=np.float32))
        newest = np.ones((2, 2), dtype=np.float32)
        state = stack.push(newest)
        np.testing.assert_array_equal(state[..., 2], newest)
        np.testing.assert_array_equal(state[..., 0], 0.0)


class _RandomQNetwork:
    """Protocol stub: uniform Q-values, counts training calls."""

    def __init__(self, num_actions):
        self.num_actions = num_actions
        self.train_calls = 0
        self.sync_calls = 0

    def q_values(self, states):
        return np.zeros((states.shape[0], self.num_actions),
                        dtype=np.float32)

    def train_on_batch(self, batch):
        self.train_calls += 1
        return 0.5

    def sync_target(self):
        self.sync_calls += 1


class TestDQNAgent:
    def _agent(self, **kwargs):
        env = ale.make("catch", screen_size=10, seed=0)
        network = _RandomQNetwork(env.num_actions)
        replay = ReplayBuffer(256, state_shape=(10, 10, 4), seed=0)
        defaults = dict(frame_depth=4, batch_size=4, min_replay=8,
                        target_sync_interval=10, seed=0)
        defaults.update(kwargs)
        return DQNAgent(network, env, replay, **defaults), network

    def test_fill_replay_populates_buffer(self):
        agent, _ = self._agent()
        agent.fill_replay(32)
        assert len(agent.replay) == 32

    def test_episode_trains_and_syncs(self):
        agent, network = self._agent()
        agent.fill_replay(16)
        for _ in range(3):
            reward, losses = agent.run_episode(max_steps=50)
        assert network.train_calls > 0
        assert network.sync_calls > 0
        assert len(agent.episode_rewards) == 3

    def test_no_training_until_min_replay(self):
        agent, network = self._agent(min_replay=10_000)
        agent.run_episode(max_steps=20)
        assert network.train_calls == 0

    def test_greedy_action_with_zero_epsilon(self):
        agent, _ = self._agent(epsilon=EpsilonSchedule(0.0, 0.0, 1))
        state = np.zeros((10, 10, 4), dtype=np.float32)
        # All-zero Q-values -> argmax is action 0, deterministically.
        assert agent.select_action(state) == 0

    def test_exploration_with_full_epsilon(self):
        agent, _ = self._agent(epsilon=EpsilonSchedule(1.0, 1.0, 1))
        state = np.zeros((10, 10, 4), dtype=np.float32)
        actions = {agent.select_action(state) for _ in range(50)}
        assert len(actions) > 1
