"""Tests for the Fathom standard model interface."""

import numpy as np
import pytest

from repro import workloads
from repro.profiling.tracer import Tracer
from repro.workloads import WORKLOADS, WORKLOAD_NAMES, create
from repro.workloads.base import FathomModel


class TestRegistry:
    def test_eight_workloads_in_table2_order(self):
        assert WORKLOAD_NAMES == ["seq2seq", "memnet", "speech", "autoenc",
                                  "residual", "vgg", "alexnet", "deepq"]

    def test_create_by_name(self):
        model = create("memnet", config="tiny")
        assert isinstance(model, WORKLOADS["memnet"])

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            create("gpt")

    def test_names_match_metadata(self):
        for name, workload_cls in WORKLOADS.items():
            assert workload_cls.name == name
            assert workload_cls.metadata.name == name


class TestConfigHandling:
    def test_every_workload_has_three_configs(self):
        for workload_cls in WORKLOADS.values():
            assert {"tiny", "default", "paper"} <= set(workload_cls.configs)

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError, match="unknown config"):
            create("memnet", config="huge")

    def test_dict_config_overrides_default(self):
        model = workloads.MemN2N(config={"hops": 1, "batch_size": 2})
        assert model.config["hops"] == 1
        assert model.config["batch_size"] == 2
        assert model.config_name == "custom"
        # Untouched keys come from the default config.
        assert model.config["embed_dim"] == \
            workloads.MemN2N.configs["default"]["embed_dim"]


class TestStandardInterface:
    @pytest.fixture(scope="class")
    def model(self):
        return create("memnet", config="tiny", seed=0)

    def test_fetches_are_set(self, model):
        assert model.inference_output is not None
        assert model.loss is not None
        assert model.train_step is not None

    def test_run_training_returns_losses(self, model):
        losses = model.run_training(steps=3)
        assert len(losses) == 3
        assert all(np.isfinite(l) for l in losses)

    def test_run_inference_returns_output(self, model):
        out = model.run_inference(steps=2)
        assert out.shape[0] == model.batch_size

    def test_profile_modes(self, model):
        profile = model.profile(mode="training", steps=1, warmup=0)
        assert profile.total_seconds > 0.0
        profile = model.profile(mode="inference", steps=1, warmup=0)
        assert profile.total_seconds > 0.0

    def test_profile_invalid_mode_rejected(self, model):
        with pytest.raises(ValueError):
            model.profile(mode="validation")

    def test_parameter_count_positive(self, model):
        assert model.num_parameters() > 0

    def test_repr(self, model):
        text = repr(model)
        assert "MemN2N" in text and "ops=" in text

    def test_summary_lists_scopes_and_totals(self, model):
        text = model.summary()
        assert "TOTAL" in text
        assert "hop0" in text
        # The totals row matches the model's own accounting.
        total_line = text.splitlines()[-1]
        assert f"{model.num_parameters():,}" in total_line

    def test_tracer_sees_training_ops(self, model):
        tracer = Tracer()
        model.run_training(steps=1, tracer=tracer)
        types = {r.op_type for r in tracer.records}
        assert "ApplyAdam" in types

    def test_determinism_across_instances(self):
        a = create("memnet", config="tiny", seed=5)
        b = create("memnet", config="tiny", seed=5)
        np.testing.assert_allclose(a.run_training(steps=2),
                                   b.run_training(steps=2), rtol=1e-5)

    def test_different_seeds_differ(self):
        a = create("memnet", config="tiny", seed=1)
        b = create("memnet", config="tiny", seed=2)
        assert not np.allclose(a.run_training(steps=1),
                               b.run_training(steps=1))


class TestMetadataTable2:
    """The registry metadata must match the paper's Table II."""

    EXPECTED = {
        "seq2seq": (2014, "Recurrent", 7, "Supervised", "WMT-15"),
        "memnet": (2015, "Memory Network", 3, "Supervised", "bAbI"),
        "speech": (2014, "Recurrent, Full", 5, "Supervised", "TIMIT"),
        "autoenc": (2014, "Full", 3, "Unsupervised", "MNIST"),
        "residual": (2015, "Convolutional", 34, "Supervised", "ImageNet"),
        "vgg": (2014, "Convolutional, Full", 19, "Supervised", "ImageNet"),
        "alexnet": (2012, "Convolutional, Full", 5, "Supervised",
                    "ImageNet"),
        "deepq": (2013, "Convolutional, Full", 5, "Reinforcement",
                  "Atari ALE"),
    }

    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_row(self, name):
        year, style, layers, task, dataset = self.EXPECTED[name]
        meta = WORKLOADS[name].metadata
        assert meta.year == year
        assert meta.neuronal_style == style
        assert meta.layers == layers
        assert meta.learning_task == task
        assert meta.dataset == dataset


class TestAbstractBase:
    def test_build_must_set_fetches(self):
        class Broken(FathomModel):
            name = "broken"
            configs = {"tiny": {"batch_size": 1},
                       "default": {"batch_size": 1},
                       "paper": {"batch_size": 1}}

            def build(self):
                pass

            def sample_feed(self, training=True):
                return {}

        with pytest.raises(RuntimeError, match="must set"):
            Broken(config="tiny")
