"""Per-workload structural and behavioural tests (tiny configs)."""

import numpy as np
import pytest

from repro import workloads
from repro.framework.graph import OpClass
from repro.profiling.tracer import Tracer


@pytest.fixture(scope="module")
def models():
    """One tiny instance of each workload, shared across this module."""
    return {name: workloads.create(name, config="tiny", seed=0)
            for name in workloads.WORKLOAD_NAMES}


def traced_types(model, mode="training"):
    tracer = Tracer()
    if mode == "training":
        model.run_training(steps=1, tracer=tracer)
    else:
        model.run_inference(steps=1, tracer=tracer)
    return {r.op_type for r in tracer.records}


class TestStructure:
    def test_conv_nets_contain_convolution(self, models):
        for name in ("alexnet", "vgg", "residual", "deepq"):
            types = {op.type_name for op in models[name].graph.operations}
            assert "Conv2D" in types, name

    def test_training_emits_conv_backward_kernels(self, models):
        types = traced_types(models["alexnet"])
        assert "Conv2DBackpropFilter" in types
        assert "Conv2DBackpropInput" in types

    def test_alexnet_has_lrn_and_dropout(self, models):
        types = {op.type_name for op in models["alexnet"].graph.operations}
        assert "LRN" in types
        assert "RandomUniform" in types  # dropout's mask sampling

    def test_vgg_uses_only_3x3_conv(self, models):
        convs = [op for op in models["vgg"].graph.operations
                 if op.type_name == "Conv2D"]
        assert len(convs) == 16  # VGG-19: sixteen conv layers
        assert all(op.inputs[1].shape[0] == 3 for op in convs)

    def test_residual_block_count(self, models):
        convs = [op for op in models["residual"].graph.operations
                 if op.type_name == "Conv2D"]
        # Stem + 2 per basic block (16 blocks) + projection shortcuts (3).
        assert len(convs) == 1 + 32 + 3

    def test_residual_has_shortcut_adds(self, models):
        adds = [op for op in models["residual"].graph.operations
                if "residual_add" in op.name]
        assert len(adds) == 16

    def test_seq2seq_has_attention_machinery(self, models):
        types = {op.type_name for op in models["seq2seq"].graph.operations}
        assert {"Tile", "BatchMatMul", "Softmax", "Gather"} <= types

    def test_memnet_hop_structure(self, models):
        softmaxes = [op for op in models["memnet"].graph.operations
                     if op.type_name == "Softmax"
                     and "attention" in op.name]
        assert len(softmaxes) == models["memnet"].config["hops"]

    def test_speech_has_ctc_and_bidirectional(self, models):
        types = {op.type_name for op in models["speech"].graph.operations}
        assert "CTCLoss" in types
        names = [op.name for op in models["speech"].graph.operations]
        assert any("birnn/forward" in n for n in names)
        assert any("birnn/backward" in n for n in names)

    def test_autoenc_samples_during_inference(self, models):
        types = traced_types(models["autoenc"], mode="inference")
        assert "StandardRandomNormal" in types

    def test_deepq_uses_rmsprop_and_stop_gradient(self, models):
        types = {op.type_name for op in models["deepq"].graph.operations}
        assert "ApplyRMSProp" in types
        assert "StopGradient" in types

    def test_deepq_has_two_towers(self, models):
        model = models["deepq"]
        online = model._scope_variables("online")
        target = model._scope_variables("target")
        assert len(online) == len(target) > 0


class TestBehaviour:
    def test_classifier_outputs_are_distributions(self, models):
        for name in ("alexnet", "vgg", "residual", "memnet"):
            out = models[name].run_inference(steps=1)
            np.testing.assert_allclose(out.sum(axis=-1),
                                       np.ones(out.shape[0]), rtol=1e-4,
                                       err_msg=name)

    def test_autoenc_reconstruction_in_unit_interval(self, models):
        out = models["autoenc"].run_inference(steps=1)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_speech_inference_is_log_probs(self, models):
        out = models["speech"].run_inference(steps=1)
        np.testing.assert_allclose(np.exp(out).sum(axis=-1),
                                   np.ones(out.shape[:2]), rtol=1e-4)

    def test_deepq_sync_copies_online_to_target(self, models):
        model = models["deepq"]
        model.run_training(steps=2)
        model.sync_target()
        online = model._scope_variables("online")
        target = model._scope_variables("target")
        for src, dst in zip(online, target):
            np.testing.assert_array_equal(
                model.session.variable_value(src),
                model.session.variable_value(dst))

    def test_deepq_q_values_pads_small_batches(self, models):
        model = models["deepq"]
        size = model.config["screen_size"]
        state = np.zeros((1, size, size, model.config["frame_depth"]),
                         dtype=np.float32)
        values = model.q_values(state)
        assert values.shape == (1, model.env.num_actions)

    def test_losses_are_finite_over_steps(self, models):
        for name, model in models.items():
            losses = model.run_training(steps=3)
            assert all(np.isfinite(l) for l in losses), name


class TestDefaultConfigStability:
    """Default configs must train stably — no NaN/Inf blow-ups.

    (Regression test: vgg's default once diverged to NaN by step 4
    under momentum 0.9 with too-high a learning rate.)
    """

    @pytest.mark.parametrize("name", workloads.WORKLOAD_NAMES)
    def test_ten_steps_stay_finite(self, name):
        model = workloads.create(name, config="default", seed=0)
        losses = model.run_training(steps=10)
        assert all(np.isfinite(l) for l in losses), (name, losses)
        # And the loss hasn't exploded relative to its start.
        assert losses[-1] < 100 * abs(losses[0]) + 100, (name, losses)


class TestLearning:
    """Every workload must actually learn on its synthetic task."""

    def check_decreases(self, name, steps, factor=0.95, seed=11):
        model = workloads.create(name, config="tiny", seed=seed)
        losses = model.run_training(steps=steps)
        window = max(3, steps // 5)
        early = float(np.mean(losses[:window]))
        late = float(np.mean(losses[-window:]))
        assert late < factor * early, (
            f"{name}: loss did not decrease ({early:.4f} -> {late:.4f})")

    def test_alexnet_learns(self):
        self.check_decreases("alexnet", steps=30)

    def test_vgg_learns(self):
        self.check_decreases("vgg", steps=30)

    def test_residual_learns(self):
        self.check_decreases("residual", steps=30)

    def test_autoenc_learns(self):
        self.check_decreases("autoenc", steps=60)

    def test_memnet_learns(self):
        self.check_decreases("memnet", steps=200)

    def test_seq2seq_learns(self):
        self.check_decreases("seq2seq", steps=60)

    def test_speech_learns(self):
        self.check_decreases("speech", steps=40)

    def test_deepq_reduces_bellman_error(self):
        model = workloads.create("deepq", config="tiny", seed=11)
        model.sync_target()
        batch = model.replay if False else None
        model._ensure_replay_seeded()
        fixed = model.replay.sample(model.batch_size)
        losses = [model.train_on_batch(fixed) for _ in range(40)]
        assert losses[-1] < losses[0]

    def test_memnet_beats_chance_with_training(self):
        model = workloads.create("memnet", config="tiny", seed=3)
        model.run_training(steps=250)
        correct = total = 0
        for _ in range(10):
            feed = model.sample_feed(training=False)
            predictions = model.session.run(model.predicted_answer,
                                            feed_dict=feed)
            answers = feed[model.answers]
            correct += int((predictions == answers).sum())
            total += len(answers)
        chance = 1.0 / model.dataset.num_answers
        assert correct / total > chance * 1.5
