"""Fidelity checks on the ``paper`` configurations.

Construction-only (no training): the graphs must build with the original
geometries and land in the published parameter-count ballpark. The heavy
image networks are exercised via the cheaper members of the suite plus
an explicit alexnet parameter-count formula check.
"""

import numpy as np
import pytest

from repro import workloads


class TestPaperConfigs:
    def test_autoenc_matches_kingma_welling_scale(self):
        model = workloads.create("autoenc", config="paper", seed=0)
        # 784 <-> 500 <-> 20 VAE: ~0.8M parameters.
        assert 0.6e6 < model.num_parameters() < 1.1e6
        assert model.config["hidden_units"] == 500
        assert model.config["latent_dim"] == 20

    def test_deepq_matches_dqn_scale(self):
        model = workloads.create("deepq", config="paper", seed=0)
        assert model.config["screen_size"] == 84
        assert model.config["frame_depth"] == 4
        # Mnih et al. tower at 84x84 with SAME padding: millions of
        # parameters, dominated by the first dense layer.
        assert 1e6 < model.num_parameters() < 2e7

    def test_memnet_paper_geometry(self):
        model = workloads.create("memnet", config="paper", seed=0)
        assert model.config["memory_size"] == 50
        assert model.config["hops"] == 3
        assert model.config["embed_dim"] == 50

    def test_seq2seq_paper_matches_text(self):
        """Section IV: 'three 7-neuron layers'."""
        cfg = workloads.Seq2Seq.configs["paper"]
        assert cfg["num_layers"] == 3
        assert cfg["hidden_units"] == 7

    def test_speech_paper_matches_hannun(self):
        """Five layers of 2048 units, TIMIT-scale windows."""
        cfg = workloads.DeepSpeech.configs["paper"]
        assert cfg["hidden_units"] == 2048
        assert cfg["num_phonemes"] == 39

    def test_vgg_alexnet_paper_geometry(self):
        for name in ("vgg", "alexnet"):
            cfg = workloads.WORKLOADS[name].configs["paper"]
            assert cfg["image_size"] == 224
            assert cfg["num_classes"] == 1000
            assert cfg["dense_units"] == 4096
            assert cfg["channel_scale"] == 1.0

    def test_alexnet_parameter_formula(self):
        """The full-scale alexnet graph holds ~62M parameters (the
        original's count). Checked arithmetically from the layer plan to
        avoid constructing the 62M-element arrays in CI."""
        plan = workloads.AlexNet._CONV_PLAN
        cfg = workloads.AlexNet.configs["paper"]
        channels_in = 3
        total = 0
        spatial = cfg["image_size"]
        for filters, kernel, stride, pooled in plan:
            total += kernel * kernel * channels_in * filters + filters
            channels_in = filters
            spatial = -(-spatial // stride)
            if pooled and spatial >= 4:
                spatial = (spatial - 3) // 2 + 1
        flattened = spatial * spatial * channels_in
        total += flattened * cfg["dense_units"] + cfg["dense_units"]
        total += cfg["dense_units"] ** 2 + cfg["dense_units"]
        total += cfg["dense_units"] * cfg["num_classes"] \
            + cfg["num_classes"]
        assert 5.5e7 < total < 7.0e7
