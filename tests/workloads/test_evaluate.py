"""Tests for the per-workload evaluate() task metrics."""

import numpy as np
import pytest

from repro import workloads


@pytest.fixture(scope="module")
def models():
    return {name: workloads.create(name, config="tiny", seed=0)
            for name in workloads.WORKLOAD_NAMES}


class TestMetricsWellFormed:
    def test_classifiers_report_accuracy_and_chance(self, models):
        for name in ("alexnet", "vgg", "residual", "memnet"):
            metrics = models[name].evaluate(batches=2)
            assert 0.0 <= metrics["accuracy"] <= 1.0, name
            assert 0.0 < metrics["chance"] < 1.0, name

    def test_autoenc_metrics(self, models):
        metrics = models["autoenc"].evaluate(batches=2)
        assert metrics["negative_elbo"] > 0.0
        assert 0.0 <= metrics["pixel_l1_error"] <= 1.0

    def test_speech_per(self, models):
        metrics = models["speech"].evaluate(batches=2)
        assert metrics["phoneme_error_rate"] >= 0.0

    def test_seq2seq_metrics(self, models):
        metrics = models["seq2seq"].evaluate(batches=2)
        assert 0.0 <= metrics["token_accuracy"] <= 1.0
        assert metrics["perplexity"] >= 1.0

    def test_deepq_episode_reward(self, models):
        metrics = models["deepq"].evaluate(batches=2)
        # Catch rewards are +-1 per episode.
        assert -1.0 <= metrics["mean_episode_reward"] <= 1.0


class TestMetricsImproveWithTraining:
    def test_memnet_accuracy_improves(self):
        model = workloads.create("memnet", config="tiny", seed=7)
        before = model.evaluate(batches=5)["accuracy"]
        model.run_training(steps=250)
        after = model.evaluate(batches=5)["accuracy"]
        assert after > before
        assert after > model.evaluate(batches=1)["chance"]

    def test_autoenc_reconstruction_improves(self):
        model = workloads.create("autoenc", config="tiny", seed=7)
        before = model.evaluate(batches=3)["pixel_l1_error"]
        model.run_training(steps=80)
        after = model.evaluate(batches=3)["pixel_l1_error"]
        assert after < before

    def test_seq2seq_perplexity_improves(self):
        model = workloads.create("seq2seq", config="tiny", seed=7)
        before = model.evaluate(batches=2)["perplexity"]
        model.run_training(steps=60)
        after = model.evaluate(batches=2)["perplexity"]
        assert after < before
