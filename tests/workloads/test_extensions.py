"""Tests for the living-suite extension workloads and their corpus."""

import numpy as np
import pytest

from repro.data.ptb import SyntheticPTB
from repro.workloads import WORKLOADS, extensions


class TestSyntheticPTB:
    def test_stream_tokens_in_range(self):
        data = SyntheticPTB(vocab_size=40, branching=5, seed=0)
        stream = data.sample_stream(200)
        assert stream.min() >= 0
        assert stream.max() < 40

    def test_markov_structure_present(self):
        """Likely successors must actually dominate the transitions."""
        data = SyntheticPTB(vocab_size=40, branching=5,
                            concentration=0.8, seed=0)
        stream = data.sample_stream(5000)
        hits = sum(1 for a, b in zip(stream, stream[1:])
                   if b in data._successors[a])
        # 0.8 mass on likely successors plus uniform leakage.
        assert hits / (len(stream) - 1) > 0.7

    def test_lm_batch_targets_are_shifted_inputs(self):
        data = SyntheticPTB(vocab_size=40, branching=5, seed=0)
        batch = data.sample_batch(4, sequence_length=10)
        assert batch["inputs"].shape == (4, 10)
        assert batch["targets"].shape == (4, 10)
        # The target at t is the input at t+1 within the same stream.
        np.testing.assert_array_equal(batch["inputs"][:, 1:],
                                      batch["targets"][:, :-1])

    def test_skipgram_batch_shapes(self):
        data = SyntheticPTB(vocab_size=40, branching=5, seed=0)
        batch = data.skipgram_batch(8, window=2, negatives=5)
        assert batch["centers"].shape == (8,)
        assert batch["contexts"].shape == (8,)
        assert batch["negatives"].shape == (8, 5)

    def test_transition_logprob_oracle(self):
        data = SyntheticPTB(vocab_size=40, branching=5,
                            concentration=0.7, seed=0)
        likely = int(data._successors[0][0])
        unlikely = next(w for w in range(40)
                        if w not in data._successors[0])
        assert data.transition_logprob(0, likely) > \
            data.transition_logprob(0, unlikely)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticPTB(vocab_size=10, branching=10)
        with pytest.raises(ValueError):
            SyntheticPTB(concentration=1.5)


class TestRegistry:
    def test_extensions_do_not_touch_the_core_eight(self):
        assert set(WORKLOADS) == {"seq2seq", "memnet", "speech", "autoenc",
                                  "residual", "vgg", "alexnet", "deepq"}
        assert not set(extensions.EXTENSION_WORKLOADS) & set(WORKLOADS)

    def test_create_by_name(self):
        model = extensions.create("lstm_lm", config="tiny")
        assert isinstance(model, extensions.LSTMLanguageModel)

    def test_unknown_extension_rejected(self):
        with pytest.raises(KeyError, match="unknown extension"):
            extensions.create("transformer")

    def test_standard_interface_compliance(self):
        for name in extensions.EXTENSION_WORKLOADS:
            model = extensions.create(name, config="tiny", seed=0)
            losses = model.run_training(steps=2)
            assert all(np.isfinite(l) for l in losses), name
            assert model.num_parameters() > 0
            profile = model.profile(mode="training", steps=1, warmup=0)
            assert profile.total_seconds > 0.0

    @pytest.mark.parametrize("name",
                             sorted(extensions.EXTENSION_WORKLOADS))
    def test_default_configs_train_stably(self, name):
        model = extensions.create(name, config="default", seed=0)
        losses = model.run_training(steps=8)
        assert all(np.isfinite(l) for l in losses), (name, losses)


class TestLSTMLanguageModel:
    def test_perplexity_beats_uniform_after_training(self):
        model = extensions.create("lstm_lm", config="tiny", seed=0)
        model.run_training(steps=300)
        metrics = model.evaluate(batches=4)
        assert metrics["perplexity"] < 0.75 * metrics["uniform_perplexity"]

    def test_inference_rows_are_distributions(self):
        model = extensions.create("lstm_lm", config="tiny", seed=0)
        out = model.run_inference(steps=1)
        np.testing.assert_allclose(out.sum(axis=-1),
                                   np.ones(out.shape[0]), rtol=1e-4)


class TestSyntheticCaptions:
    def test_batch_shapes(self):
        from repro.data.captions import SyntheticCaptions
        data = SyntheticCaptions(image_size=16, num_classes=4, seed=0)
        batch = data.sample_batch(5)
        assert batch["images"].shape == (5, 16, 16, 3)
        assert batch["caption_in"].shape == (5, data.CAPTION_LENGTH)
        assert batch["caption_out"].shape == (5, data.CAPTION_LENGTH)

    def test_teacher_forcing_alignment(self):
        from repro.data.captions import START_ID, SyntheticCaptions
        data = SyntheticCaptions(seed=0)
        batch = data.sample_batch(8)
        assert np.all(batch["caption_in"][:, 0] == START_ID)
        np.testing.assert_array_equal(batch["caption_in"][:, 1:],
                                      batch["caption_out"][:, :-1])

    def test_captions_are_class_determined(self):
        from repro.data.captions import SyntheticCaptions
        data = SyntheticCaptions(num_classes=4, seed=0)
        texts = {data.decode(data.caption_ids(cls)) for cls in range(4)}
        assert len(texts) == 4  # distinct caption per class
        assert all(t.startswith("a photo of") for t in texts)

    def test_decode_stops_at_end(self):
        from repro.data.captions import END_ID, SyntheticCaptions
        data = SyntheticCaptions(seed=0)
        tokens = list(data.caption_ids(0)) + [5, 5]
        assert "photo" in data.decode(tokens)
        assert data.decode(tokens) == data.decode(data.caption_ids(0))

    def test_class_count_validated(self):
        from repro.data.captions import SyntheticCaptions
        with pytest.raises(ValueError):
            SyntheticCaptions(num_classes=100)


class TestNeuralTalk:
    def test_hybrid_structure(self):
        model = extensions.create("neuraltalk", config="tiny", seed=0)
        types = {op.type_name for op in model.graph.operations}
        # Both suite styles in one workload: convolution and LSTM gates.
        assert "Conv2D" in types
        assert "Gather" in types
        assert "MatMul" in types

    def test_learns_to_caption(self):
        model = extensions.create("neuraltalk", config="tiny", seed=0)
        before = model.evaluate(batches=3)
        model.run_training(steps=200)
        after = model.evaluate(batches=3)
        assert after["token_accuracy"] > before["token_accuracy"]
        # Content words require recognizing the image: above chance.
        assert after["content_word_accuracy"] > \
            1.2 * after["content_chance"]

    def test_caption_image_returns_text(self):
        model = extensions.create("neuraltalk", config="tiny", seed=0)
        batch = model.dataset.sample_batch(1)
        text = model.caption_image(batch["images"][0])
        assert isinstance(text, str)


class TestSkipGram:
    def test_loss_decreases(self):
        model = extensions.create("skipgram", config="tiny", seed=0)
        losses = model.run_training(steps=300)
        assert np.mean(losses[-30:]) < 0.95 * np.mean(losses[:30])

    def test_ranking_beats_chance_after_training(self):
        model = extensions.create("skipgram", config="tiny", seed=0)
        model.run_training(steps=800)
        metrics = model.evaluate(batches=8)
        assert metrics["ranking_accuracy"] > 1.3 * metrics["chance"]

    def test_profile_is_embedding_shaped(self):
        """skipgram is Gather/BatchMatMul dominated — no conv, no big
        dense matmuls."""
        from repro.framework.device_model import cpu
        model = extensions.create("skipgram", config="default", seed=0)
        profile = model.profile(mode="training", steps=2, device=cpu(1))
        assert "Conv2D" not in profile.seconds_by_type
        types = set(profile.fractions())
        assert {"Gather", "BatchMatMul", "UnsortedSegmentSum"} <= types
