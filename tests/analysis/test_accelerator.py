"""Tests for the what-if accelerator analysis."""

import pytest

from repro import workloads
from repro.analysis.accelerator import (PRESETS, AcceleratorResult,
                                        accelerated_fraction,
                                        render_what_if, what_if)
from repro.framework.graph import OpClass


class TestAmdahlMath:
    def test_zero_coverage_means_no_speedup(self):
        result = AcceleratorResult("x", 0.0, {10.0: 1.0})
        assert result.ceiling() == 1.0

    def test_full_coverage_unbounded(self):
        result = AcceleratorResult("x", 1.0, {})
        assert result.ceiling() == float("inf")

    def test_half_coverage_ceiling_two(self):
        result = AcceleratorResult("x", 0.5, {})
        assert result.ceiling() == pytest.approx(2.0)


class TestWhatIf:
    @pytest.fixture(scope="class")
    def deepq(self):
        return workloads.create("deepq", config="tiny", seed=0)

    def test_fraction_in_unit_interval(self, deepq):
        fraction = accelerated_fraction(
            deepq, frozenset({OpClass.CONVOLUTION}), steps=1)
        assert 0.0 < fraction < 1.0

    def test_speedups_bounded_by_ceiling(self, deepq):
        result = what_if(deepq, frozenset({OpClass.CONVOLUTION}),
                         factors=(2.0, 10.0, 1000.0), steps=1)
        ceiling = result.ceiling()
        values = [result.speedups[f] for f in (2.0, 10.0, 1000.0)]
        assert values == sorted(values)
        assert all(v <= ceiling + 1e-9 for v in values)

    def test_wider_coverage_never_slower(self, deepq):
        conv_only = what_if(deepq, PRESETS["conv-engine"], steps=1)
        both = what_if(deepq, PRESETS["conv+gemm"], steps=1)
        assert both.accelerated_fraction >= conv_only.accelerated_fraction
        assert both.speedups[10.0] >= conv_only.speedups[10.0] - 1e-9

    def test_irrelevant_accelerator_is_a_noop(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        result = what_if(model, frozenset({OpClass.CONVOLUTION}), steps=1)
        assert result.accelerated_fraction == 0.0
        assert result.speedups[100.0] == pytest.approx(1.0)

    def test_render(self, deepq):
        text = render_what_if([what_if(deepq, PRESETS["conv-engine"],
                                       steps=1)], "conv-engine")
        assert "deepq" in text
        assert "ceiling" in text
