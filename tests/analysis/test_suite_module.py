"""Tests for the suite-wide convenience entry points."""

import pytest

from repro.analysis import suite
from repro.framework.device_model import cpu
from repro.workloads import WORKLOAD_NAMES


class TestGetModel:
    def test_caches_instances(self):
        a = suite.get_model("memnet", "tiny", 0)
        b = suite.get_model("memnet", "tiny", 0)
        assert a is b

    def test_distinct_keys_distinct_models(self):
        a = suite.get_model("memnet", "tiny", 0)
        b = suite.get_model("memnet", "tiny", 1)
        assert a is not b


class TestProfileSuite:
    def test_respects_names_argument(self):
        profiles = suite.profile_suite(config="tiny", steps=1,
                                       device=cpu(1),
                                       names=["memnet", "autoenc"])
        assert [p.workload for p in profiles] == ["memnet", "autoenc"]

    def test_defaults_to_all_eight(self):
        profiles = suite.profile_suite(config="tiny", steps=1,
                                       device=cpu(1))
        assert [p.workload for p in profiles] == WORKLOAD_NAMES

    def test_inference_mode(self):
        profiles = suite.profile_suite(config="tiny", steps=1,
                                       device=cpu(1), mode="inference",
                                       names=["autoenc"])
        # VAE inference includes the sampling op.
        assert "StandardRandomNormal" in profiles[0].seconds_by_type


class TestFigureHelpers:
    def test_breakdown_rows_match_workloads(self):
        matrix = suite.suite_breakdown(config="tiny", steps=1,
                                       device=cpu(1))
        assert matrix.workloads == WORKLOAD_NAMES

    def test_similarity_covers_all(self):
        dendrogram = suite.suite_similarity(config="tiny", steps=1,
                                            device=cpu(1))
        assert sorted(dendrogram.labels) == sorted(WORKLOAD_NAMES)
        assert len(dendrogram.merges) == 7

    def test_parallelism_defaults_to_fig6_trio(self):
        sweeps = suite.suite_parallelism(config="tiny", steps=1)
        assert set(sweeps) == {"deepq", "seq2seq", "memnet"}
