"""Tests for the terminal chart renderers."""

import pytest

from repro.analysis.ascii_charts import (bar_chart, grouped_bar_chart,
                                         step_curves)


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart([("full", 1.0), ("half", 0.5), ("none", 0.0)],
                         width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_labels_aligned(self):
        text = bar_chart([("a", 1.0), ("longer", 0.5)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_explicit_scale_clamps(self):
        text = bar_chart([("x", 5.0)], width=10, max_value=1.0)
        assert text.count("#") == 10

    def test_unit_suffix(self):
        assert "ms" in bar_chart([("x", 3.0)], unit="ms")

    def test_empty(self):
        assert "empty" in bar_chart([])


class TestGroupedBarChart:
    def test_groups_and_series(self):
        text = grouped_bar_chart({
            "vgg": {"train cpu": 1.0, "infer cpu": 0.3},
            "memnet": {"train cpu": 1.0, "infer cpu": 0.4},
        })
        assert "vgg:" in text
        assert "memnet:" in text
        assert text.count("train cpu") == 2


class TestStepCurves:
    def test_monotone_curve_spans_grid(self):
        curve = [0.5, 0.8, 0.95, 1.0]
        text = step_curves({"vgg": curve}, height=8, width=20)
        assert "a=vgg" in text
        # The symbol appears in the top row (curve reaches 1.0).
        assert "a" in text.splitlines()[0]

    def test_multiple_series_get_distinct_symbols(self):
        text = step_curves({"one": [1.0], "two": [0.5]}, height=6,
                           width=10)
        assert "a=one" in text and "b=two" in text

    def test_empty(self):
        assert "empty" in step_curves({})

    def test_axis_labels(self):
        text = step_curves({"x": [0.3, 1.0]}, height=5, width=10)
        assert text.splitlines()[0].startswith(" 1.0 +")
        assert any(line.startswith(" 0.0 +")
                   for line in text.splitlines())
