"""Tests for the data-parallel scaling analysis."""

import pytest

from repro import workloads
from repro.analysis.scaling import (ClusterModel, ScalingCurve,
                                    render_scaling, scaling_curve)


class TestClusterModel:
    def test_single_worker_free(self):
        assert ClusterModel().allreduce_seconds(1e9, 1) == 0.0

    def test_ring_volume_formula(self):
        cluster = ClusterModel(bandwidth=1e9, latency=0.0)
        # 2*(K-1)/K * bytes / bw
        assert cluster.allreduce_seconds(1e9, 2) == pytest.approx(1.0)
        assert cluster.allreduce_seconds(1e9, 4) == pytest.approx(1.5)

    def test_volume_saturates_with_workers(self):
        cluster = ClusterModel(latency=0.0)
        t8 = cluster.allreduce_seconds(1e8, 8)
        t16 = cluster.allreduce_seconds(1e8, 16)
        assert t16 < 1.1 * t8  # approaches 2*bytes/bw asymptote

    def test_latency_term_grows_linearly(self):
        cluster = ClusterModel(bandwidth=1e12, latency=1e-3)
        t2 = cluster.allreduce_seconds(1.0, 2)
        t4 = cluster.allreduce_seconds(1.0, 4)
        assert t4 > 2 * t2


class TestScalingCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        return scaling_curve(model, steps=1)

    def test_efficiency_starts_at_one(self, curve):
        assert curve.efficiency(1) == 1.0

    def test_efficiency_non_increasing(self, curve):
        values = [curve.efficiency(k) for k in curve.worker_counts]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_parameter_bytes_match_model(self, curve):
        model = workloads.create("memnet", config="tiny", seed=0)
        assert curve.parameter_bytes == model.num_parameters() * 4.0

    def test_faster_network_scales_better(self):
        model = workloads.create("memnet", config="tiny", seed=0)
        slow = scaling_curve(model, steps=1,
                             cluster=ClusterModel(bandwidth=1e8))
        fast = scaling_curve(model, steps=1,
                             cluster=ClusterModel(bandwidth=1e11))
        assert fast.efficiency(8) > slow.efficiency(8)

    def test_render(self, curve):
        text = render_scaling([curve])
        assert "memnet" in text
        assert "eff@" in text
