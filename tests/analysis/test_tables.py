"""Tests for Table I (survey) and Table II (workload) regeneration."""

import pytest

from repro.analysis.survey import (FATHOM_ENTRY, SURVEY, coverage_gaps,
                                   feature_counts, krizhevsky_share,
                                   render_table1)
from repro.analysis.workload_table import render_table2, table2_rows


class TestTable1:
    def test_sixteen_surveyed_papers(self):
        assert len(SURVEY) == 16

    def test_layer_depths_match_paper(self):
        # Table I row: 4 4 3 3 5 16 7 3 13 6 9 4 26 2 5 5, Fathom 34.
        assert [e.max_depth for e in SURVEY] == [4, 4, 3, 3, 5, 16, 7, 3,
                                                 13, 6, 9, 4, 26, 2, 5, 5]
        assert FATHOM_ENTRY.max_depth == 34

    def test_every_paper_does_inference(self):
        assert all(e.inference for e in SURVEY)

    def test_recurrent_appears_exactly_twice(self):
        """'recurrent neural networks appeared just twice: ... Han et al.
        [24] and ... Thomas et al. [44]' (Section II)."""
        recurrent = [e.ref for e in SURVEY if e.recurrent]
        assert recurrent == ["[24]", "[44]"]

    def test_no_unsupervised_or_reinforcement_in_survey(self):
        """'we were unable to find any recent hardware work in support of
        unsupervised or reinforcement deep learning problems'."""
        assert coverage_gaps() == ["Unsupervised", "Reinforcement"]

    def test_fathom_covers_the_gaps(self):
        assert FATHOM_ENTRY.unsupervised
        assert FATHOM_ENTRY.reinforcement
        assert FATHOM_ENTRY.recurrent

    def test_nearly_half_evaluate_krizhevsky_cnn(self):
        """'Nearly half of these papers evaluate the same neural network
        (the well-known CNN from Krizhevsky et al.)'."""
        share = krizhevsky_share()
        assert 0.35 <= share <= 0.55

    def test_feature_counts_match_table_marks(self):
        counts = feature_counts(include_fathom=True)
        assert counts["Inference"] == 17
        assert counts["Recurrent"] == 3
        assert counts["Unsupervised"] == 1
        assert counts["Reinforcement"] == 1
        assert counts["Fully-connected"] == 13
        assert counts["Convolutional"] == 11
        assert counts["Vision"] == 14
        assert counts["Speech"] == 3
        assert counts["Language Modeling"] == 5
        assert counts["Function Approximation"] == 3
        assert counts["Supervised"] == 8

    def test_render_contains_all_refs(self):
        text = render_table1()
        for entry in SURVEY:
            assert entry.ref in text
        assert "Fathom" in text


class TestTable2:
    def test_eight_rows_in_order(self):
        rows = table2_rows()
        assert [r.name for r in rows] == ["seq2seq", "memnet", "speech",
                                          "autoenc", "residual", "vgg",
                                          "alexnet", "deepq"]

    def test_years_match_paper(self):
        years = {r.name: r.year for r in table2_rows()}
        assert years == {"seq2seq": 2014, "memnet": 2015, "speech": 2014,
                         "autoenc": 2014, "residual": 2015, "vgg": 2014,
                         "alexnet": 2012, "deepq": 2013}

    def test_learning_task_diversity(self):
        """Table II spans supervised, unsupervised, and reinforcement."""
        tasks = {r.learning_task for r in table2_rows()}
        assert tasks == {"Supervised", "Unsupervised", "Reinforcement"}

    def test_max_depth_is_residual_34(self):
        assert max(r.layers for r in table2_rows()) == 34

    def test_render(self):
        text = render_table2()
        assert "Fathom Workloads" in text
        for row in table2_rows():
            assert row.name in text
