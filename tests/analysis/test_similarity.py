"""Tests for cosine-distance similarity and centroid-linkage clustering."""

import numpy as np
import pytest

from repro.analysis.similarity import (Dendrogram, agglomerate,
                                       cosine_distance, distance_matrix)


class TestCosineDistance:
    def test_identical_vectors_distance_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors_distance_one(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert cosine_distance(a, b) == pytest.approx(1.0)

    def test_opposite_vectors_distance_two(self):
        a = np.array([1.0, 0.0])
        assert cosine_distance(a, -a) == pytest.approx(2.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, 0.5])
        b = np.array([0.3, 1.1, 2.0])
        assert cosine_distance(a, b) == pytest.approx(
            cosine_distance(5.0 * a, 0.1 * b))

    def test_zero_vector_maximally_distant(self):
        assert cosine_distance(np.zeros(3), np.ones(3)) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(8), rng.random(8)
        assert cosine_distance(a, b) == pytest.approx(cosine_distance(b, a))


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        vectors = rng.random((5, 6))
        matrix = distance_matrix(vectors)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)


class TestAgglomerate:
    def test_merge_count(self):
        rng = np.random.default_rng(2)
        vectors = rng.random((6, 4))
        dendrogram = agglomerate(vectors, [f"w{i}" for i in range(6)])
        assert len(dendrogram.merges) == 5

    def test_closest_pair_merges_first(self):
        vectors = np.array([
            [1.0, 0.0, 0.0],
            [0.99, 0.01, 0.0],   # nearly identical to item 0
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ])
        dendrogram = agglomerate(vectors, ["a", "b", "c", "d"])
        first = dendrogram.merges[0]
        assert {first.left, first.right} == {0, 1}

    def test_two_obvious_clusters(self):
        vectors = np.array([
            [1.0, 0.0], [0.9, 0.1],     # cluster 1
            [0.0, 1.0], [0.1, 0.9],     # cluster 2
        ])
        dendrogram = agglomerate(vectors, list("abcd"))
        # The final merge joins the two clusters at a large distance.
        final = dendrogram.merges[-1]
        assert final.distance > dendrogram.merges[0].distance
        members_left = frozenset(dendrogram.cluster_members(final.left))
        members_right = frozenset(dendrogram.cluster_members(final.right))
        assert {members_left, members_right} == {frozenset({0, 1}),
                                                 frozenset({2, 3})}

    def test_leaf_order_is_permutation(self):
        rng = np.random.default_rng(3)
        vectors = rng.random((7, 5))
        dendrogram = agglomerate(vectors, [f"w{i}" for i in range(7)])
        assert sorted(dendrogram.leaf_order()) == list(range(7))

    def test_cophenetic_distance(self):
        vectors = np.array([[1.0, 0.0], [0.95, 0.05], [0.0, 1.0]])
        dendrogram = agglomerate(vectors, list("abc"))
        near = dendrogram.cophenetic_distance(0, 1)
        far = dendrogram.cophenetic_distance(0, 2)
        assert near < far

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            agglomerate(np.ones((3, 2)), ["only", "two"])

    def test_single_item(self):
        dendrogram = agglomerate(np.ones((1, 3)), ["solo"])
        assert dendrogram.merges == []
        assert dendrogram.leaf_order() == [0]

    def test_centroid_is_weighted(self):
        """After merging two items, the cluster centroid must weight by
        member count when merging again (centroidal linkage)."""
        # Three near-identical vectors and one outlier: the centroid of
        # the triple should stay near the triple.
        vectors = np.array([
            [1.0, 0.0], [0.98, 0.02], [0.96, 0.04], [0.0, 1.0]])
        dendrogram = agglomerate(vectors, list("abcd"))
        # Outlier must be in the last merge.
        last = dendrogram.merges[-1]
        assert 3 in (dendrogram.cluster_members(last.left)
                     + dendrogram.cluster_members(last.right))
