"""Tests for the full-report generator."""

import pytest

from repro.analysis.report import full_report


@pytest.fixture(scope="module")
def report_text():
    # Default config, one traced step, skip the Fig. 6 sweeps to keep CI
    # time bounded; all other sections are exercised.
    return full_report(config="default", steps=1,
                       include_parallelism=False)


class TestFullReport:
    SECTIONS = [
        "Table I", "Table II", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
        "Section V-A", "phase decomposition", "Roofline",
        "operation census", "What-if accelerators",
        "Data-parallel scaling",
    ]

    @pytest.mark.parametrize("section", SECTIONS)
    def test_section_present(self, report_text, section):
        assert section in report_text

    def test_every_workload_mentioned(self, report_text):
        from repro.workloads import WORKLOAD_NAMES
        for name in WORKLOAD_NAMES:
            assert name in report_text

    def test_charts_rendered(self, report_text):
        # Dominance curves legend and Fig. 5 bars.
        assert "a=" in report_text
        assert "|#" in report_text

    def test_markdown_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_parallelism_section_toggle(self):
        with_sweeps = full_report(config="default", steps=1,
                                  include_parallelism=True)
        assert "Fig. 6" in with_sweeps
