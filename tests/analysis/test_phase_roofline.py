"""Tests for phase decomposition, roofline classification, instance
hotspots, and schedule visualization."""

import json

import numpy as np
import pytest

from repro import workloads
from repro.analysis.phases import PHASES, render_phase_table, split_phases
from repro.analysis.roofline import (BOUND_KINDS, classify_op,
                                     render_roofline, roofline)
from repro.framework.cost_model import WorkEstimate, matmul_work
from repro.framework.device_model import cpu, gpu
from repro.framework.placement import (default_devices, place_all,
                                       schedule_to_chrome_trace,
                                       simulate_schedule)
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer


@pytest.fixture(scope="module")
def memnet():
    return workloads.create("memnet", config="tiny", seed=0)


class TestPhaseSplit:
    def test_all_phases_present(self, memnet):
        split = split_phases(memnet, steps=1)
        assert set(split.seconds) == set(PHASES)
        assert split.seconds["forward"] > 0
        assert split.seconds["backward"] > 0
        assert split.seconds["optimizer"] > 0

    def test_fractions_sum_to_one(self, memnet):
        split = split_phases(memnet, steps=1)
        assert sum(split.fraction(p) for p in PHASES) == pytest.approx(1.0)

    def test_inference_trace_has_no_backward(self):
        """The phase attribution is structural: inference ops form the
        forward set exactly."""
        model = workloads.create("autoenc", config="tiny", seed=0)
        inference_ops = {id(op) for op in
                         model.graph.subgraph([model.inference_output])}
        training_ops = {id(op) for op in
                        model.graph.subgraph([model.loss,
                                              model.train_step])}
        assert inference_ops < training_ops

    def test_render(self, memnet):
        text = render_phase_table([split_phases(memnet, steps=1)])
        assert "bwd/fwd" in text
        assert "memnet" in text


class TestClassifyOp:
    def test_dense_matmul_is_compute_bound_on_cpu(self):
        assert classify_op(matmul_work(512, 512, 512), cpu(1)) == "compute"

    def test_pure_copy_is_memory_bound(self):
        work = WorkEstimate(flops=0.0, bytes_moved=1e8, trip_count=1e6)
        assert classify_op(work, cpu(1)) == "memory"

    def test_tiny_op_is_overhead_bound(self):
        work = WorkEstimate(flops=10.0, bytes_moved=40.0, trip_count=4.0)
        assert classify_op(work, cpu(1)) == "overhead"
        assert classify_op(work, gpu()) == "overhead"

    def test_gpu_raises_the_overhead_floor(self):
        # An op comfortably compute-bound on one CPU core can be
        # launch-bound on the GPU.
        work = matmul_work(64, 64, 64)
        assert classify_op(work, cpu(1)) == "compute"
        assert classify_op(work, gpu()) == "overhead"


class TestRoofline:
    def test_fractions_sum_to_one(self, memnet):
        point = roofline(memnet, steps=1)
        assert sum(point.fraction(k) for k in BOUND_KINDS) \
            == pytest.approx(1.0)

    def test_render(self, memnet):
        text = render_roofline([roofline(memnet, steps=1)])
        assert "compute" in text and "overhead" in text


class TestTopInstances:
    def test_ranks_individual_ops(self, memnet):
        tracer = Tracer()
        memnet.run_training(2, tracer=tracer)
        instances = OperationProfile.top_instances(tracer, n=5,
                                                   device=cpu(1))
        assert len(instances) == 5
        seconds = [s for _, _, s in instances]
        assert seconds == sorted(seconds, reverse=True)
        names = [name for name, _, _ in instances]
        assert len(set(names)) == 5  # distinct instances, not types

    def test_measured_mode(self, memnet):
        tracer = Tracer()
        memnet.run_training(1, tracer=tracer)
        instances = OperationProfile.top_instances(tracer, n=3)
        assert all(s >= 0.0 for _, _, s in instances)


class TestScheduleTrace:
    def test_valid_chrome_json_with_device_lanes(self, memnet):
        ops_list = memnet.graph.subgraph([memnet.loss])
        result = simulate_schedule(ops_list, place_all("cpu"),
                                   default_devices())
        blob = json.loads(schedule_to_chrome_trace(result, "memnet"))
        events = blob["traceEvents"]
        lanes = [e for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        assert any(e["args"]["name"] == "cpu" for e in lanes)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        # Events sit inside the makespan.
        for event in complete:
            assert event["ts"] + event["dur"] <= \
                result.makespan * 1e6 + 1e-3
