"""Tests for the figure-regeneration analyses on tiny workloads.

These check the machinery; the full paper-shape assertions (which need
default-scale configs) live in the benchmarks.
"""

import numpy as np
import pytest

from repro import workloads
from repro.analysis.breakdown import breakdown_matrix
from repro.analysis.dominance import dominance_curves, render_dominance_table
from repro.analysis.parallelism import sweep_threads
from repro.analysis.train_vs_infer import measure_workload, render_figure5
from repro.framework.device_model import cpu


@pytest.fixture(scope="module")
def tiny_profiles():
    # Default configs: the tiny configs are so small that every op is
    # dispatch-overhead-bound, which hides the workloads' characters.
    # memnet/autoenc/deepq defaults all run a step in tens of ms.
    names = ["memnet", "autoenc", "deepq"]
    models = [workloads.create(name, config="default", seed=0)
              for name in names]
    return [m.profile(mode="training", steps=2, device=cpu(1), warmup=1)
            for m in models]


class TestDominance:
    def test_curves_per_workload(self, tiny_profiles):
        curves = dominance_curves(tiny_profiles)
        assert [c.workload for c in curves] == ["memnet", "autoenc",
                                                "deepq"]
        for curve in curves:
            assert curve.curve[-1] == pytest.approx(1.0)
            assert curve.types_for_coverage(0.9) <= curve.num_types

    def test_render_contains_rows(self, tiny_profiles):
        text = render_dominance_table(dominance_curves(tiny_profiles))
        for name in ("memnet", "autoenc", "deepq"):
            assert name in text


class TestBreakdown:
    def test_matrix_shape(self, tiny_profiles):
        matrix = breakdown_matrix(tiny_profiles)
        assert matrix.values.shape == (3, 7)
        assert matrix.groups == list("ABCDEFG")

    def test_rows_bounded(self, tiny_profiles):
        matrix = breakdown_matrix(tiny_profiles, min_type_fraction=0.01)
        sums = matrix.values.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)
        assert np.all(sums > 0.7)

    def test_dominant_groups_sensible(self, tiny_profiles):
        matrix = breakdown_matrix(tiny_profiles)
        assert matrix.dominant_group("deepq") == "B"       # convolution
        assert matrix.dominant_group("autoenc") == "A"     # matmul

    def test_render(self, tiny_profiles):
        text = breakdown_matrix(tiny_profiles).render()
        assert "Convolution" in text
        assert "deepq" in text


class TestTrainVsInfer:
    def test_point_invariants(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        point = measure_workload(model, steps=2)
        # Training strictly slower than inference, on both devices.
        assert point.training_cpu > point.inference_cpu
        assert point.training_gpu > point.inference_gpu
        # GPU faster than CPU for this matmul-heavy workload.
        assert point.training_gpu < point.training_cpu
        norm = point.normalized()
        assert norm["training_cpu"] == 1.0
        assert all(v <= 1.0 + 1e-9 for v in norm.values())

    def test_render(self):
        model = workloads.create("autoenc", config="tiny", seed=0)
        text = render_figure5([measure_workload(model, steps=1)])
        assert "autoenc" in text
        assert "1.000" in text


class TestParallelismSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        model = workloads.create("deepq", config="default", seed=0)
        return sweep_threads(model, steps=2, thread_counts=(1, 2, 4, 8))

    def test_totals_never_increase_with_threads(self, sweep):
        totals = [sweep.total(t) for t in (1, 2, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(totals, totals[1:]))

    def test_op_types_sorted_by_single_thread_weight(self, sweep):
        first_column = sweep.seconds[:, 0]
        assert list(first_column) == sorted(first_column, reverse=True)

    def test_series_lookup(self, sweep):
        series = sweep.series(sweep.op_types[0])
        assert len(series) == 4

    def test_optimizer_share_grows_with_threads(self, sweep):
        """The paper's Fig. 6a headline: ApplyRMSProp grows in relative
        importance as the convolutions parallelize away."""
        assert sweep.fraction("ApplyRMSProp", 8) > \
            sweep.fraction("ApplyRMSProp", 1)

    def test_speedup_above_one(self, sweep):
        assert sweep.speedup(8) > 1.0

    def test_render(self, sweep):
        text = sweep.render(top_n=5)
        assert "deepq" in text
        assert "TOTAL" in text
