"""Tests for the per-replica circuit breaker."""

import pytest

from repro.serving.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerConfig,
                                   CircuitBreaker)


def make(threshold=2, recovery=0.01, **kwargs):
    return CircuitBreaker(BreakerConfig(failure_threshold=threshold,
                                        recovery_time=recovery, **kwargs))


class TestTripping:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make(threshold=3)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.available(0.0)

    def test_success_resets_the_streak(self):
        breaker = make(threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.state == CLOSED

    def test_hard_trip_opens_immediately(self):
        breaker = make()
        breaker.trip(0.0, "crash")
        assert breaker.state == OPEN
        assert breaker.opens == 1


class TestRecovery:
    def test_half_open_after_backoff_then_close_on_success(self):
        breaker = make(threshold=1, recovery=0.01)
        breaker.record_failure(0.0)
        reopen = breaker.reopen_at()
        assert reopen is not None and reopen > 0.0
        assert not breaker.available(reopen - 1e-4)
        assert breaker.available(reopen + 1e-4)
        assert breaker.state == HALF_OPEN and breaker.is_probe()
        breaker.record_success(reopen + 1e-4)
        assert breaker.state == CLOSED
        assert breaker.closes == 1
        assert breaker.consecutive_trips == 0

    def test_failed_probe_reopens_with_longer_backoff(self):
        breaker = make(threshold=1, recovery=0.01, jitter=0.0)
        breaker.record_failure(0.0)
        first = breaker.open_until
        breaker.available(first + 1e-4)  # -> half-open
        assert breaker.record_failure(first + 1e-4)
        assert breaker.state == OPEN
        second = breaker.open_until - (first + 1e-4)
        assert second == pytest.approx(2 * first, rel=1e-6)

    def test_open_duration_capped(self):
        breaker = make(threshold=1, recovery=0.01, jitter=0.0,
                       max_open_time=0.03)
        now = 0.0
        for _ in range(6):
            breaker.record_failure(now)
            assert breaker.open_until - now <= 0.03 + 1e-9
            now = breaker.open_until + 1e-4
            breaker.available(now)  # half-open; next failure re-trips


class TestHalfOpenEdgeCases:
    def test_hard_trip_during_half_open_escalates_backoff(self):
        """A crash landing *during* the half-open probe must re-open
        with the next backoff tier, exactly like a failed probe — the
        trip streak survives the half-open excursion."""
        breaker = make(threshold=1, recovery=0.01, jitter=0.0)
        breaker.record_failure(0.0)
        first = breaker.open_until
        breaker.available(first + 1e-4)
        assert breaker.state == HALF_OPEN
        breaker.trip(first + 1e-4, "crash during probe")
        assert breaker.state == OPEN
        assert breaker.opens == 2
        second = breaker.open_until - (first + 1e-4)
        assert second == pytest.approx(2 * first, rel=1e-6)

    def test_hard_trip_while_already_open_is_a_no_op(self):
        """A redundant trip must not restart (or re-jitter) the
        current backoff window."""
        breaker = make(threshold=1, recovery=0.01, jitter=0.0)
        breaker.record_failure(0.0)
        until = breaker.open_until
        breaker.trip(until / 2, "redundant")
        assert breaker.open_until == until
        assert breaker.opens == 1

    def test_success_then_failure_in_half_open_window(self):
        """The probe closing the breaker resets the trip streak, so a
        later trip starts back at the base backoff tier."""
        breaker = make(threshold=1, recovery=0.01, jitter=0.0)
        breaker.record_failure(0.0)
        first = breaker.open_until
        probe_at = first + 1e-4
        breaker.available(probe_at)
        breaker.record_success(probe_at)
        assert breaker.state == CLOSED
        assert breaker.consecutive_trips == 0
        breaker.record_failure(probe_at + 1e-3)
        fresh = breaker.open_until - (probe_at + 1e-3)
        assert fresh == pytest.approx(first, rel=1e-6)


class TestPerReplicaJitter:
    def test_replicas_sharing_one_config_derive_distinct_seeds(self):
        """Two replicas built from one ServingConfig share the breaker
        *config* but not the jitter *stream* — otherwise both breakers
        reopen at the identical jittered instant and probe in lockstep.
        Regression-pinned: the derivation is
        ``breaker.seed + 31 * (config.seed + 1) + replica_id``."""
        from repro import workloads
        from repro.serving import InferenceServer, ServingConfig

        model = workloads.create("autoenc", config="tiny", seed=0)
        server = InferenceServer(model, ServingConfig(replicas=2, seed=3))
        seeds = [r.breaker.config.seed for r in server.replicas]
        assert seeds == [124, 125]
        first = [r.breaker._backoff.delay(k) for k in range(3)
                 for r in (server.replicas[0],)]
        second = [r.breaker._backoff.delay(k) for k in range(3)
                  for r in (server.replicas[1],)]
        assert first != second
        # Pinned jittered schedules: any drift here changes every
        # deterministic chaos baseline downstream.
        assert first == pytest.approx(
            [0.021488560984268462, 0.04176611700425826,
             0.07324263437546961])
        assert second == pytest.approx(
            [0.021842168119174072, 0.03742163883340611,
             0.07554011711841345])


class TestDeterminism:
    def test_same_seed_same_backoff_schedule(self):
        def schedule(seed):
            breaker = make(threshold=1, seed=seed)
            opens = []
            now = 0.0
            for _ in range(4):
                breaker.record_failure(now)
                opens.append(breaker.open_until - now)
                now = breaker.open_until + 1e-4
                breaker.available(now)
            return opens

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
