"""Tests for the per-replica circuit breaker."""

import pytest

from repro.serving.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerConfig,
                                   CircuitBreaker)


def make(threshold=2, recovery=0.01, **kwargs):
    return CircuitBreaker(BreakerConfig(failure_threshold=threshold,
                                        recovery_time=recovery, **kwargs))


class TestTripping:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make(threshold=3)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.available(0.0)

    def test_success_resets_the_streak(self):
        breaker = make(threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.state == CLOSED

    def test_hard_trip_opens_immediately(self):
        breaker = make()
        breaker.trip(0.0, "crash")
        assert breaker.state == OPEN
        assert breaker.opens == 1


class TestRecovery:
    def test_half_open_after_backoff_then_close_on_success(self):
        breaker = make(threshold=1, recovery=0.01)
        breaker.record_failure(0.0)
        reopen = breaker.reopen_at()
        assert reopen is not None and reopen > 0.0
        assert not breaker.available(reopen - 1e-4)
        assert breaker.available(reopen + 1e-4)
        assert breaker.state == HALF_OPEN and breaker.is_probe()
        breaker.record_success(reopen + 1e-4)
        assert breaker.state == CLOSED
        assert breaker.closes == 1
        assert breaker.consecutive_trips == 0

    def test_failed_probe_reopens_with_longer_backoff(self):
        breaker = make(threshold=1, recovery=0.01, jitter=0.0)
        breaker.record_failure(0.0)
        first = breaker.open_until
        breaker.available(first + 1e-4)  # -> half-open
        assert breaker.record_failure(first + 1e-4)
        assert breaker.state == OPEN
        second = breaker.open_until - (first + 1e-4)
        assert second == pytest.approx(2 * first, rel=1e-6)

    def test_open_duration_capped(self):
        breaker = make(threshold=1, recovery=0.01, jitter=0.0,
                       max_open_time=0.03)
        now = 0.0
        for _ in range(6):
            breaker.record_failure(now)
            assert breaker.open_until - now <= 0.03 + 1e-9
            now = breaker.open_until + 1e-4
            breaker.available(now)  # half-open; next failure re-trips


class TestDeterminism:
    def test_same_seed_same_backoff_schedule(self):
        def schedule(seed):
            breaker = make(threshold=1, seed=seed)
            opens = []
            now = 0.0
            for _ in range(4):
                breaker.record_failure(now)
                opens.append(breaker.open_until - now)
                now = breaker.open_until + 1e-4
                breaker.available(now)
            return opens

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
