"""Tests for the feed codec and the deadline-aware dynamic batcher."""

import numpy as np
import pytest

from repro import workloads
from repro.framework.errors import FeedError
from repro.serving.batcher import DynamicBatcher, FeedCodec
from repro.serving.events import PendingRequest


@pytest.fixture(scope="module")
def autoenc():
    return workloads.create("autoenc", config="tiny", seed=0)


@pytest.fixture(scope="module")
def seq2seq():
    return workloads.create("seq2seq", config="tiny", seed=0)


class TestFeedCodec:
    def test_split_assemble_roundtrip(self, autoenc):
        codec = FeedCodec(autoenc)
        feed = autoenc.sample_feed(training=False)
        singles = codec.split_feed(feed)
        assert len(singles) == autoenc.batch_size
        rebuilt, live = codec.assemble(singles)
        assert live == autoenc.batch_size
        for tensor, value in feed.items():
            np.testing.assert_array_equal(rebuilt[tensor],
                                          np.asarray(value))

    def test_partial_batch_pads_with_last_request(self, autoenc):
        codec = FeedCodec(autoenc)
        singles = codec.split_feed(autoenc.sample_feed(training=False))
        rebuilt, live = codec.assemble(singles[:2])
        assert live == 2
        for tensor in codec.placeholders:
            value = rebuilt[tensor]
            assert value.shape == tensor.shape
            # padding rows repeat the last live request
            np.testing.assert_array_equal(value[2], value[1])

    def test_folded_seq2seq_roundtrip(self, seq2seq):
        """seq2seq's time-flattened (T*B, V) layout survives the codec."""
        codec = FeedCodec(seq2seq)
        feed = seq2seq.sample_feed(training=False)
        singles = codec.split_feed(feed)
        rebuilt, _ = codec.assemble(singles)
        # only the inference plan's placeholders survive the round trip
        # (sample_feed also carries training-only feeds like targets)
        for tensor in codec.placeholders:
            np.testing.assert_array_equal(rebuilt[tensor],
                                          np.asarray(feed[tensor]))

    def test_extract_slices_batched_output(self, autoenc):
        codec = FeedCodec(autoenc)
        batch = autoenc.batch_size
        output = np.arange(batch * 3, dtype=np.float32).reshape(batch, 3)
        for index in range(batch):
            np.testing.assert_array_equal(codec.extract(output, index),
                                          output[index])

    def test_assemble_rejects_oversize_and_empty(self, autoenc):
        codec = FeedCodec(autoenc)
        singles = codec.split_feed(autoenc.sample_feed(training=False))
        with pytest.raises(FeedError, match="empty"):
            codec.assemble([])
        with pytest.raises(FeedError, match="exceed"):
            codec.assemble(singles + singles)


def _pending(request_id, deadline_ms=100.0, arrival=0.0):
    return PendingRequest(request_id=request_id, feed={},
                          deadline_ms=deadline_ms, arrival=arrival)


@pytest.fixture
def batcher(autoenc):
    codec = FeedCodec(autoenc)
    return DynamicBatcher(codec, max_batch=4, max_wait=0.002,
                          queue_limit=4)


class TestAdmission:
    def test_admits_until_queue_limit(self, batcher):
        for i in range(4):
            assert batcher.admit(_pending(i), now=0.0,
                                 est_batch_seconds=0.0) is None
        assert batcher.admit(_pending(9), now=0.0,
                             est_batch_seconds=0.0) == "queue_full"
        assert len(batcher) == 4

    def test_sheds_unmeetable_deadline(self, batcher):
        # 10 ms deadline but one batch is estimated at 50 ms
        reason = batcher.admit(_pending(0, deadline_ms=10.0), now=0.0,
                               est_batch_seconds=0.05)
        assert reason == "deadline_unmeetable"
        # a relaxed deadline is admitted under the same estimate
        assert batcher.admit(_pending(1, deadline_ms=500.0), now=0.0,
                             est_batch_seconds=0.05) is None

    def test_zero_deadline_never_deadline_shed(self, batcher):
        assert batcher.admit(_pending(0, deadline_ms=0.0), now=0.0,
                             est_batch_seconds=99.0) is None


class TestDispatch:
    def test_ready_on_full_batch(self, batcher):
        for i in range(4):
            assert not batcher.ready(now=0.0)
            batcher.admit(_pending(i), now=0.0, est_batch_seconds=0.0)
        assert batcher.ready(now=0.0)

    def test_ready_after_max_wait(self, batcher):
        batcher.admit(_pending(0, arrival=0.0), now=0.0,
                      est_batch_seconds=0.0)
        assert not batcher.ready(now=0.001)
        assert batcher.ready(now=0.0021)

    def test_pop_batch_is_fifo(self, batcher):
        for i in range(3):
            batcher.admit(_pending(i), now=0.0, est_batch_seconds=0.0)
        assert [p.request_id for p in batcher.pop_batch()] == [0, 1, 2]
        assert len(batcher) == 0

    def test_expire_removes_past_deadline(self, batcher):
        batcher.admit(_pending(0, deadline_ms=10.0), now=0.0,
                      est_batch_seconds=0.0)
        batcher.admit(_pending(1, deadline_ms=1000.0), now=0.0,
                      est_batch_seconds=0.0)
        expired = batcher.expire(now=0.02)
        assert [p.request_id for p in expired] == [0]
        assert [p.request_id for p in batcher.pop_batch()] == [1]

    def test_requeue_jumps_the_line(self, batcher):
        for i in range(3):
            batcher.admit(_pending(i), now=0.0, est_batch_seconds=0.0)
        hedged = _pending(99)
        batcher.requeue(hedged)
        assert [p.request_id for p in batcher.pop_batch()] == [99, 0, 1, 2]
