"""Tests for the serving engine: dispatch, failover, degradation, SLOs."""

import numpy as np
import pytest

from repro import workloads
from repro.framework.errors import (DeadlineExceededError, RequestRejected,
                                    ServingError)
from repro.framework.faults import ServingFaultPlan, ServingFaultSpec
from repro.profiling.tracer import Tracer
from repro.serving import (InferenceServer, LoadConfig, LoadGenerator,
                           ServingConfig, VirtualClock)


@pytest.fixture(scope="module")
def memnet():
    return workloads.create("memnet", config="tiny", seed=0)


def make_server(model, tracer=None, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("default_deadline_ms", 1000.0)
    return InferenceServer(model, ServingConfig(**kwargs), tracer=tracer,
                           clock=VirtualClock())


class TestPlainServing:
    def test_replies_match_direct_inference(self, memnet):
        """A fault-free served batch is bit-identical to Session.run."""
        server = make_server(memnet)
        feed = memnet.sample_feed(training=False)
        reference = memnet.session.run(memnet.inference_output,
                                       feed_dict=feed)
        ids = server.submit_batch(feed)
        server.drain()
        for index, request_id in enumerate(ids):
            reply = server.result(request_id)
            assert reply.outcome == "ok"
            np.testing.assert_array_equal(reply.value,
                                          reference[index])

    def test_partial_batch_serves_with_padding(self, memnet):
        server = make_server(memnet)
        feed = memnet.sample_feed(training=False)
        single = server.codec.split_feed(feed)[0]
        request_id = server.submit(single)
        server.drain()
        reply = server.result(request_id)
        assert reply.outcome == "ok"
        reference = memnet.session.run(memnet.inference_output,
                                       feed_dict=feed)
        np.testing.assert_array_equal(reply.value, reference[0])

    def test_every_submission_reaches_a_terminal_reply(self, memnet):
        server = make_server(memnet)
        feed = memnet.sample_feed(training=False)
        ids = []
        for _ in range(3):
            ids.extend(server.submit_batch(feed))
        server.drain()
        assert sorted(server.replies) == sorted(ids)
        counters = server.counters
        assert (counters["ok"] + counters["shed"] + counters["deadline"]
                + counters["error"]) == len(ids)


class TestAdmissionControl:
    def test_queue_full_sheds_immediately(self, memnet):
        server = make_server(memnet, replicas=1, queue_limit=3)
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        ids = [server.submit(single) for _ in range(5)]
        shed = [i for i in ids if server.result(i) is not None]
        assert len(shed) == 2
        for request_id in shed:
            reply = server.result(request_id)
            assert reply.outcome == "shed"
            assert reply.error == "queue_full"
            with pytest.raises(RequestRejected):
                reply.raise_for_outcome()
        server.drain()
        assert server.counters["ok"] == 3

    def test_unmeetable_deadline_sheds_at_submit(self, memnet):
        server = make_server(memnet, replicas=1, est_batch_ms=50.0)
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        request_id = server.submit(single, deadline_ms=5.0)
        reply = server.result(request_id)
        assert reply is not None and reply.outcome == "shed"
        assert reply.error == "deadline_unmeetable"

    def test_expired_request_answered_as_deadline_miss(self, memnet):
        server = make_server(memnet, replicas=1)
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        request_id = server.submit(single, deadline_ms=10.0)
        server.clock.sleep(0.05)  # deadline passes while queued
        server.drain()
        reply = server.result(request_id)
        assert reply.outcome == "deadline"
        assert reply.value is None
        with pytest.raises(DeadlineExceededError):
            reply.raise_for_outcome()


class TestCrashFailover:
    def test_crash_hedges_to_healthy_replica(self, memnet):
        tracer = Tracer()
        server = make_server(memnet, tracer=tracer)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("replica_crash", replica=0, batch=0)]))
        ids = server.submit_batch(memnet.sample_feed(training=False))
        server.drain()
        assert all(server.result(i).outcome == "ok" for i in ids)
        assert server.replicas[0].restarts == 1
        assert server.replicas[0].breaker.opens == 1
        kinds = {e.kind for e in tracer.serving_events()}
        assert {"replica_restart", "hedge", "breaker_open",
                "reply"} <= kinds

    def test_single_replica_crash_recovers_via_probe(self, memnet):
        """With nowhere to fail over, the server waits out the breaker."""
        server = make_server(memnet, replicas=1,
                             default_deadline_ms=0.0)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("replica_crash", replica=0, batch=0)]))
        ids = server.submit_batch(memnet.sample_feed(training=False))
        server.drain()
        assert all(server.result(i).outcome == "ok" for i in ids)
        assert server.counters["probes"] >= 1

    def test_hedge_budget_bounds_retries(self, memnet):
        """A replica that always crashes cannot hang the server."""
        server = make_server(memnet, replicas=1, max_hedges=2,
                             default_deadline_ms=0.0)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("replica_crash", max_triggers=None)]))
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        request_id = server.submit(single)
        server.drain()
        reply = server.result(request_id)
        assert reply.outcome == "error"
        assert reply.hedges == 3  # initial attempt + 2 hedges
        with pytest.raises(ServingError):
            reply.raise_for_outcome()


class TestDegradeDontDie:
    def test_poison_demotes_then_reescalates(self, memnet):
        tracer = Tracer()
        server = make_server(memnet, tracer=tracer, replicas=1,
                             max_hedges=3, default_deadline_ms=0.0)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("poisoned_batch", max_triggers=2)]))
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        first = server.submit(single)
        server.drain()
        assert server.result(first).outcome == "ok"
        # the two poisoned attempts cost the replica one tier
        drops = tracer.degradation_events("tier_drop")
        assert [e.tier for e in drops] == ["structural"]
        # clean traffic climbs the ladder back to full
        for _ in range(4):
            server.submit(single)
            server.drain()
        assert server.replicas[0].tier == "full"
        assert tracer.degradation_events("reescalate")
        # the trace interleaves serving and healing events
        assert tracer.serving_events("breaker_open")
        assert tracer.serving_events("breaker_close")

    def test_poisoned_output_never_reaches_a_reply(self, memnet):
        server = make_server(memnet, max_hedges=1,
                             default_deadline_ms=0.0)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("poisoned_batch", max_triggers=None,
                              payload="inf")]))
        ids = server.submit_batch(memnet.sample_feed(training=False))
        server.drain()
        for request_id in ids:
            reply = server.result(request_id)
            assert reply.outcome == "error"
            assert reply.value is None


class TestSlowReplica:
    def test_straggler_trips_breaker_without_demotion(self, memnet):
        server = make_server(memnet, replicas=1, slow_batch_ms=10.0,
                             default_deadline_ms=0.0)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("slow_replica", replica=0,
                              latency_seconds=0.05, max_triggers=4)]))
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        for _ in range(6):
            server.submit(single)
            server.drain()
        slow = server.replicas[0]
        assert slow.breaker.opens >= 1
        assert slow.tier == "full"  # slowness is not a plan defect

    def test_injected_stall_advances_virtual_clock(self, memnet):
        server = make_server(memnet, replicas=1)
        server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("slow_replica", latency_seconds=0.2,
                              max_triggers=1)]))
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        request_id = server.submit(single, deadline_ms=50.0)
        server.drain()
        reply = server.result(request_id)
        assert reply.outcome == "deadline"
        assert reply.latency_ms >= 200.0


class TestDeterminism:
    def _chaos_run(self, model):
        tracer = Tracer()
        server = make_server(model, replicas=2, slow_batch_ms=20.0,
                             seed=3)
        server.install_faults(ServingFaultPlan([
            ServingFaultSpec("replica_crash", replica=0, batch=1),
            ServingFaultSpec("slow_replica", replica=1,
                             latency_seconds=0.03, max_triggers=2),
        ], seed=11), )
        generator = LoadGenerator(server, LoadConfig(
            requests=16, qps=400.0, seed=5))
        report = generator.run()
        signatures = tuple(e.signature() for e in server.events)
        outcomes = tuple(server.replies[i].outcome
                         for i in sorted(server.replies))
        return report, signatures, outcomes

    def test_identical_chaos_runs_are_identical(self, memnet):
        first = self._chaos_run(memnet)
        second = self._chaos_run(memnet)
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert first[0].to_json() == second[0].to_json()


class TestReport:
    def test_report_accounts_for_every_request(self, memnet):
        server = make_server(memnet, replicas=1, queue_limit=4)
        single = server.codec.split_feed(
            memnet.sample_feed(training=False))[0]
        for _ in range(8):
            server.submit(single)
        server.drain()
        report = server.report()
        assert report.requests == 8
        assert report.ok + report.shed + report.deadline \
            + report.error == 8
        assert report.shed > 0 and report.shed_rate > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.replica_tiers == ["full"]
        rendered = report.render()
        assert "attainment" in rendered and "memnet" in rendered

    def test_model_serve_entry_point(self, memnet):
        server = memnet.serve(clock=VirtualClock())
        assert isinstance(server, InferenceServer)
        ids = server.submit_batch(memnet.sample_feed(training=False))
        server.drain()
        assert all(server.result(i).ok for i in ids)
