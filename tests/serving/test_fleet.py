"""Unit tests for the fleet layer: routing, balancer, health,
autoscale, rollout, and the ServingFleet invariants."""

import math

import pytest

from repro import workloads
from repro.framework.errors import ServingError
from repro.framework.faults import FleetFaultPlan, FleetFaultSpec
from repro.serving import (AutoscaleConfig, Autoscaler, Deployment,
                           FleetConfig, HealthConfig, HealthProber,
                           LoadBalancer, LoadConfig, LoadGenerator,
                           RolloutConfig, RolloutManager, ServingConfig,
                           ServingFleet, TenantSpec, VirtualClock)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serving.fleet import ACTIVE, DRAINING, EJECTED, RETIRED
from repro.serving.routing import (breaker_weight, routing_score,
                                   server_score)


@pytest.fixture(scope="module")
def model():
    return workloads.create("autoenc", config="tiny", seed=0)


def make_fleet(model, *, zones=("z0", "z1"), servers_per_zone=1,
               tenants=(TenantSpec("default"),), autoscale=None,
               clock=None, deadline_ms=200.0, queue_limit=32,
               **kwargs):
    config = FleetConfig(
        zones=zones, servers_per_zone=servers_per_zone,
        server=ServingConfig(replicas=1, queue_limit=queue_limit,
                             default_deadline_ms=deadline_ms,
                             est_batch_ms=5.0, seed=2),
        tenants=tenants,
        autoscale=autoscale or AutoscaleConfig(enabled=False,
                                               min_servers=1),
        seed=7, **kwargs)
    return ServingFleet(model, config, clock=clock or VirtualClock())


def single_feed(model, fleet):
    return fleet.codec.split_feed(model.sample_feed(training=False))[0]


class TestRoutingScores:
    def test_breaker_weights(self):
        assert breaker_weight(CLOSED) == 1.0
        assert breaker_weight(HALF_OPEN) == 2.0
        assert math.isinf(breaker_weight(OPEN))

    def test_routing_score_prefers_fast_closed_replicas(self):
        fast = routing_score(0.001, CLOSED)
        slow = routing_score(0.010, CLOSED)
        probing = routing_score(0.001, HALF_OPEN)
        assert fast < slow < math.inf
        assert fast < probing
        assert math.isinf(routing_score(0.001, OPEN))

    def test_unknown_latency_falls_back_to_prior(self):
        assert routing_score(None, CLOSED, prior_seconds=0.005) \
            == pytest.approx(0.005)

    def test_server_score_is_best_replica(self):
        class FakeBreaker:
            def __init__(self, state):
                self.state = state

        class FakeReplica:
            def __init__(self, state, ewma):
                self.breaker = FakeBreaker(state)
                self.ewma_latency = ewma

        replicas = [FakeReplica(OPEN, 0.001),
                    FakeReplica(CLOSED, 0.004)]
        assert server_score(replicas) == pytest.approx(0.004)
        assert math.isinf(server_score([FakeReplica(OPEN, 0.001)]))


class TestLoadBalancer:
    def test_tenant_quota_sheds_beyond_outstanding_bound(self):
        balancer = LoadBalancer((TenantSpec("a", max_outstanding=2),
                                 TenantSpec("b", max_outstanding=4)))
        assert balancer.admit_tenant("a") is None
        assert balancer.admit_tenant("a") is None
        assert balancer.admit_tenant("a") == "tenant_quota"
        assert balancer.admit_tenant("b") is None
        balancer.release_tenant("a")
        assert balancer.admit_tenant("a") is None

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LoadBalancer((TenantSpec("a"), TenantSpec("a")))

    def test_tenant_deadline_class(self):
        balancer = LoadBalancer((TenantSpec("gold", deadline_ms=30.0),
                                 TenantSpec("std")))
        assert balancer.deadline_for("gold", 100.0) == 30.0
        assert balancer.deadline_for("std", 100.0) == 100.0


class TestHealthProber:
    class FakeServer:
        def __init__(self, server_id, ejected=False):
            self.server_id = server_id
            self.ejected = ejected
            self.replicas = []

    def test_eject_after_consecutive_failures_then_reinstate(self):
        prober = HealthProber(HealthConfig(interval_seconds=0.01,
                                           eject_threshold=2,
                                           reinstate_threshold=2))
        server = self.FakeServer(0)
        down = lambda s: False
        up = lambda s: True
        assert prober.tick(0.0, [server], down) == []   # arms cadence
        actions = prober.tick(0.011, [server], down)
        assert [a[0] for a in actions] == ["probe_fail"]
        actions = prober.tick(0.021, [server], down)
        assert [a[0] for a in actions] == ["probe_fail", "eject"]
        server.ejected = True
        # capacity check: no replicas -> probe fails even when reachable
        actions = prober.tick(0.031, [server], up)
        assert [a[0] for a in actions] == ["probe_fail"]

    def test_reinstate_needs_consecutive_successes(self):
        class Replica:
            class breaker:
                state = CLOSED
                open_until = 0.0
        prober = HealthProber(HealthConfig(interval_seconds=0.01,
                                           eject_threshold=2,
                                           reinstate_threshold=2))
        server = self.FakeServer(0, ejected=True)
        server.replicas = [Replica()]
        up = lambda s: True
        prober.tick(0.0, [server], up)
        assert prober.tick(0.011, [server], up) == []
        actions = prober.tick(0.021, [server], up)
        assert [a[0] for a in actions] == ["reinstate"]


class TestAutoscaler:
    class FakeServer:
        def __init__(self, server_id, zone, queue_depth=0):
            self.server_id = server_id
            self.zone = zone
            self.queue_depth = queue_depth

    def test_scales_up_into_emptiest_zone_on_queue_pressure(self):
        scaler = Autoscaler(AutoscaleConfig(high_queue_per_server=2.0,
                                            max_servers=4))
        servers = [self.FakeServer(0, "z0", 5),
                   self.FakeServer(1, "z1", 5)]
        action = scaler.tick(1.0, servers + [self.FakeServer(2, "z0", 5)])
        assert action == ("up", "z1", "queue 5.0/server")

    def test_scale_down_drains_youngest_in_fullest_zone(self):
        scaler = Autoscaler(AutoscaleConfig(low_queue_per_server=1.0,
                                            min_servers=2))
        servers = [self.FakeServer(0, "z0"), self.FakeServer(1, "z1"),
                   self.FakeServer(2, "z0")]
        action = scaler.tick(1.0, servers)
        assert action[0] == "down"
        assert action[1].server_id == 2

    def test_cooldown_gates_consecutive_actions(self):
        scaler = Autoscaler(AutoscaleConfig(high_queue_per_server=1.0,
                                            cooldown_seconds=0.5,
                                            max_servers=8))
        busy = [self.FakeServer(0, "z0", 9)]
        assert scaler.tick(1.0, busy) is not None
        assert scaler.tick(1.2, busy) is None
        assert scaler.tick(1.6, busy) is not None

    def test_p99_breach_triggers_scale_up(self):
        scaler = Autoscaler(AutoscaleConfig(high_queue_per_server=100.0,
                                            p99_deadline_fraction=0.9))
        for _ in range(16):
            scaler.observe(95.0, 100.0)
        action = scaler.tick(1.0, [self.FakeServer(0, "z0", 0),
                                   self.FakeServer(1, "z1", 0)])
        assert action is not None and action[0] == "up"
        assert action[2] == "p99 pressing deadline"


class TestRolloutManager:
    def feed(self, manager, version, outcome, count, latency=5.0):
        for _ in range(count):
            manager.on_reply(version, outcome, latency)

    def test_clean_rollout_stages_every_zone_then_done(self):
        manager = RolloutManager(RolloutConfig(canary_window=4))
        manager.start(Deployment("v2"), ["z0", "z1"], "v1")
        assert manager.tick(0.0) == ("stage", "z0")
        assert manager.tick(0.0) is None
        self.feed(manager, "v2", "ok", 4)
        self.feed(manager, "v1", "ok", 4)
        action = manager.tick(0.01)
        assert action[0] == "canary_pass" and action[1] == "z0"
        assert manager.tick(0.01) == ("stage", "z1")
        self.feed(manager, "v2", "ok", 4)
        action = manager.tick(0.02)
        assert action[0] == "done"
        assert not manager.active and manager.completed == 1

    def test_unhealthy_canary_rolls_back(self):
        manager = RolloutManager(RolloutConfig(canary_window=4))
        manager.start(Deployment("v2", defect="poison"), ["z0", "z1"],
                      "v1")
        manager.tick(0.0)
        self.feed(manager, "v2", "error", 4)
        self.feed(manager, "v1", "ok", 8)
        action = manager.tick(0.01)
        assert action[0] == "rollback"
        assert "unhealthy rate" in action[1]
        assert manager.rollbacks == 1 and not manager.active
        assert manager.previous_version == "v1"

    def test_starved_canary_rolls_back_on_bake_timeout(self):
        manager = RolloutManager(RolloutConfig(canary_window=8,
                                               bake_seconds=0.05))
        manager.start(Deployment("v2"), ["z0"], "v1")
        manager.tick(0.0)
        self.feed(manager, "v1", "ok", 20)
        assert manager.tick(0.1) is None          # < 4x bake
        action = manager.tick(0.21)
        assert action[0] == "rollback" and "starved" in action[1]

    def test_slow_canary_convicted_on_p99(self):
        manager = RolloutManager(RolloutConfig(canary_window=4,
                                               max_p99_ratio=2.0,
                                               p99_slack_ms=1.0))
        manager.start(Deployment("v2", defect="slow"), ["z0"], "v1")
        manager.tick(0.0)
        self.feed(manager, "v1", "ok", 8, latency=5.0)
        self.feed(manager, "v2", "ok", 4, latency=50.0)
        action = manager.tick(0.01)
        assert action[0] == "rollback" and "p99" in action[1]

    def test_overlapping_rollouts_rejected(self):
        manager = RolloutManager()
        manager.start(Deployment("v2"), ["z0"], "v1")
        with pytest.raises(RuntimeError, match="in progress"):
            manager.start(Deployment("v3"), ["z0"], "v1")


class TestServingFleet:
    def test_every_request_reaches_one_terminal_reply(self, model):
        fleet = make_fleet(model)
        report = LoadGenerator(fleet, LoadConfig(requests=24, qps=300,
                                                 seed=3)).run()
        assert sorted(fleet.replies) == list(range(24))
        assert fleet.outstanding() == 0
        assert (report.ok + report.shed + report.deadline
                + report.error) == 24

    def test_double_finish_raises(self, model):
        fleet = make_fleet(model)
        fleet.submit(single_feed(model, fleet))
        fleet.drain()
        record = type("R", (), {"fleet_id": 0, "tenant": "default",
                                "admitted": False,
                                "deadline_ms": 0.0})()
        with pytest.raises(ServingError, match="finished twice"):
            fleet._finish(record, "ok")

    def test_tenant_quota_isolates_a_flooding_tenant(self, model):
        fleet = make_fleet(
            model,
            tenants=(TenantSpec("flood", max_outstanding=2),
                     TenantSpec("calm", max_outstanding=64)))
        feed = single_feed(model, fleet)
        flood_ids = [fleet.submit(feed, tenant="flood")
                     for _ in range(6)]
        calm_ids = [fleet.submit(feed, tenant="calm")
                    for _ in range(6)]
        fleet.drain()
        flood = [fleet.result(i).outcome for i in flood_ids]
        calm = [fleet.result(i).outcome for i in calm_ids]
        assert flood.count("shed") == 4
        assert all(fleet.result(i).error == "tenant_quota"
                   for i in flood_ids
                   if fleet.result(i).outcome == "shed")
        assert calm == ["ok"] * 6

    def test_tenant_deadline_class_applies(self, model):
        fleet = make_fleet(
            model,
            tenants=(TenantSpec("gold", deadline_ms=123.0),))
        fid = fleet.submit(single_feed(model, fleet), tenant="gold")
        fleet.drain()
        assert fleet.result(fid).deadline_ms == 123.0

    def test_unknown_tenant_rejected(self, model):
        fleet = make_fleet(model)
        with pytest.raises(ValueError, match="unknown tenant"):
            fleet.submit(single_feed(model, fleet), tenant="nope")

    def test_spillover_when_best_server_queue_full(self, model):
        fleet = make_fleet(model, queue_limit=2)
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(4)]
        # 2 per server queue bound, 2 servers -> all 4 queued, 0 shed
        assert fleet.counters["accepted"] == 4
        assert {fleet._pending[i].server_id for i in ids} == {0, 1}
        fleet.drain()

    def test_fleet_sheds_when_every_queue_is_full(self, model):
        fleet = make_fleet(model, queue_limit=1)
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(4)]
        outcomes = [fleet.result(i) for i in ids]
        assert sum(1 for r in outcomes
                   if r is not None and r.outcome == "shed") == 2
        fleet.drain()
        assert len(fleet.replies) == 4

    def test_scale_down_drains_and_retires_without_dropping(self, model):
        fleet = make_fleet(
            model,
            autoscale=AutoscaleConfig(min_servers=1, max_servers=2,
                                      low_queue_per_server=5.0,
                                      cooldown_seconds=0.0))
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(6)]
        fleet.drain()
        assert all(fleet.result(i).outcome == "ok" for i in ids)
        states = [fs.state for fs in fleet._ordered()]
        assert states.count(ACTIVE) == 1
        assert states.count(RETIRED) == 1
        drain_events = [e.kind for e in fleet.events
                        if e.kind in ("scale_down", "drain_start",
                                      "drain_done")]
        assert drain_events == ["scale_down", "drain_start",
                                "drain_done"]

    def test_zone_outage_reroutes_queued_work(self, model):
        fleet = make_fleet(model, zones=("z0", "z1"))
        plan = FleetFaultPlan([FleetFaultSpec(
            "zone_outage", zone="z0", at_seconds=0.0,
            duration_seconds=0.05)], seed=1)
        fleet.install_faults(plan)
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(6)]
        fleet.drain()
        assert all(fleet.result(i).outcome == "ok" for i in ids)
        fleet.clock.sleep(0.06)   # past the heal
        fleet.pump()
        kinds = [e.kind for e in fleet.events]
        assert "zone_down" in kinds and "zone_up" in kinds
        assert kinds.count("reroute") >= 1
        # all replies came from the surviving zone's server
        served = {e.server for e in fleet.events
                  if e.kind == "reply" and e.server is not None}
        survivors = {fs.server_id for fs in fleet._in_zone("z1")}
        assert served <= survivors

    def test_blackhole_is_silent_until_probes_eject(self, model):
        fleet = make_fleet(model, zones=("z0", "z1"))
        plan = FleetFaultPlan([FleetFaultSpec(
            "lb_blackhole", servers=(0,), at_seconds=0.0,
            duration_seconds=10.0)], seed=1)
        fleet.install_faults(plan)
        fleet.pump()   # arm the blackhole
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(4)]
        swallowed = [i for i in ids if fleet._pending[i].hole == 0]
        assert swallowed, "routing favourite should be blackholed"
        fleet.drain()
        assert all(fleet.result(i) is not None for i in ids)
        kinds = [e.kind for e in fleet.events]
        assert "probe_fail" in kinds and "eject" in kinds
        assert fleet._servers[0].state == EJECTED

    def test_correlated_crash_rebuilds_and_reroutes(self, model):
        fleet = make_fleet(model, zones=("z0", "z1", "z2"))
        plan = FleetFaultPlan([FleetFaultSpec(
            "correlated_crash", count=2, at_seconds=0.0)], seed=1)
        fleet.install_faults(plan)
        feed = single_feed(model, fleet)
        ids = [fleet.submit(feed) for _ in range(6)]
        fleet.drain()
        assert all(fleet.result(i).outcome == "ok" for i in ids)
        assert fleet.counters["server_crashes"] == 2
        assert all(fs.state == ACTIVE for fs in fleet._ordered())

    def test_reroute_limit_bounds_salvage(self, model):
        fleet = make_fleet(model, reroute_limit=1)
        record = fleet._pending[fleet.submit(
            single_feed(model, fleet))]
        record.reroutes = 1
        fleet._routes.pop((record.server_id, record.server_rid))
        fleet._servers[record.server_id].server.evict_pending()
        fleet._reroute([record.fleet_id], fleet.clock.now(), set(),
                       "test")
        reply = fleet.result(record.fleet_id)
        assert reply.outcome == "error"
        assert "re-route limit" in reply.error

    def test_fleet_chaos_run_is_deterministic(self, model):
        def run():
            fleet = make_fleet(model, zones=("z0", "z1", "z2"))
            fleet.install_faults(FleetFaultPlan([
                FleetFaultSpec("zone_outage", zone="z1",
                               at_seconds=0.02, duration_seconds=0.05),
                FleetFaultSpec("lb_blackhole", at_seconds=0.01,
                               duration_seconds=0.1),
            ], seed=3))
            LoadGenerator(fleet, LoadConfig(requests=30, qps=400,
                                            seed=5)).run()
            return fleet

        first, second = run(), run()
        assert [e.signature() for e in first.events] \
            == [e.signature() for e in second.events]
        assert first._injector.signature() \
            == second._injector.signature()

    def test_report_round_trips_to_json(self, model, tmp_path):
        fleet = make_fleet(model)
        LoadGenerator(fleet, LoadConfig(requests=8, qps=200,
                                        seed=1)).run()
        report = fleet.report()
        path = tmp_path / "fleet.json"
        report.save(path)
        import json
        blob = json.loads(path.read_text())
        assert blob["requests"] == 8
        assert blob["zones"] == ["z0", "z1"]
        assert 0.0 <= blob["attainment"] <= 1.0
        assert "tenants" in blob
        assert "servers_peak" in blob
        assert report.render().startswith("fleet report: autoenc")
