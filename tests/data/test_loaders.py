"""Tests for the IDX loader and the real-or-synthetic MNIST selector."""

import gzip
import struct

import numpy as np
import pytest

from repro.data.loaders import (FileMNIST, IdxFormatError, load_idx,
                                mnist_dataset, write_idx)
from repro.data.mnist import SyntheticMNIST


class TestIdxRoundtrip:
    @pytest.mark.parametrize("dtype,shape", [
        (np.uint8, (5, 4, 4)),
        (np.uint8, (10,)),
        (np.float32, (3, 2)),
        (np.int32, (6,)),
    ])
    def test_write_then_read(self, tmp_path, rng, dtype, shape):
        if np.issubdtype(dtype, np.floating):
            array = rng.standard_normal(shape).astype(dtype)
        else:
            array = rng.integers(0, 100, size=shape).astype(dtype)
        path = tmp_path / "data.idx"
        write_idx(path, array)
        loaded = load_idx(path)
        np.testing.assert_array_equal(loaded, array)
        assert loaded.shape == shape

    def test_gzipped_idx(self, tmp_path, rng):
        array = rng.integers(0, 255, size=(4, 3, 3)).astype(np.uint8)
        raw_path = tmp_path / "raw.idx"
        write_idx(raw_path, array)
        gz_path = tmp_path / "data.idx.gz"
        gz_path.write_bytes(gzip.compress(raw_path.read_bytes()))
        np.testing.assert_array_equal(load_idx(gz_path), array)


class TestIdxErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x01\x00\x08\x01" + struct.pack(">I", 0))
        with pytest.raises(IdxFormatError, match="magic"):
            load_idx(path)

    def test_unknown_dtype_code(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x77\x01" + struct.pack(">I", 0))
        with pytest.raises(IdxFormatError, match="dtype"):
            load_idx(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "short.idx"
        path.write_bytes(b"\x00\x00\x08\x01" + struct.pack(">I", 100)
                         + b"\x00" * 10)
        with pytest.raises(IdxFormatError, match="truncated"):
            load_idx(path)

    def test_unencodable_dtype(self, tmp_path):
        with pytest.raises(IdxFormatError, match="encode"):
            write_idx(tmp_path / "x.idx", np.zeros(3, dtype=np.complex64))


def _write_fake_mnist(directory, count=20, size=8):
    rng = np.random.default_rng(0)
    images = rng.integers(0, 255, size=(count, size, size)).astype(np.uint8)
    labels = rng.integers(0, 10, size=count).astype(np.uint8)
    write_idx(directory / "train-images-idx3-ubyte", images)
    write_idx(directory / "train-labels-idx1-ubyte", labels)
    return images, labels


class TestFileMNIST:
    def test_batches_from_files(self, tmp_path):
        images, labels = _write_fake_mnist(tmp_path)
        data = FileMNIST(tmp_path / "train-images-idx3-ubyte",
                         tmp_path / "train-labels-idx1-ubyte", seed=0)
        assert len(data) == 20
        batch = data.sample_batch(6)
        assert batch["images"].shape == (6, 64)
        assert batch["images"].max() <= 1.0
        assert batch["labels"].dtype == np.int32

    def test_count_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        write_idx(tmp_path / "imgs.idx",
                  rng.integers(0, 255, (5, 4, 4)).astype(np.uint8))
        write_idx(tmp_path / "labels.idx",
                  rng.integers(0, 9, 7).astype(np.uint8))
        with pytest.raises(IdxFormatError, match="labels"):
            FileMNIST(tmp_path / "imgs.idx", tmp_path / "labels.idx")


class TestSelector:
    def test_prefers_real_files(self, tmp_path):
        _write_fake_mnist(tmp_path)
        data = mnist_dataset(tmp_path, seed=0)
        assert isinstance(data, FileMNIST)

    def test_falls_back_to_synthetic(self, tmp_path):
        data = mnist_dataset(tmp_path / "nowhere", seed=0)
        assert isinstance(data, SyntheticMNIST)

    def test_default_is_synthetic(self):
        assert isinstance(mnist_dataset(), SyntheticMNIST)
