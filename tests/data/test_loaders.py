"""Tests for the IDX loader and the real-or-synthetic MNIST selector."""

import gzip
import struct

import numpy as np
import pytest

from repro.data.loaders import (FileMNIST, IdxFormatError, load_idx,
                                mnist_dataset, write_idx)
from repro.data.mnist import SyntheticMNIST


class TestIdxRoundtrip:
    @pytest.mark.parametrize("dtype,shape", [
        (np.uint8, (5, 4, 4)),
        (np.uint8, (10,)),
        (np.float32, (3, 2)),
        (np.int32, (6,)),
    ])
    def test_write_then_read(self, tmp_path, rng, dtype, shape):
        if np.issubdtype(dtype, np.floating):
            array = rng.standard_normal(shape).astype(dtype)
        else:
            array = rng.integers(0, 100, size=shape).astype(dtype)
        path = tmp_path / "data.idx"
        write_idx(path, array)
        loaded = load_idx(path)
        np.testing.assert_array_equal(loaded, array)
        assert loaded.shape == shape

    def test_gzipped_idx(self, tmp_path, rng):
        array = rng.integers(0, 255, size=(4, 3, 3)).astype(np.uint8)
        raw_path = tmp_path / "raw.idx"
        write_idx(raw_path, array)
        gz_path = tmp_path / "data.idx.gz"
        gz_path.write_bytes(gzip.compress(raw_path.read_bytes()))
        np.testing.assert_array_equal(load_idx(gz_path), array)


class TestIdxErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x01\x00\x08\x01" + struct.pack(">I", 0))
        with pytest.raises(IdxFormatError, match="magic"):
            load_idx(path)

    def test_unknown_dtype_code(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x77\x01" + struct.pack(">I", 0))
        with pytest.raises(IdxFormatError, match="dtype"):
            load_idx(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "short.idx"
        path.write_bytes(b"\x00\x00\x08\x01" + struct.pack(">I", 100)
                         + b"\x00" * 10)
        with pytest.raises(IdxFormatError, match="truncated"):
            load_idx(path)

    def test_unencodable_dtype(self, tmp_path):
        with pytest.raises(IdxFormatError, match="encode"):
            write_idx(tmp_path / "x.idx", np.zeros(3, dtype=np.complex64))


def _write_fake_mnist(directory, count=20, size=8):
    rng = np.random.default_rng(0)
    images = rng.integers(0, 255, size=(count, size, size)).astype(np.uint8)
    labels = rng.integers(0, 10, size=count).astype(np.uint8)
    write_idx(directory / "train-images-idx3-ubyte", images)
    write_idx(directory / "train-labels-idx1-ubyte", labels)
    return images, labels


class TestFileMNIST:
    def test_batches_from_files(self, tmp_path):
        images, labels = _write_fake_mnist(tmp_path)
        data = FileMNIST(tmp_path / "train-images-idx3-ubyte",
                         tmp_path / "train-labels-idx1-ubyte", seed=0)
        assert len(data) == 20
        batch = data.sample_batch(6)
        assert batch["images"].shape == (6, 64)
        assert batch["images"].max() <= 1.0
        assert batch["labels"].dtype == np.int32

    def test_count_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        write_idx(tmp_path / "imgs.idx",
                  rng.integers(0, 255, (5, 4, 4)).astype(np.uint8))
        write_idx(tmp_path / "labels.idx",
                  rng.integers(0, 9, 7).astype(np.uint8))
        with pytest.raises(IdxFormatError, match="labels"):
            FileMNIST(tmp_path / "imgs.idx", tmp_path / "labels.idx")


class TestSelector:
    def test_prefers_real_files(self, tmp_path):
        _write_fake_mnist(tmp_path)
        data = mnist_dataset(tmp_path, seed=0)
        assert isinstance(data, FileMNIST)

    def test_falls_back_to_synthetic(self, tmp_path):
        data = mnist_dataset(tmp_path / "nowhere", seed=0)
        assert isinstance(data, SyntheticMNIST)

    def test_default_is_synthetic(self):
        assert isinstance(mnist_dataset(), SyntheticMNIST)


class TestResilientBatchIterator:
    SPEC = {"images": ((4,), np.float32), "labels": ((), np.int32)}

    def _good(self, rng, value=None):
        return {"images": (value if value is not None
                           else rng.standard_normal(4)).astype(np.float32),
                "labels": np.int32(3)}

    def test_valid_stream_batches_cleanly(self, rng):
        from repro.data.loaders import ResilientBatchIterator
        samples = [self._good(rng) for _ in range(6)]
        iterator = ResilientBatchIterator(samples, self.SPEC, batch_size=2)
        batches = list(iterator)
        assert len(batches) == 3
        assert batches[0]["images"].shape == (2, 4)
        assert batches[0]["labels"].dtype == np.int32
        assert iterator.stats.samples == 6
        assert iterator.stats.batches == 3
        assert iterator.stats.skipped == 0

    def test_malformed_samples_skipped_and_counted(self, rng, caplog):
        from repro.data.loaders import ResilientBatchIterator
        samples = [
            self._good(rng),
            {"images": np.zeros(5, dtype=np.float32),       # wrong shape
             "labels": np.int32(0)},
            {"labels": np.int32(1)},                        # missing feed
            {"images": np.zeros(4, dtype=np.float64),       # lossy cast
             "labels": np.int32(2)},
            self._good(rng),
            self._good(rng),
            self._good(rng),
        ]
        iterator = ResilientBatchIterator(samples, self.SPEC, batch_size=2)
        import logging
        with caplog.at_level(logging.WARNING, logger="repro.data"):
            batches = list(iterator)
        assert len(batches) == 2
        assert iterator.stats.skipped == 3
        assert iterator.stats.samples == 4
        reasons = " ".join(iterator.stats.skip_reasons)
        assert "shape" in reasons and "missing" in reasons \
            and "cast" in reasons
        assert sum("skipping malformed sample" in r.message
                   for r in caplog.records) == 3

    def test_safe_casts_are_applied(self, rng):
        from repro.data.loaders import ResilientBatchIterator
        # int32 -> float64-safe? here: int8 labels upcast to int32
        samples = [{"images": np.zeros(4, dtype=np.float32),
                    "labels": np.int8(1)} for _ in range(2)]
        batches = list(ResilientBatchIterator(samples, self.SPEC,
                                              batch_size=2))
        assert batches[0]["labels"].dtype == np.int32

    def test_consecutive_skip_limit_raises(self, rng):
        from repro.data.loaders import (ResilientBatchIterator,
                                        SampleSkipLimitError)
        bad = {"labels": np.int32(0)}
        samples = [self._good(rng)] + [bad] * 4
        iterator = ResilientBatchIterator(samples, self.SPEC, batch_size=2,
                                          max_consecutive_skips=3)
        with pytest.raises(SampleSkipLimitError) as excinfo:
            list(iterator)
        assert excinfo.value.skipped == 4
        assert "4 consecutive" in str(excinfo.value)

    def test_good_sample_resets_the_skip_streak(self, rng):
        from repro.data.loaders import ResilientBatchIterator
        bad = {"labels": np.int32(0)}
        samples = []
        for _ in range(4):              # bad pairs interleaved with good
            samples.extend([bad, bad, self._good(rng)])
        iterator = ResilientBatchIterator(samples, self.SPEC, batch_size=2,
                                          max_consecutive_skips=2)
        batches = list(iterator)        # never 3 bad in a row: no raise
        assert len(batches) == 2
        assert iterator.stats.skipped == 8

    def test_remainder_kept_when_requested(self, rng):
        from repro.data.loaders import ResilientBatchIterator
        samples = [self._good(rng) for _ in range(5)]
        batches = list(ResilientBatchIterator(samples, self.SPEC,
                                              batch_size=2,
                                              drop_remainder=False))
        assert [b["images"].shape[0] for b in batches] == [2, 2, 1]
