"""Property-based tests (hypothesis) on the synthetic data generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.babi import SyntheticBabi
from repro.data.ptb import SyntheticPTB
from repro.data.timit import SyntheticTIMIT
from repro.data.wmt import FIRST_WORD_ID, PAD_ID, SyntheticWMT

SETTINGS = dict(max_examples=25, deadline=None)


class TestWMTProperties:
    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000), vocab=st.integers(10, 200),
           length=st.integers(2, 16))
    def test_lexicon_always_bijective(self, seed, vocab, length):
        data = SyntheticWMT(vocab_size=vocab, max_length=length, seed=seed)
        assert len(set(data._lexicon.tolist())) == vocab
        # Control tokens map to themselves.
        for token in range(FIRST_WORD_ID):
            assert data._lexicon[token] == token

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000))
    def test_translation_reversible(self, seed):
        data = SyntheticWMT(vocab_size=60, max_length=8, seed=seed)
        inverse = np.argsort(data._lexicon)
        words = data.rng.integers(FIRST_WORD_ID, 60, size=6).astype(np.int32)
        translated = data.translate(words)
        recovered = inverse[translated][::-1]
        np.testing.assert_array_equal(recovered, words)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 500), batch=st.integers(1, 8))
    def test_weights_exactly_cover_content(self, seed, batch):
        data = SyntheticWMT(vocab_size=50, max_length=6, seed=seed)
        sample = data.sample_batch(batch)
        for row in range(batch):
            content = int((sample["source"][row] != PAD_ID).sum())
            # weights cover the translated tokens plus the EOS.
            assert sample["weights"][row].sum() == content + 1


class TestBabiProperties:
    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000), memory=st.integers(3, 12),
           actors=st.integers(1, 6), locations=st.integers(2, 8))
    def test_every_story_is_answerable(self, seed, memory, actors,
                                       locations):
        data = SyntheticBabi(memory_size=memory, num_actors=actors,
                             num_locations=locations, seed=seed)
        story, query, answer = data.sample_story()
        actor = data.vocab[query[1]]
        last = None
        for line in story:
            if line[0] != 0 and data.vocab[line[0]] == actor:
                last = data.vocab[line[3]]
        assert last is not None
        assert data.locations[answer] == last

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000))
    def test_tokens_always_within_vocab(self, seed):
        data = SyntheticBabi(seed=seed)
        batch = data.sample_batch(8)
        assert batch["stories"].max() < data.vocab_size
        assert batch["queries"].max() < data.vocab_size


class TestTIMITProperties:
    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000), frames=st.integers(10, 80),
           min_dur=st.integers(1, 4))
    def test_labels_never_exceed_frames(self, seed, frames, min_dur):
        data = SyntheticTIMIT(num_frames=frames,
                              min_phoneme_frames=min_dur,
                              max_phoneme_frames=min_dur + 3, seed=seed)
        batch = data.sample_batch(4)
        assert np.all(batch["label_lengths"] <= frames)
        assert np.all(batch["label_lengths"] >= 1)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000))
    def test_durations_bound_label_count(self, seed):
        data = SyntheticTIMIT(num_frames=40, min_phoneme_frames=5,
                              max_phoneme_frames=8, seed=seed)
        _, labels = data.sample_utterance()
        # At most ceil(40/5) phonemes fit.
        assert len(labels) <= 8


class TestPTBProperties:
    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000), vocab=st.integers(10, 100))
    def test_streams_stay_in_vocab(self, seed, vocab):
        data = SyntheticPTB(vocab_size=vocab, branching=min(5, vocab - 1),
                            seed=seed)
        stream = data.sample_stream(100)
        assert stream.min() >= 0
        assert stream.max() < vocab

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000))
    def test_skipgram_negatives_in_vocab(self, seed):
        data = SyntheticPTB(vocab_size=30, branching=5, seed=seed)
        batch = data.skipgram_batch(8, window=2, negatives=4)
        for key in ("centers", "contexts", "negatives"):
            assert batch[key].max() < 30
            assert batch[key].min() >= 0

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000))
    def test_same_seed_same_corpus(self, seed):
        a = SyntheticPTB(vocab_size=40, branching=5,
                         seed=seed).sample_stream(50)
        b = SyntheticPTB(vocab_size=40, branching=5,
                         seed=seed).sample_stream(50)
        np.testing.assert_array_equal(a, b)
