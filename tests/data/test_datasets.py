"""Tests for the synthetic dataset substitutes."""

import numpy as np
import pytest

from repro.data import (EOS_ID, FIRST_WORD_ID, GO_ID, PAD_ID, SyntheticBabi,
                        SyntheticImageNet, SyntheticMNIST, SyntheticTIMIT,
                        SyntheticWMT)
from repro.data.synthetic import class_templates


class TestClassTemplates:
    def test_shapes(self, rng):
        templates = class_templates(rng, 5, (16, 16, 3))
        assert templates.shape == (5, 16, 16, 3)
        assert templates.dtype == np.float32

    def test_classes_are_distinct(self, rng):
        templates = class_templates(rng, 3, (16, 16))
        assert not np.allclose(templates[0], templates[1])

    def test_spatial_smoothness(self, rng):
        """Upsampled coarse noise must vary less between neighbours than
        white noise of the same variance."""
        templates = class_templates(rng, 1, (32, 32), smoothness=8)[0]
        neighbour_diff = np.abs(np.diff(templates, axis=0)).mean()
        white = rng.standard_normal((32, 32)).astype(np.float32)
        white_diff = np.abs(np.diff(white, axis=0)).mean()
        assert neighbour_diff < 0.5 * white_diff

    def test_rejects_low_rank_shape(self, rng):
        with pytest.raises(ValueError):
            class_templates(rng, 2, (16,))


class TestImageNet:
    def test_batch_shapes(self):
        data = SyntheticImageNet(image_size=32, num_classes=10, seed=0)
        batch = data.sample_batch(4)
        assert batch["images"].shape == (4, 32, 32, 3)
        assert batch["images"].dtype == np.float32
        assert batch["labels"].shape == (4,)
        assert batch["labels"].dtype == np.int32

    def test_labels_in_range(self):
        data = SyntheticImageNet(image_size=16, num_classes=7, seed=0)
        batch = data.sample_batch(64)
        assert batch["labels"].min() >= 0
        assert batch["labels"].max() < 7

    def test_class_signal_exists(self):
        """Same-class images must correlate more than cross-class images."""
        data = SyntheticImageNet(image_size=16, num_classes=2, noise=0.3,
                                 seed=0)
        batch = data.sample_batch(200)
        images = batch["images"].reshape(200, -1)
        labels = batch["labels"]
        mean0 = images[labels == 0].mean(axis=0)
        mean1 = images[labels == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).mean() > 0.1

    def test_determinism(self):
        a = SyntheticImageNet(image_size=16, num_classes=5,
                              seed=3).sample_batch(2)
        b = SyntheticImageNet(image_size=16, num_classes=5,
                              seed=3).sample_batch(2)
        np.testing.assert_array_equal(a["images"], b["images"])

    def test_batches_iterator(self):
        data = SyntheticImageNet(image_size=8, num_classes=3, seed=0)
        batches = list(data.batches(2, count=3))
        assert len(batches) == 3


class TestMNIST:
    def test_flattened_unit_interval(self):
        data = SyntheticMNIST(seed=0)
        batch = data.sample_batch(8)
        assert batch["images"].shape == (8, 784)
        assert batch["images"].min() >= 0.0
        assert batch["images"].max() <= 1.0

    def test_custom_size(self):
        data = SyntheticMNIST(image_size=14, seed=0)
        assert data.sample_batch(2)["images"].shape == (2, 196)


class TestTIMIT:
    def test_batch_shapes(self):
        data = SyntheticTIMIT(num_frames=40, num_features=13, seed=0)
        batch = data.sample_batch(3)
        assert batch["frames"].shape == (3, 40, 13)
        assert batch["labels"].shape == (3, data.max_labels)
        assert batch["label_lengths"].shape == (3,)
        assert batch["input_lengths"].shape == (3,)

    def test_ctc_compatibility(self):
        """Label sequences must never exceed the frame count."""
        data = SyntheticTIMIT(num_frames=30, seed=1)
        batch = data.sample_batch(32)
        assert np.all(batch["label_lengths"] <= batch["input_lengths"])
        assert np.all(batch["label_lengths"] >= 1)

    def test_phonemes_in_range(self):
        data = SyntheticTIMIT(num_phonemes=10, seed=0)
        batch = data.sample_batch(16)
        for b in range(16):
            length = batch["label_lengths"][b]
            assert np.all(batch["labels"][b, :length] < 10)
            assert np.all(batch["labels"][b, length:] == 0)

    def test_phoneme_durations_respected(self):
        data = SyntheticTIMIT(num_frames=60, min_phoneme_frames=4,
                              max_phoneme_frames=8, noise=0.0, seed=0)
        frames, labels = data.sample_utterance()
        # With zero noise, frames within a phoneme segment are constant.
        assert len(labels) <= 60 // 4 + 1

    def test_invalid_durations_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTIMIT(min_phoneme_frames=5, max_phoneme_frames=3)


class TestWMT:
    def test_batch_layout(self):
        data = SyntheticWMT(vocab_size=100, max_length=10, seed=0)
        batch = data.sample_batch(4)
        assert batch["source"].shape == (4, 10)
        assert batch["decoder_input"].shape == (4, 11)
        assert batch["target"].shape == (4, 11)
        assert batch["weights"].shape == (4, 11)

    def test_decoder_input_starts_with_go(self):
        data = SyntheticWMT(vocab_size=100, max_length=8, seed=0)
        batch = data.sample_batch(8)
        assert np.all(batch["decoder_input"][:, 0] == GO_ID)

    def test_translation_is_reversed_lexicon_mapping(self):
        data = SyntheticWMT(vocab_size=50, max_length=6, seed=0)
        source = np.array([5, 9, 12], dtype=np.int32)
        translated = data.translate(source)
        untranslated = data.translate(translated)[::-1]
        # The lexicon is a bijection, so translating twice (and undoing
        # the reversal) must recover a permutation-consistent mapping.
        assert len(translated) == 3
        assert np.all(translated >= FIRST_WORD_ID)

    def test_lexicon_is_bijective(self):
        data = SyntheticWMT(vocab_size=200, max_length=5, seed=0)
        assert len(set(data._lexicon.tolist())) == 200

    def test_targets_end_with_eos_where_weighted(self):
        data = SyntheticWMT(vocab_size=100, max_length=8, seed=0)
        batch = data.sample_batch(16)
        for b in range(16):
            length = int(batch["weights"][b].sum()) - 1
            assert batch["target"][b, length] == EOS_ID
            assert np.all(batch["target"][b, length + 1:] == PAD_ID)

    def test_weights_mask_padding(self):
        data = SyntheticWMT(vocab_size=100, max_length=12, seed=0)
        batch = data.sample_batch(8)
        masked = batch["target"][batch["weights"] == 0.0]
        assert np.all(masked == PAD_ID)

    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWMT(vocab_size=2)


class TestBabi:
    def test_batch_shapes(self):
        data = SyntheticBabi(memory_size=8, seed=0)
        batch = data.sample_batch(5)
        assert batch["stories"].shape == (5, 8, data.SENTENCE_LENGTH)
        assert batch["queries"].shape == (5, data.SENTENCE_LENGTH)
        assert batch["answers"].shape == (5,)

    def test_answers_are_last_locations(self):
        """Decode each story and verify the labelled answer is correct —
        the generator must produce a genuinely solvable reasoning task."""
        data = SyntheticBabi(memory_size=10, num_actors=4, num_locations=5,
                             seed=0)
        for _ in range(50):
            story, query, answer = data.sample_story()
            actor_id = query[1]
            actor = data.vocab[actor_id]
            last = None
            for line in story:
                if line[0] == 0:
                    continue
                if data.vocab[line[0]] == actor:
                    last = data.vocab[line[3]]
            assert last is not None, "query must be answerable"
            assert data.locations[answer] == last

    def test_vocab_is_consistent(self):
        data = SyntheticBabi(seed=0)
        assert data.vocab[0] == "<pad>"
        assert len(set(data.vocab)) == data.vocab_size

    def test_tokens_in_vocab_range(self):
        data = SyntheticBabi(memory_size=6, seed=2)
        batch = data.sample_batch(20)
        assert batch["stories"].max() < data.vocab_size
        assert batch["queries"].max() < data.vocab_size
        assert batch["answers"].max() < data.num_answers

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticBabi(num_actors=0)
        with pytest.raises(ValueError):
            SyntheticBabi(num_locations=1)


class TestBabiTwoFacts:
    def _replay(self, data, story):
        """Independent story replay returning object locations."""
        locations, objects = {}, {}
        for line in story:
            if line[0] == 0:
                continue
            words = [data.vocab[token] for token in line]
            if words[1] in ("moved", "went", "journeyed", "travelled"):
                locations[words[0]] = words[3]
            elif words[1] == "took":
                objects[words[3]] = ("held", words[0])
            elif words[1] == "dropped":
                objects[words[3]] = ("at", locations[words[0]])
        return locations, objects

    def test_every_question_needs_two_facts_and_is_correct(self):
        from repro.data.babi import SyntheticBabiTwoFacts
        data = SyntheticBabiTwoFacts(seed=0)
        for _ in range(60):
            story, query, answer = data.sample_story()
            locations, objects = self._replay(data, story)
            queried = data.vocab[query[1]]
            state, value = objects[queried]
            expected = locations[value] if state == "held" else value
            assert data.locations[answer] == expected

    def test_batch_shapes_match_task1_layout(self):
        from repro.data.babi import SyntheticBabiTwoFacts
        data = SyntheticBabiTwoFacts(memory_size=10, seed=1)
        batch = data.sample_batch(6)
        assert batch["stories"].shape == (6, 10, data.SENTENCE_LENGTH)
        assert batch["queries"].shape == (6, data.SENTENCE_LENGTH)

    def test_vocabulary_includes_objects(self):
        from repro.data.babi import SyntheticBabiTwoFacts
        data = SyntheticBabiTwoFacts(num_objects=2, seed=0)
        assert "football" in data.vocab
        assert "took" in data.vocab
        assert "dropped" in data.vocab

    def test_validation(self):
        from repro.data.babi import SyntheticBabiTwoFacts
        with pytest.raises(ValueError):
            SyntheticBabiTwoFacts(num_objects=0)
        with pytest.raises(ValueError):
            SyntheticBabiTwoFacts(memory_size=2)

    def test_memnet_accepts_task2(self):
        from repro import workloads
        model = workloads.MemN2N(
            config={"task": 2, "memory_size": 8, "batch_size": 4,
                    "hops": 2, "embed_dim": 8}, seed=0)
        losses = model.run_training(steps=3)
        assert all(np.isfinite(l) for l in losses)
        metrics = model.evaluate(batches=2)
        assert 0.0 <= metrics["accuracy"] <= 1.0
