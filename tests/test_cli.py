"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("seq2seq", "memnet", "speech", "autoenc", "residual",
                     "vgg", "alexnet", "deepq"):
            assert name in out


class TestRun:
    def test_training(self, capsys):
        code, out = run_cli(capsys, "run", "memnet", "--config", "tiny",
                            "--steps", "2")
        assert code == 0
        assert out.count("loss") == 2

    def test_inference(self, capsys):
        code, out = run_cli(capsys, "run", "autoenc", "--config", "tiny",
                            "--mode", "infer", "--steps", "1")
        assert code == 0
        assert "inference output shape" in out


class TestProfile:
    def test_top_types(self, capsys):
        code, out = run_cli(capsys, "profile", "memnet", "--config", "tiny",
                            "--steps", "1")
        assert code == 0
        assert "seconds per step" in out
        assert "90%" in out

    def test_class_breakdown(self, capsys):
        code, out = run_cli(capsys, "profile", "memnet", "--config", "tiny",
                            "--classes")
        assert code == 0
        assert "Elementwise Arithmetic" in out

    def test_measured_device(self, capsys):
        code, out = run_cli(capsys, "profile", "memnet", "--config", "tiny",
                            "--device", "measured")
        assert code == 0
        assert "(measured)" in out

    def test_gpu_device(self, capsys):
        code, out = run_cli(capsys, "profile", "memnet", "--config", "tiny",
                            "--device", "gpu")
        assert code == 0

    def test_bad_device_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "memnet", "--device", "tpu"])


class TestSweep:
    def test_thread_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "memnet", "--config", "tiny",
                            "--threads", "1", "4")
        assert code == 0
        assert "overall speedup at 4 threads" in out


class TestTables:
    def test_both_tables(self, capsys):
        code, out = run_cli(capsys, "tables")
        assert code == 0
        assert "Table I" in out
        assert "Table II" in out


class TestGraph:
    def test_stats(self, capsys):
        code, out = run_cli(capsys, "graph", "memnet", "--config", "tiny")
        assert code == 0
        assert "critical path" in out
        assert "BatchMatMul" in out

    def test_dot_output(self, capsys, tmp_path):
        dot_path = tmp_path / "graph.dot"
        code, out = run_cli(capsys, "graph", "memnet", "--config", "tiny",
                            "--dot", str(dot_path))
        assert code == 0
        assert dot_path.read_text().startswith("digraph")


class TestTimeline:
    def test_writes_chrome_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, out = run_cli(capsys, "timeline", "memnet", "--config",
                            "tiny", "--steps", "2", "-o", str(trace_path))
        assert code == 0
        blob = json.loads(trace_path.read_text())
        assert blob["traceEvents"]


class TestEvaluate:
    def test_metrics_printed(self, capsys):
        code, out = run_cli(capsys, "evaluate", "memnet", "--config",
                            "tiny", "--batches", "2")
        assert code == 0
        assert "accuracy" in out

    def test_train_then_evaluate(self, capsys):
        code, out = run_cli(capsys, "evaluate", "autoenc", "--config",
                            "tiny", "--train-steps", "3", "--batches", "1")
        assert code == 0
        assert "negative_elbo" in out


class TestPlacement:
    def test_fallback_table(self, capsys):
        code, out = run_cli(capsys, "placement", "memnet", "--config",
                            "tiny")
        assert code == 0
        assert "fallback" in out
        assert "sync cost" in out


class TestCompare:
    def test_diff_two_workloads(self, capsys):
        code, out = run_cli(capsys, "compare", "memnet", "autoenc",
                            "--config", "tiny", "--steps", "1")
        assert code == 0
        assert "memnet -> autoenc" in out
        assert "cosine distance" in out


class TestTrace:
    def test_writes_loadable_trace(self, capsys, tmp_path):
        from repro.profiling.serialize import load_trace
        path = tmp_path / "t.jsonl"
        code, out = run_cli(capsys, "trace", "memnet", "--config", "tiny",
                            "--steps", "2", "-o", str(path))
        assert code == 0
        trace = load_trace(path)
        assert trace.num_steps == 2
        assert trace.metadata["workload"] == "memnet"


class TestAnalysisCommands:
    def test_census(self, capsys):
        code, out = run_cli(capsys, "census", "memnet", "--config", "tiny")
        assert code == 0
        assert "GFLOPs" in out

    def test_roofline(self, capsys):
        code, out = run_cli(capsys, "roofline", "memnet", "--config",
                            "tiny", "--steps", "1")
        assert code == 0
        assert "overhead" in out

    def test_roofline_gpu(self, capsys):
        code, out = run_cli(capsys, "roofline", "memnet", "--config",
                            "tiny", "--steps", "1", "--device", "gpu")
        assert code == 0
        assert "gpu" in out

    def test_phases(self, capsys):
        code, out = run_cli(capsys, "phases", "memnet", "--config", "tiny",
                            "--steps", "1")
        assert code == 0
        assert "bwd/fwd" in out


class TestWhatIfAndMemory:
    def test_whatif(self, capsys):
        code, out = run_cli(capsys, "whatif", "memnet", "--config", "tiny",
                            "--steps", "1", "--preset", "gemm-engine")
        assert code == 0
        assert "ceiling" in out

    def test_memory_plan(self, capsys):
        code, out = run_cli(capsys, "memory", "memnet", "--config", "tiny")
        assert code == 0
        assert "training step peak" in out


class TestRobustnessFlags:
    def test_max_retries_enables_resilient_training(self, capsys):
        code, out = run_cli(capsys, "run", "memnet", "--config", "tiny",
                            "--steps", "2", "--max-retries", "1")
        assert code == 0
        assert out.count("loss") == 2

    def test_checkpoint_flag_writes_atomic_checkpoint(self, capsys,
                                                      tmp_path):
        path = tmp_path / "ck.npz"
        code, _ = run_cli(capsys, "run", "memnet", "--config", "tiny",
                          "--steps", "2", "--checkpoint", str(path),
                          "--checkpoint-every", "1")
        assert code == 0
        assert path.exists()

    def test_resume_restores_training_state(self, capsys, tmp_path):
        path = tmp_path / "ck.npz"
        run_cli(capsys, "run", "memnet", "--config", "tiny", "--steps",
                "2", "--checkpoint", str(path), "--checkpoint-every", "1")
        code, out = run_cli(capsys, "run", "memnet", "--config", "tiny",
                            "--steps", "1", "--resume", str(path))
        assert code == 0
        assert "loss" in out

    def test_resume_works_for_inference(self, capsys, tmp_path):
        path = tmp_path / "ck.npz"
        run_cli(capsys, "run", "autoenc", "--config", "tiny", "--steps",
                "1", "--checkpoint", str(path), "--checkpoint-every", "1")
        code, out = run_cli(capsys, "run", "autoenc", "--config", "tiny",
                            "--mode", "infer", "--steps", "1",
                            "--resume", str(path))
        assert code == 0
        assert "inference output shape" in out


class TestDurableCheckpointFlags:
    def test_replicated_checkpoint_run_and_resume(self, capsys,
                                                  tmp_path):
        archive = tmp_path / "archive"
        code, _ = run_cli(capsys, "run", "memnet", "--config", "tiny",
                          "--steps", "2", "--checkpoint", str(archive),
                          "--checkpoint-replicas", "3",
                          "--checkpoint-every", "1")
        assert code == 0
        assert sorted(p.name for p in archive.iterdir()) \
            == ["replica-0", "replica-1", "replica-2"]
        code = main(["run", "memnet", "--config", "tiny", "--steps",
                     "1", "--checkpoint", str(archive),
                     "--checkpoint-replicas", "3",
                     "--resume", "latest"])
        captured = capsys.readouterr()
        assert code == 0
        assert "restored checkpoint" in captured.err
        assert "replicated store" in captured.err

    def test_train_with_replicas_writes_replicated_manifest(
            self, capsys, tmp_path):
        code, _ = run_cli(capsys, "train", "memnet", "--config", "tiny",
                          "--steps", "2", "--workers", "2",
                          "--checkpoint-dir", str(tmp_path),
                          "--checkpoint-every", "1",
                          "--checkpoint-replicas", "3",
                          "--scrub-interval", "0.001")
        assert code == 0
        manifest = json.loads(
            (tmp_path / "cluster-manifest.json").read_text())
        storage = manifest["storage"]
        assert storage["replicas"] == 3
        assert (tmp_path / "replica-0").is_dir()

    def test_unwritable_checkpoint_path_fails_fast(self, capsys,
                                                   tmp_path):
        """Satellite contract: a doomed --checkpoint location is a
        one-line friendly error before step 0, not a stack trace at the
        first checkpoint."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        code = main(["run", "memnet", "--config", "tiny", "--steps",
                     "2", "--checkpoint", str(blocker / "sub" / "ck.npz"),
                     "--checkpoint-every", "1"])
        captured = capsys.readouterr()
        assert code == 2
        errors = [line for line in captured.err.splitlines()
                  if line.startswith("error:")]
        assert len(errors) == 1
        assert "--checkpoint path" in errors[0]
        assert "is not writable" in errors[0]
        assert "loss" not in captured.out  # no training step ran

    def test_unwritable_checkpoint_dir_fails_fast_for_train(
            self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        code = main(["train", "memnet", "--config", "tiny", "--steps",
                     "2", "--workers", "2",
                     "--checkpoint-dir", str(blocker / "ckpts")])
        captured = capsys.readouterr()
        assert code == 2
        assert "--checkpoint-dir path" in captured.err
        assert "is not writable" in captured.err
        assert "loss" not in captured.out


class TestErrorHandling:
    def test_framework_error_exits_one_with_one_line_message(
            self, capsys, tmp_path):
        code = main(["run", "memnet", "--config", "tiny", "--steps", "1",
                     "--resume", str(tmp_path / "missing.npz")])
        captured = capsys.readouterr()
        assert code == 1
        errors = [line for line in captured.err.splitlines()
                  if line.startswith("error:")]
        assert len(errors) == 1
        assert "checkpoint" in errors[0]

    def test_corrupt_checkpoint_reported_not_raised(self, capsys,
                                                    tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not an npz archive")
        code = main(["run", "memnet", "--config", "tiny", "--steps", "1",
                     "--resume", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_unknown_workload_errors(self, capsys):
        with pytest.raises(KeyError):
            main(["run", "gpt4", "--config", "tiny"])

    @pytest.mark.parametrize("argv, known", [
        (["train", "memnet", "--config", "tiny", "--steps", "1",
          "--workers", "2", "--cluster-faults", "tyop"], "straggler"),
        (["serve", "memnet", "--config", "tiny", "--fault", "tyop",
          "--virtual-clock"], "poison"),
        (["fleet", "memnet", "--config", "tiny", "--fault", "tyop",
          "--virtual-clock"], "blackhole"),
    ], ids=["train", "serve", "fleet"])
    def test_unknown_fault_preset_is_friendly(self, capsys, argv,
                                              known):
        """All three fault-arming CLIs reject a typo'd preset the same
        way: exit 2, a one-line error, and the available presets —
        never an argparse usage dump or a traceback."""
        code = main(argv)
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown fault preset 'tyop'" in err
        assert f"'repro {argv[0]}'" in err
        assert known in err


class TestCompile:
    def test_one_line_summary(self, capsys):
        code, out = run_cli(capsys, "compile", "memnet", "--config", "tiny")
        assert code == 0
        assert "ops ->" in out and "planned peak" in out

    def test_pass_report(self, capsys):
        code, out = run_cli(capsys, "compile", "seq2seq", "--config",
                            "tiny", "--mode", "infer", "--report")
        assert code == 0
        for pass_name in ("prune", "fold", "cse", "fuse", "schedule"):
            assert pass_name in out
        assert "LSTM cells fused" in out

    def test_summary_reports_arena_hit_rate(self, capsys):
        code, out = run_cli(capsys, "compile", "alexnet", "--config",
                            "tiny")
        assert code == 0
        assert "arena hit rate" in out

    def test_codegen_backend_report(self, capsys):
        code, out = run_cli(capsys, "compile", "memnet", "--config",
                            "tiny", "--backend", "codegen", "--report")
        assert code == 0
        assert "codegen" in out and "regions" in out

    def test_dump_kernels_prints_generated_source(self, capsys):
        code, out = run_cli(capsys, "compile", "memnet", "--config",
                            "tiny", "--backend", "codegen",
                            "--dump-kernels")
        assert code == 0
        assert "def __region_kernel__(V, ctx, H):" in out

    def test_dump_kernels_without_codegen_says_so(self, capsys):
        code, out = run_cli(capsys, "compile", "memnet", "--config",
                            "tiny", "--dump-kernels")
        assert code == 0
        assert "no generated kernels" in out

    def test_codegen_run_trains(self, capsys):
        code, out = run_cli(capsys, "run", "memnet", "--config", "tiny",
                            "--steps", "2", "--backend", "codegen")
        assert code == 0
        assert "loss" in out


class TestTrain:
    def test_distributed_training(self, capsys):
        code, out = run_cli(capsys, "train", "memnet", "--config", "tiny",
                            "--steps", "2", "--workers", "2")
        assert code == 0
        assert out.count("loss") == 2

    def test_verify_identity_passes(self, capsys):
        code, _ = run_cli(capsys, "train", "memnet", "--config", "tiny",
                          "--steps", "2", "--workers", "2",
                          "--strategy", "allreduce", "--verify-identity")
        assert code == 0

    def test_fault_preset_with_artifacts(self, capsys, tmp_path):
        report_path = tmp_path / "cluster.json"
        trace_path = tmp_path / "cluster.jsonl"
        code, _ = run_cli(capsys, "train", "memnet", "--config", "tiny",
                          "--steps", "3", "--workers", "2",
                          "--cluster-faults", "crash",
                          "--verify-identity",
                          "--report-json", str(report_path),
                          "--trace", str(trace_path))
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["workload"] == "memnet"
        kinds = {e["kind"] for e in report["events"]}
        assert {"crash", "restart", "recover"} <= kinds
        from repro.profiling.serialize import load_trace
        loaded = load_trace(trace_path)
        assert loaded.cluster_events("crash")


class TestServe:
    def test_closed_loop_report(self, capsys):
        code, out = run_cli(capsys, "serve", "memnet", "--config", "tiny",
                            "--requests", "8", "--virtual-clock")
        assert code == 0
        assert "serving report: memnet" in out
        assert "attainment" in out

    def test_fault_preset_with_artifacts(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "serve.jsonl"
        code, out = run_cli(capsys, "serve", "memnet", "--config", "tiny",
                            "--requests", "16", "--qps", "400",
                            "--fault", "crash", "--virtual-clock",
                            "--report-json", str(report_path),
                            "--trace", str(trace_path))
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["workload"] == "memnet"
        assert report["requests"] == 16
        assert report["ok"] + report["shed"] + report["deadline"] \
            + report["error"] == 16
        assert report["restarts"] == 1
        from repro.profiling.serialize import load_trace
        loaded = load_trace(trace_path)
        assert loaded.serving_events()

    def test_list_presets(self, capsys):
        code, out = run_cli(capsys, "serve", "--list-presets")
        assert code == 0
        for name in ("crash", "slow", "poison", "storm"):
            assert name in out

    def test_unknown_preset_lists_alternatives(self, capsys):
        code = main(["serve", "memnet", "--config", "tiny",
                     "--fault", "tyop", "--virtual-clock"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown fault preset 'tyop'" in err
        assert "crash" in err


class TestFleet:
    def test_closed_loop_report(self, capsys):
        code, out = run_cli(capsys, "fleet", "memnet", "--config", "tiny",
                            "--requests", "24", "--qps", "300",
                            "--virtual-clock")
        assert code == 0
        assert "fleet report: memnet" in out
        assert "attainment" in out
        assert "zones" in out

    def test_storm_preset_with_artifacts(self, capsys, tmp_path):
        report_path = tmp_path / "fleet.json"
        trace_path = tmp_path / "fleet.jsonl"
        code, out = run_cli(capsys, "fleet", "memnet", "--config", "tiny",
                            "--fault", "storm", "--virtual-clock",
                            "--report-json", str(report_path),
                            "--trace", str(trace_path))
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["workload"] == "memnet"
        assert report["zone_outages"] == 1
        assert report["server_crashes"] == 2
        assert report["rollbacks"] == 1
        assert report["ok"] + report["shed"] + report["deadline"] \
            + report["error"] == report["requests"]
        from repro.profiling.serialize import load_trace
        loaded = load_trace(trace_path)
        kinds = {e.kind for e in loaded.fleet_events()}
        assert "zone_down" in kinds and "rollback" in kinds

    def test_tenant_spec_parsing(self, capsys):
        code, out = run_cli(capsys, "fleet", "memnet", "--config", "tiny",
                            "--requests", "12", "--virtual-clock",
                            "--tenants", "gold:8:50,std:32")
        assert code == 0
        assert "gold" in out and "std" in out

    def test_list_presets(self, capsys):
        code, out = run_cli(capsys, "fleet", "--list-presets")
        assert code == 0
        for name in ("outage", "crash", "blackhole", "badrollout",
                     "storm"):
            assert name in out

    def test_unknown_preset_lists_alternatives(self, capsys):
        code = main(["fleet", "memnet", "--config", "tiny",
                     "--fault", "hurricane", "--virtual-clock"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown fault preset 'hurricane'" in err
        assert "storm" in err
