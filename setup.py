"""Setup script.

The execution environment has no network and no ``wheel`` package, so
PEP 517 builds fail; install with::

    pip install -e . --no-build-isolation --no-use-pep517

Metadata here mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Fathom: reference workloads for modern deep learning "
                 "methods (IISWC 2016) - full reproduction"),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": ["fathom-repro=repro.cli:main"],
    },
)
