"""Print the paper's two tables: the motivation survey and the suite.

    python examples/survey_report.py
"""

from repro.analysis.survey import (coverage_gaps, krizhevsky_share,
                                   render_table1)
from repro.analysis.workload_table import render_table2


def main() -> None:
    print(render_table1())
    print()
    print(f"Share of surveyed papers evaluating the Krizhevsky CNN: "
          f"{krizhevsky_share():.0%}")
    print(f"Learning tasks untouched by the surveyed papers: "
          f"{', '.join(coverage_gaps())}")
    print()
    print(render_table2())


if __name__ == "__main__":
    main()
