"""Regenerate the paper's device and parallelism studies (Figs. 5-6, V-A).

Prints the training-vs-inference CPU/GPU comparison for all eight
workloads, the per-op-type thread sweeps for deepq, seq2seq, and memnet,
and the Section V-A CPU-fallback placement simulation::

    python examples/parallelism_study.py
"""

from repro.analysis.placement_study import (render_placement_table,
                                            study_workload)
from repro.analysis.suite import (get_model, suite_parallelism,
                                  suite_train_vs_infer)
from repro.analysis.train_vs_infer import render_figure5
from repro.workloads import WORKLOAD_NAMES


def main() -> None:
    print("=== Fig. 5: training vs inference, CPU vs GPU (modeled) ===")
    points = suite_train_vs_infer(config="default", steps=2)
    print(render_figure5(points))

    print("\n=== Fig. 6: operation-type scaling with intra-op threads ===")
    sweeps = suite_parallelism(config="default", steps=2)
    for sweep in sweeps.values():
        print()
        print(sweep.render())
        rising = [op for op in sweep.op_types[:10]
                  if sweep.fraction(op, 8) > 1.3 * sweep.fraction(op, 1)]
        print(f"  overall speedup at 8 threads: {sweep.speedup(8):.2f}x; "
              f"rising profile share: {', '.join(rising) or '(none)'}")

    print("\n=== Section V-A: GPU execution with CPU fall-back ops ===")
    placement_points = [study_workload(get_model(name, "default"))
                        for name in WORKLOAD_NAMES]
    print(render_placement_table(placement_points))


if __name__ == "__main__":
    main()
