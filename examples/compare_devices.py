"""Capture a trace once, re-price it under every device configuration.

Demonstrates the offline-analysis workflow: trace a workload's training
step, save it (`repro.profiling.serialize`), then build modeled profiles
for 1/2/4/8-thread CPUs and the GPU from the *same* saved trace, and
diff the CPU-vs-GPU profiles::

    python examples/compare_devices.py [workload]
"""

import sys
import tempfile
from pathlib import Path

from repro import workloads
from repro.framework.device_model import cpu, gpu
from repro.profiling.comparison import compare_profiles
from repro.profiling.profile import OperationProfile
from repro.profiling.serialize import load_trace, save_trace
from repro.profiling.tracer import Tracer


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "deepq"
    model = workloads.create(name, config="default", seed=0)
    print(f"Tracing one {name} training step...")
    model.run_training(1)
    tracer = Tracer()
    model.run_training(2, tracer=tracer)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{name}.trace.jsonl"
        count = save_trace(tracer, path, metadata={"workload": name})
        print(f"saved {count} op records to {path.name}")
        trace = load_trace(path)

    print("\nModeled step time by device (one trace, many devices):")
    devices = [cpu(1), cpu(2), cpu(4), cpu(8), gpu()]
    profiles = {}
    for device in devices:
        profile = OperationProfile.from_trace(trace, f"{name}@{device.name}",
                                              device=device)
        profiles[device.name] = profile
        print(f"  {device.name:>5s}: {profile.seconds_per_step() * 1e3:8.2f}"
              " ms/step")

    print("\nWhat changes between cpu1 and gpu:")
    comparison = compare_profiles(profiles["cpu1"], profiles["gpu"])
    print(comparison.render(top_n=6))


if __name__ == "__main__":
    main()
