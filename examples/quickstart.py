"""Quickstart: build a Fathom workload, train it, inspect its profile.

Runs in a few seconds::

    python examples/quickstart.py [workload]

Shows the three things the suite's standard interface gives you for any
of the eight models: training, inference, and an operation-level
performance profile.
"""

import sys

from repro import workloads
from repro.framework.device_model import cpu


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    print(f"Building {name} (tiny config)...")
    model = workloads.create(name, config="tiny", seed=0)
    print(f"  {model!r}")
    print(f"  dataflow graph: {len(model.graph)} operations, "
          f"{model.num_parameters():,} learnable parameters")
    print("\nModel summary:")
    for line in model.summary().splitlines():
        print(f"  {line}")

    print("\nTraining for 10 steps:")
    losses = model.run_training(steps=10)
    for step, loss in enumerate(losses, start=1):
        print(f"  step {step:2d}  loss {loss:9.4f}")

    output = model.run_inference(steps=1)
    print(f"\nInference output: shape {output.shape}, "
          f"dtype {output.dtype}")

    print("\nOperation profile (modeled, single-thread CPU):")
    profile = model.profile(mode="training", steps=2, device=cpu(1))
    for op_type, fraction in profile.top_types(8):
        print(f"  {op_type:>28s}  {fraction:6.1%}")
    print(f"  ({profile.types_for_coverage(0.9)} op types cover 90% of "
          "runtime)")


if __name__ == "__main__":
    main()
