"""Train the deepq workload to play Catch, end to end.

The full Mnih et al. (2013) loop on the ALE-substitute arcade game:
pixels in, epsilon-greedy play, experience replay, target-network sync.
Prints a rolling average episode reward: random play averages ~-0.8, and
the agent reaches ~+0.9 (near-perfect catching) by 400 episodes::

    python examples/train_deepq_catch.py [episodes]

The default 400 episodes takes several minutes; 150 episodes already
shows clear improvement.
"""

import sys

import numpy as np

from repro import workloads
from repro.rl.agent import DQNAgent, EpsilonSchedule


def main() -> None:
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    model = workloads.create(
        "deepq",
        config={"batch_size": 32, "replay_capacity": 4096,
                "learning_rate": 5e-3, "screen_size": 16,
                "channel_scale": 0.5, "dense_units": 128, "gamma": 0.95},
        seed=0)
    agent = DQNAgent(
        model, model.env, model.replay,
        frame_depth=model.config["frame_depth"],
        batch_size=model.batch_size, target_sync_interval=30,
        min_replay=256,
        epsilon=EpsilonSchedule(start=1.0, end=0.02, decay_steps=800),
        seed=0)

    print(f"Seeding replay buffer and training for {episodes} episodes...")
    agent.fill_replay(512)
    model.sync_target()
    window = []
    for episode in range(1, episodes + 1):
        reward, losses = agent.run_episode(max_steps=50)
        window.append(reward)
        if episode % 10 == 0:
            recent = np.mean(window[-30:])
            loss = np.mean(losses) if losses else float("nan")
            print(f"  episode {episode:4d}  reward(avg30) {recent:+.2f}  "
                  f"loss {loss:.4f}  eps "
                  f"{agent.epsilon.value(agent.total_steps):.2f}")

    early = np.mean(agent.episode_rewards[:20])
    late = np.mean(agent.episode_rewards[-20:])
    print(f"\nAverage reward: first 20 episodes {early:+.2f} -> "
          f"last 20 episodes {late:+.2f}")

    print("\nOne greedy game, frame by frame:")
    agent.epsilon = EpsilonSchedule(0.0, 0.0, 1)
    state = agent.frames.reset(model.env.reset())
    done = False
    while not done:
        action = agent.select_action(state)
        frame, reward, done = model.env.step(action)
        state = agent.frames.push(frame)
    print(model.env.render_ascii())
    print(f"final reward: {reward:+.0f}")


if __name__ == "__main__":
    main()
