"""Train Deep Speech briefly and greedy-decode utterances with CTC.

Demonstrates the CTC pipeline end to end: unsegmented phoneme labels in,
per-frame log-probabilities out, best-path decoding, and a phoneme error
rate that falls as the model trains::

    python examples/speech_decode.py [steps]
"""

import sys

import numpy as np

from repro import workloads
from repro.framework.ops import ctc_greedy_decode


def edit_distance(a, b) -> int:
    """Levenshtein distance between two sequences."""
    table = np.zeros((len(a) + 1, len(b) + 1), dtype=int)
    table[:, 0] = np.arange(len(a) + 1)
    table[0, :] = np.arange(len(b) + 1)
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            table[i, j] = min(table[i - 1, j] + 1, table[i, j - 1] + 1,
                              table[i - 1, j - 1] + cost)
    return int(table[-1, -1])


def phoneme_error_rate(model, batches: int = 4) -> float:
    errors = total = 0
    for _ in range(batches):
        feed = model.sample_feed(training=False)
        scores = model.session.run(model.inference_output, feed_dict=feed)
        decoded = ctc_greedy_decode(scores, blank=model.blank_index)
        labels = feed[model.labels]
        lengths = feed[model.label_lengths]
        for b, hypothesis in enumerate(decoded):
            reference = labels[b, :lengths[b]].tolist()
            errors += edit_distance(hypothesis, reference)
            total += len(reference)
    return errors / total


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    model = workloads.create(
        "speech",
        config={"num_frames": 24, "num_features": 8, "hidden_units": 64,
                "num_phonemes": 8, "batch_size": 8, "context": 1,
                "learning_rate": 2e-3},
        seed=0)

    before = phoneme_error_rate(model)
    print(f"Phoneme error rate before training: {before:.1%}")

    print(f"Training with CTC loss for {steps} steps...")
    losses = model.run_training(steps=steps)
    for i in range(0, steps, max(1, steps // 6)):
        print(f"  step {i:4d}  ctc loss {losses[i]:7.3f}")
    print(f"  final loss {losses[-1]:7.3f}")

    after = phoneme_error_rate(model)
    print(f"Phoneme error rate after training: {after:.1%}")

    feed = model.sample_feed(training=False)
    scores = model.session.run(model.inference_output, feed_dict=feed)
    decoded = ctc_greedy_decode(scores, blank=model.blank_index)
    print("\nSample decodes:")
    for b in range(min(3, model.batch_size)):
        reference = feed[model.labels][b, :feed[model.label_lengths][b]]
        print(f"  ref {reference.tolist()}")
        print(f"  hyp {decoded[b]}")


if __name__ == "__main__":
    main()
