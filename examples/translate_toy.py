"""Train seq2seq on the synthetic translation task and decode a sentence.

A scaled-down version of the paper's WMT setup: the model must learn a
token-level lexicon plus the reversal alignment, driving its attention
mechanism. After training, greedy-decodes a sample and compares against
the reference translation::

    python examples/translate_toy.py [steps]
"""

import sys

import numpy as np

from repro import workloads
from repro.data.wmt import EOS_ID, PAD_ID


def greedy_decode(model, source_batch):
    """Teacher-forcing-free decode using the trained graph.

    The training graph is statically unrolled with teacher forcing, so
    for this demo we approximate free-running decoding by iteratively
    feeding back the argmax tokens.
    """
    batch = model.batch_size
    target_len = model.config["sequence_length"] + 1
    vocab = model.config["vocab_size"]
    decoder_input = np.full((batch, target_len), PAD_ID, dtype=np.int32)
    decoder_input[:, 0] = 1  # GO
    for position in range(target_len - 1):
        probs = model.session.run(
            model.inference_output,
            feed_dict={model.source: source_batch,
                       model.decoder_input: decoder_input,
                       model.target: np.zeros((batch, target_len), np.int32),
                       model.weights: np.ones((batch, target_len),
                                              np.float32)})
        # inference_output is (steps*batch, vocab), time-major blocks.
        step_probs = probs[position * batch:(position + 1) * batch]
        decoder_input[:, position + 1] = step_probs.argmax(axis=1)
    return decoder_input[:, 1:]


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    model = workloads.create(
        "seq2seq",
        config={"vocab_size": 30, "sequence_length": 4, "batch_size": 16,
                "embed_dim": 32, "hidden_units": 64, "num_layers": 1,
                "learning_rate": 1.0},
        seed=0)
    print(f"Training seq2seq on the toy lexicon task for {steps} steps...")
    losses = model.run_training(steps=steps)
    for i in range(0, steps, max(1, steps // 8)):
        print(f"  step {i:4d}  loss {losses[i]:.3f}")
    print(f"  final loss {losses[-1]:.3f}")

    batch = model.dataset.sample_batch(model.batch_size)
    decoded = greedy_decode(model, batch["source"])
    print("\nSample translations (token ids):")
    correct_tokens = total_tokens = 0
    for row in range(4):
        source = batch["source"][row]
        words = source[source != PAD_ID]
        reference = model.dataset.translate(words)
        produced = decoded[row][:len(reference)]
        match = np.mean(produced == reference)
        correct_tokens += int((produced == reference).sum())
        total_tokens += len(reference)
        print(f"  src {source.tolist()}  ref {reference.tolist()}  "
              f"out {produced.tolist()}  ({match:.0%} tokens)")
    print(f"\nToken accuracy on shown samples: "
          f"{correct_tokens / total_tokens:.0%}")


if __name__ == "__main__":
    main()
