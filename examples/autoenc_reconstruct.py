"""Train the variational autoencoder and visualize reconstructions.

Shows the paper's "stochastic sampling as part of inference" property:
the same input reconstructs slightly differently on every run because
the embedding is sampled. Renders input/reconstruction pairs as ASCII::

    python examples/autoenc_reconstruct.py [steps]
"""

import sys

import numpy as np

from repro import workloads


def ascii_image(flat: np.ndarray, size: int) -> list[str]:
    shades = " .:-=+*#%@"
    image = flat.reshape(size, size)
    rows = []
    for row in image:
        rows.append("".join(
            shades[min(int(v * (len(shades) - 1) + 0.5), len(shades) - 1)]
            for v in row))
    return rows


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    model = workloads.create("autoenc", config="tiny", seed=0)
    size = model.config["image_size"]

    before = model.evaluate(batches=4)
    print(f"Before training: -ELBO {before['negative_elbo']:.1f}, "
          f"pixel L1 {before['pixel_l1_error']:.3f}")
    print(f"Training for {steps} steps...")
    model.run_training(steps=steps)
    after = model.evaluate(batches=4)
    print(f"After training:  -ELBO {after['negative_elbo']:.1f}, "
          f"pixel L1 {after['pixel_l1_error']:.3f}")

    feed = model.sample_feed(training=False)
    reconstruction = model.session.run(model.reconstruction, feed_dict=feed)
    resampled = model.session.run(model.reconstruction, feed_dict=feed)

    print("\ninput / reconstruction / resampled reconstruction:")
    original_rows = ascii_image(feed[model.images][0], size)
    recon_rows = ascii_image(reconstruction[0], size)
    again_rows = ascii_image(resampled[0], size)
    for left, middle, right in zip(original_rows, recon_rows, again_rows):
        print(f"  {left}   {middle}   {right}")
    noise = float(np.abs(reconstruction - resampled).mean())
    print(f"\nmean |difference| between the two reconstructions: "
          f"{noise:.4f} (nonzero: inference samples the embedding)")


if __name__ == "__main__":
    main()
