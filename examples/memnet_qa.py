"""Train the memory network on procedural bAbI and watch it reason.

Trains memnet on single-supporting-fact stories, then prints a story in
plain English, the model's per-hop attention over the memory slots, and
its answer — the "explicitly store and recall information" behaviour the
paper describes::

    python examples/memnet_qa.py [steps]
"""

import sys

import numpy as np

from repro import workloads


def describe_sentence(dataset, token_ids) -> str:
    words = [dataset.vocab[token] for token in token_ids if token != 0]
    return " ".join(words) if words else "(empty)"


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    model = workloads.create("memnet", config="default", seed=0)
    dataset = model.dataset

    before = model.evaluate(batches=5)["accuracy"]
    print(f"Answer accuracy before training: {before:.0%} "
          f"(chance {1.0 / dataset.num_answers:.0%})")
    print(f"Training for {steps} steps...")
    losses = model.run_training(steps=steps)
    print(f"  loss {losses[0]:.3f} -> {losses[-1]:.3f}")
    after = model.evaluate(batches=5)["accuracy"]
    print(f"Answer accuracy after training: {after:.0%}")

    # Show one worked example with the attention trace.
    feed = model.sample_feed(training=False)
    attention_fetches = [
        model.graph.get_operation(f"hop{hop}/attention").outputs[0]
        for hop in range(model.config["hops"])]
    fetched = model.session.run(
        [model.inference_output] + attention_fetches, feed_dict=feed)
    predictions, attentions = fetched[0], fetched[1:]

    story = feed[model.stories][0]
    query = feed[model.queries][0]
    answer = feed[model.answers][0]
    print("\nStory:")
    for line_index, line in enumerate(story):
        if not line.any():
            continue
        marks = " ".join(f"h{hop}:{attentions[hop][0, line_index]:.2f}"
                         for hop in range(len(attentions)))
        print(f"  {line_index:2d}. {describe_sentence(dataset, line):<40s}"
              f" [{marks}]")
    print(f"Question: {describe_sentence(dataset, query)}?")
    predicted = dataset.locations[int(predictions[0].argmax())]
    actual = dataset.locations[int(answer)]
    verdict = "correct" if predicted == actual else f"wrong (was {actual})"
    print(f"Model answer: {predicted}  ({verdict})")


if __name__ == "__main__":
    main()
