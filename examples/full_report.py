"""Write the complete characterization report to a markdown file.

    python examples/full_report.py [output.md]

Regenerates both tables and all six figures in one document (~1 minute).
"""

import sys

from repro.analysis.report import full_report


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "fathom_report.md"
    print("Generating full characterization report "
          "(all tables and figures)...")
    text = full_report(config="default", steps=2)
    with open(output, "w") as handle:
        handle.write(text)
    print(f"wrote {output} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
