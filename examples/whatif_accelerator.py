"""The paper's closing lesson, quantified: accelerator what-if analysis.

"While convolution and matrix multiplication are attractive targets for
hardware support, there are limits to the benefits that can be
extracted from them." Applies hypothetical conv/GEMM engines to every
workload's traced profile and prints the Amdahl speedups and ceilings::

    python examples/whatif_accelerator.py
"""

from repro.analysis.accelerator import PRESETS, render_what_if, what_if
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def main() -> None:
    print("Tracing all eight workloads (default config)...")
    models = [get_model(name, "default") for name in WORKLOAD_NAMES]
    for preset, classes in PRESETS.items():
        results = [what_if(model, classes) for model in models]
        print()
        print(render_what_if(results, preset))

    print("\nThe lesson: a 100x conv+GEMM engine never delivers 100x — "
          "the fine-grained")
    print("recurrent and memory models barely move, because their time "
          "lives in the")
    print("operations no dense-math engine touches (Figs. 3 and 6 of "
          "the paper).")


if __name__ == "__main__":
    main()
