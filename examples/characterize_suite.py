"""Regenerate the paper's workload characterization (Section V).

Profiles all eight Fathom workloads at the default configuration and
prints the Fig. 2 dominance summary, the Fig. 3 operation-class
breakdown, and the Fig. 4 similarity dendrogram. Takes ~1 minute::

    python examples/characterize_suite.py
"""

from repro.analysis import suite
from repro.analysis.breakdown import breakdown_matrix
from repro.analysis.dominance import dominance_curves, render_dominance_table
from repro.analysis.similarity import cluster_profiles
from repro.framework.device_model import cpu


def render_dendrogram(dendrogram) -> str:
    count = len(dendrogram.labels)

    def name(index):
        if index < count:
            return dendrogram.labels[index]
        members = dendrogram.cluster_members(index)
        return "(" + " ".join(dendrogram.labels[i] for i in members) + ")"

    lines = []
    for merge in dendrogram.merges:
        lines.append(f"  d={merge.distance:5.3f}  {name(merge.left)} + "
                     f"{name(merge.right)}")
    return "\n".join(lines)


def main() -> None:
    print("Profiling all eight workloads (default config, training, "
          "modeled 1-thread CPU)...")
    profiles = suite.profile_suite(config="default", mode="training",
                                   steps=2, device=cpu(1))

    print("\n=== Fig. 2: dominance of heavy operation types ===")
    print(render_dominance_table(dominance_curves(profiles)))

    print("\n=== Fig. 3: execution-time breakdown by operation class ===")
    print(breakdown_matrix(profiles).render())

    print("\n=== Fig. 4: hierarchical similarity (cosine distance, "
          "centroid linkage) ===")
    dendrogram = cluster_profiles(profiles)
    print(render_dendrogram(dendrogram))
    order = [dendrogram.labels[i] for i in dendrogram.leaf_order()]
    print(f"  leaf order: {' | '.join(order)}")


if __name__ == "__main__":
    main()
