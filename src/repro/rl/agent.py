"""The deep Q-learning control loop.

Orchestrates an :class:`~repro.rl.environment.Environment`, a
:class:`~repro.rl.replay.ReplayBuffer`, and any Q-network implementing
the small :class:`QNetwork` protocol (the ``deepq`` workload implements
it). Follows Mnih et al. (2013): frame stacking, epsilon-greedy
exploration with linear annealing, uniform replay sampling, and periodic
target-network synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from .environment import Environment
from .replay import ReplayBuffer


class QNetwork(Protocol):
    """What the agent needs from a value network."""

    def q_values(self, states: np.ndarray) -> np.ndarray:
        """Action values, shape ``(batch, num_actions)``."""
        ...  # pragma: no cover

    def train_on_batch(self, batch: dict[str, np.ndarray]) -> float:
        """One gradient step on a replay minibatch; returns the loss."""
        ...  # pragma: no cover

    def sync_target(self) -> None:
        """Copy online-network weights into the target network."""
        ...  # pragma: no cover


@dataclass
class EpsilonSchedule:
    """Linear annealing from ``start`` to ``end`` over ``decay_steps``."""

    start: float = 1.0
    end: float = 0.1
    decay_steps: int = 1000

    def value(self, step: int) -> float:
        if step >= self.decay_steps:
            return self.end
        fraction = step / self.decay_steps
        return self.start + fraction * (self.end - self.start)


class FrameStack:
    """Maintain the last ``depth`` frames as a (H, W, depth) state."""

    def __init__(self, depth: int = 4):
        self.depth = depth
        self._frames: list[np.ndarray] = []

    def reset(self, frame: np.ndarray) -> np.ndarray:
        self._frames = [frame] * self.depth
        return self.state()

    def push(self, frame: np.ndarray) -> np.ndarray:
        self._frames = self._frames[1:] + [frame]
        return self.state()

    def state(self) -> np.ndarray:
        return np.stack(self._frames, axis=-1)


class DQNAgent:
    """Epsilon-greedy deep Q-learning with replay and a target network."""

    def __init__(self, network: QNetwork, env: Environment,
                 replay: ReplayBuffer, frame_depth: int = 4,
                 batch_size: int = 32, target_sync_interval: int = 100,
                 train_interval: int = 1, min_replay: int = 64,
                 epsilon: EpsilonSchedule | None = None, seed: int = 0):
        self.network = network
        self.env = env
        self.replay = replay
        self.frames = FrameStack(frame_depth)
        self.batch_size = batch_size
        self.target_sync_interval = target_sync_interval
        self.train_interval = train_interval
        self.min_replay = min_replay
        self.epsilon = epsilon or EpsilonSchedule()
        self.rng = np.random.default_rng(seed)
        self.total_steps = 0
        self.episode_rewards: list[float] = []

    def select_action(self, state: np.ndarray) -> int:
        """Epsilon-greedy action for a single stacked state."""
        if self.rng.random() < self.epsilon.value(self.total_steps):
            return int(self.rng.integers(self.env.num_actions))
        values = self.network.q_values(state[np.newaxis])
        return int(values[0].argmax())

    def fill_replay(self, transitions: int) -> None:
        """Seed the buffer with random-policy transitions."""
        state = self.frames.reset(self.env.reset())
        for _ in range(transitions):
            action = int(self.rng.integers(self.env.num_actions))
            frame, reward, done = self.env.step(action)
            next_state = self.frames.push(frame)
            self.replay.add(state, action, reward, next_state, done)
            state = (self.frames.reset(self.env.reset()) if done
                     else next_state)

    def run_episode(self, max_steps: int = 500,
                    train: bool = True) -> tuple[float, list[float]]:
        """Play one episode; returns (total reward, training losses)."""
        state = self.frames.reset(self.env.reset())
        total_reward = 0.0
        losses: list[float] = []
        for _ in range(max_steps):
            action = self.select_action(state)
            frame, reward, done = self.env.step(action)
            next_state = self.frames.push(frame)
            self.replay.add(state, action, reward, next_state, done)
            total_reward += reward
            state = next_state
            self.total_steps += 1
            if (train and len(self.replay) >= self.min_replay
                    and self.total_steps % self.train_interval == 0):
                losses.append(self.network.train_on_batch(
                    self.replay.sample(self.batch_size)))
            if self.total_steps % self.target_sync_interval == 0:
                self.network.sync_target()
            if done:
                break
        self.episode_rewards.append(total_reward)
        return total_reward, losses
