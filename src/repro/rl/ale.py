"""An Arcade-Learning-Environment substitute: small pixel arcade games.

The paper's deepq workload drives the original ALE Atari 2600 emulator.
The emulator and ROMs are not redistributable here, so this module
implements small arcade games with the same interaction contract: raw
pixel frames in, a discrete joystick-like action set, delayed scalar
rewards, and episodes. Two games with different reward structures are
provided:

* :class:`Catch` — a paddle must intercept a falling ball (sparse
  terminal reward, the classic DQN sanity task).
* :class:`Dodge` — the player weaves between falling obstacles (dense
  survival reward with terminal failure).

Frames are ``(screen_size, screen_size)`` float32 in {0, 1}; the DQN
agent stacks four consecutive frames exactly as Mnih et al. (2013) did.
"""

from __future__ import annotations

import numpy as np

from .environment import Environment


class Catch(Environment):
    """Catch the falling ball with a three-pixel paddle.

    Actions: 0 = left, 1 = stay, 2 = right. The episode ends when the
    ball reaches the bottom row; reward is +1 for a catch, -1 for a miss,
    0 otherwise.
    """

    num_actions = 3

    def __init__(self, screen_size: int = 24, seed: int = 0):
        if screen_size < 6:
            raise ValueError("Catch needs a screen of at least 6 pixels")
        self.screen_size = screen_size
        self.rng = np.random.default_rng(seed)
        self._ball_row = 0
        self._ball_col = 0
        self._paddle_col = 0  # center of a 3-pixel paddle
        self._done = True

    def reset(self) -> np.ndarray:
        self._ball_row = 0
        self._ball_col = int(self.rng.integers(0, self.screen_size))
        self._paddle_col = self.screen_size // 2
        self._done = False
        return self._current_frame()

    def step(self, action: int) -> tuple[np.ndarray, float, bool]:
        if self._done:
            raise RuntimeError("episode is over; call reset()")
        if action not in (0, 1, 2):
            raise ValueError(f"invalid action {action}")
        shift = action - 1
        self._paddle_col = int(np.clip(self._paddle_col + shift, 1,
                                       self.screen_size - 2))
        self._ball_row += 1
        reward = 0.0
        if self._ball_row == self.screen_size - 1:
            caught = abs(self._ball_col - self._paddle_col) <= 1
            reward = 1.0 if caught else -1.0
            self._done = True
        return self._current_frame(), reward, self._done

    def _current_frame(self) -> np.ndarray:
        frame = np.zeros((self.screen_size, self.screen_size),
                         dtype=np.float32)
        frame[self._ball_row, self._ball_col] = 1.0
        frame[-1, self._paddle_col - 1:self._paddle_col + 2] = 1.0
        return frame


class Dodge(Environment):
    """Dodge a stream of falling obstacles.

    Actions: 0 = left, 1 = stay, 2 = right. Each survived step yields
    +0.1; colliding with an obstacle ends the episode with -1. Episodes
    are capped at ``max_steps`` to stay bounded.
    """

    num_actions = 3

    def __init__(self, screen_size: int = 24, spawn_probability: float = 0.3,
                 max_steps: int = 200, seed: int = 0):
        self.screen_size = screen_size
        self.spawn_probability = spawn_probability
        self.max_steps = max_steps
        self.rng = np.random.default_rng(seed)
        self._obstacles = np.zeros((screen_size, screen_size), dtype=bool)
        self._player_col = 0
        self._steps = 0
        self._done = True

    def reset(self) -> np.ndarray:
        self._obstacles[:] = False
        self._player_col = self.screen_size // 2
        self._steps = 0
        self._done = False
        return self._current_frame()

    def step(self, action: int) -> tuple[np.ndarray, float, bool]:
        if self._done:
            raise RuntimeError("episode is over; call reset()")
        if action not in (0, 1, 2):
            raise ValueError(f"invalid action {action}")
        self._player_col = int(np.clip(self._player_col + action - 1, 0,
                                       self.screen_size - 1))
        # Scroll obstacles down one row and spawn a new one up top.
        self._obstacles[1:] = self._obstacles[:-1]
        self._obstacles[0] = False
        if self.rng.random() < self.spawn_probability:
            self._obstacles[0, int(self.rng.integers(self.screen_size))] = True
        self._steps += 1
        if self._obstacles[-1, self._player_col]:
            self._done = True
            return self._current_frame(), -1.0, True
        if self._steps >= self.max_steps:
            self._done = True
        return self._current_frame(), 0.1, self._done

    def _current_frame(self) -> np.ndarray:
        frame = self._obstacles.astype(np.float32)
        frame[-1, self._player_col] = 1.0
        return frame


GAMES = {"catch": Catch, "dodge": Dodge}


def make(name: str, screen_size: int = 24, seed: int = 0) -> Environment:
    """Instantiate a game by name (``'catch'`` or ``'dodge'``)."""
    try:
        game_cls = GAMES[name]
    except KeyError:
        raise ValueError(
            f"unknown game {name!r}; available: {sorted(GAMES)}") from None
    return game_cls(screen_size=screen_size, seed=seed)
