"""The environment interface for reinforcement-learning workloads.

Modeled on the Arcade Learning Environment (Bellemare et al., 2013) that
the paper's deepq workload uses: pixel observations, a small discrete
action set, scalar rewards, episodic play.
"""

from __future__ import annotations

import numpy as np


class Environment:
    """Abstract pixel-based episodic environment."""

    #: number of discrete actions
    num_actions: int
    #: observation height/width in pixels
    screen_size: int

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial frame (H, W) float32."""
        raise NotImplementedError

    def step(self, action: int) -> tuple[np.ndarray, float, bool]:
        """Apply ``action``; returns ``(frame, reward, episode_done)``."""
        raise NotImplementedError

    def render_ascii(self) -> str:
        """Human-readable frame dump for examples and debugging."""
        frame = self._current_frame()
        rows = []
        for row in frame:
            rows.append("".join("#" if v > 0.5 else "." for v in row))
        return "\n".join(rows)

    def _current_frame(self) -> np.ndarray:
        raise NotImplementedError
