"""Reinforcement-learning substrate for the deepq workload.

Replaces the paper's Arcade Learning Environment dependency with small
pixel arcade games (:mod:`repro.rl.ale`), and provides the experience
replay buffer and DQN control loop from Mnih et al. (2013).
"""

from .agent import DQNAgent, EpsilonSchedule, FrameStack, QNetwork
from .ale import GAMES, Catch, Dodge, make
from .environment import Environment
from .replay import ReplayBuffer

__all__ = [
    "DQNAgent", "EpsilonSchedule", "FrameStack", "QNetwork",
    "GAMES", "Catch", "Dodge", "make",
    "Environment", "ReplayBuffer",
]
