"""Experience replay (Mnih et al., 2013).

The paper highlights experience replay as one of deepq's "innovative
strategies" for decoupled feedback: transitions are stored in a circular
buffer and training samples minibatches uniformly at random, breaking the
temporal correlation of consecutive frames.
"""

from __future__ import annotations

import numpy as np


class ReplayBuffer:
    """Fixed-capacity circular transition store with uniform sampling."""

    def __init__(self, capacity: int, state_shape: tuple[int, ...],
                 seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rng = np.random.default_rng(seed)
        self._states = np.zeros((capacity,) + state_shape, dtype=np.float32)
        self._actions = np.zeros(capacity, dtype=np.int32)
        self._rewards = np.zeros(capacity, dtype=np.float32)
        self._next_states = np.zeros((capacity,) + state_shape,
                                     dtype=np.float32)
        self._dones = np.zeros(capacity, dtype=np.float32)
        self._next_slot = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, state: np.ndarray, action: int, reward: float,
            next_state: np.ndarray, done: bool) -> None:
        slot = self._next_slot
        self._states[slot] = state
        self._actions[slot] = action
        self._rewards[slot] = reward
        self._next_states[slot] = next_state
        self._dones[slot] = float(done)
        self._next_slot = (slot + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> dict[str, np.ndarray]:
        """A uniform random minibatch of stored transitions."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        idx = self.rng.integers(0, self._size, size=batch_size)
        return {"states": self._states[idx],
                "actions": self._actions[idx],
                "rewards": self._rewards[idx],
                "next_states": self._next_states[idx],
                "dones": self._dones[idx]}
