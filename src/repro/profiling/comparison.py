"""Profile comparison: regression-diff two operation profiles.

Fathom's purpose is to evaluate hardware/system changes "on a battery of
models in a consistent manner"; after a change you want to know *what
moved*. :func:`compare_profiles` diffs two
:class:`~repro.profiling.profile.OperationProfile` objects — per-op-type
time fractions, absolute per-step seconds, and overall similarity — and
renders a compact report of the biggest shifts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TypeDelta:
    """One op type's change between two profiles."""

    op_type: str
    baseline_fraction: float
    candidate_fraction: float
    baseline_seconds: float
    candidate_seconds: float

    @property
    def fraction_delta(self) -> float:
        return self.candidate_fraction - self.baseline_fraction

    @property
    def seconds_ratio(self) -> float:
        """Candidate/baseline per-step seconds (inf for new op types)."""
        if self.baseline_seconds == 0.0:
            return float("inf") if self.candidate_seconds > 0 else 1.0
        return self.candidate_seconds / self.baseline_seconds


@dataclass(frozen=True)
class ProfileComparison:
    baseline_label: str
    candidate_label: str
    deltas: list[TypeDelta]  # sorted by |fraction delta|, descending
    cosine_distance: float
    baseline_step_seconds: float
    candidate_step_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline/candidate per-step time (>1 means candidate faster)."""
        if self.candidate_step_seconds == 0.0:
            return float("inf")
        return self.baseline_step_seconds / self.candidate_step_seconds

    def biggest_shifts(self, n: int = 5) -> list[TypeDelta]:
        return self.deltas[:n]

    def render(self, top_n: int = 8) -> str:
        lines = [f"Profile comparison: {self.baseline_label} -> "
                 f"{self.candidate_label}",
                 f"  per-step time: {self.baseline_step_seconds * 1e3:.2f}ms"
                 f" -> {self.candidate_step_seconds * 1e3:.2f}ms "
                 f"({self.speedup:.2f}x)",
                 f"  profile cosine distance: {self.cosine_distance:.4f}",
                 f"  {'op type':>28s}  {'base':>7s}  {'cand':>7s}  "
                 f"{'shift':>7s}"]
        for delta in self.biggest_shifts(top_n):
            lines.append(
                f"  {delta.op_type:>28s}  {delta.baseline_fraction:7.2%}"
                f"  {delta.candidate_fraction:7.2%}"
                f"  {delta.fraction_delta:+7.2%}")
        return "\n".join(lines)


def compare_profiles(baseline, candidate) -> ProfileComparison:
    """Diff two operation profiles (same or different workloads/devices)."""
    from repro.analysis.similarity import cosine_distance
    from .profile import shared_basis

    basis = shared_basis([baseline, candidate])
    base_fractions = baseline.fractions()
    cand_fractions = candidate.fractions()
    deltas = []
    for op_type in basis:
        deltas.append(TypeDelta(
            op_type=op_type,
            baseline_fraction=base_fractions.get(op_type, 0.0),
            candidate_fraction=cand_fractions.get(op_type, 0.0),
            baseline_seconds=(baseline.seconds_by_type.get(op_type, 0.0)
                              / baseline.num_steps),
            candidate_seconds=(candidate.seconds_by_type.get(op_type, 0.0)
                               / candidate.num_steps)))
    deltas.sort(key=lambda d: -abs(d.fraction_delta))
    return ProfileComparison(
        baseline_label=baseline.workload or "baseline",
        candidate_label=candidate.workload or "candidate",
        deltas=deltas,
        cosine_distance=cosine_distance(baseline.vector(basis),
                                        candidate.vector(basis)),
        baseline_step_seconds=baseline.seconds_per_step(),
        candidate_step_seconds=candidate.seconds_per_step())
