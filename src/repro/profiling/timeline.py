"""EEG-style execution timelines in Chrome trace format.

The paper's related work highlights EEG, Google's (unreleased) tracing
tool that "can reconstruct the dynamic execution timeline of TensorFlow
operations". This module provides that capability for our executor:
convert a :class:`~repro.profiling.tracer.Tracer` into the Chrome
``chrome://tracing`` / Perfetto JSON event format, one lane per step,
with op-class coloring categories. The output is plain JSON and can also
be inspected programmatically via :func:`timeline_events`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .taxonomy import FIGURE_GROUPS, GROUP_NAMES
from .tracer import Tracer


@dataclass(frozen=True)
class TimelineEvent:
    """One operation execution placed on the reconstructed timeline."""

    name: str
    op_type: str
    category: str
    step: int
    start_us: float
    duration_us: float


def timeline_events(tracer: Tracer) -> list[TimelineEvent]:
    """Reconstruct per-op start/duration from a trace.

    The executor is sequential, so each step's ops are laid end to end in
    recorded order; steps are offset by their measured totals.
    """
    events: list[TimelineEvent] = []
    step_offset = 0.0
    cursor_by_step: dict[int, float] = {}
    step_starts: dict[int, float] = {}
    offset = 0.0
    for step, total in enumerate(tracer.step_totals):
        step_starts[step] = offset
        offset += total * 1e6
    for record in tracer.records:
        start = cursor_by_step.get(record.step,
                                   step_starts.get(record.step, 0.0))
        duration = record.seconds * 1e6
        letter = FIGURE_GROUPS.get(record.op_class)
        category = GROUP_NAMES[letter] if letter else record.op_class.value
        events.append(TimelineEvent(
            name=record.op.name, op_type=record.op_type, category=category,
            step=record.step, start_us=start, duration_us=duration))
        cursor_by_step[record.step] = start + duration
    return events


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> str:
    """Serialize a trace as Chrome trace-event JSON.

    Load the result in ``chrome://tracing`` or Perfetto. Each step is a
    thread lane; op-class is the event category.
    """
    trace_events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": process_name},
    }]
    for step in range(tracer.num_steps):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": step,
            "args": {"name": f"step {step}"},
        })
    for event in timeline_events(tracer):
        trace_events.append({
            "name": event.op_type,
            "cat": event.category,
            "ph": "X",
            "pid": 0,
            "tid": event.step,
            "ts": event.start_us,
            "dur": event.duration_us,
            "args": {"op": event.name},
        })
    return json.dumps({"traceEvents": trace_events}, indent=None)
