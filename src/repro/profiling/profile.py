"""Aggregated operation-type profiles.

An :class:`OperationProfile` is a single row of the paper's Fig. 3: the
fraction of a workload's execution time attributable to each operation
type. Profiles can be computed from *measured* wall-clock times or from
*modeled* times under any device model — the latter is what makes the
parallelism (Fig. 6) and GPU (Fig. 5) analyses possible without the
paper's hardware, and is deterministic for benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.framework.device_model import DeviceModel
from repro.framework.graph import OpClass

from .taxonomy import FIGURE_GROUPS, GROUP_ORDER
from .tracer import Tracer


@dataclass(frozen=True)
class OperationProfile:
    """Execution time per operation type for one workload configuration."""

    workload: str
    seconds_by_type: dict[str, float]
    class_by_type: dict[str, OpClass]
    num_steps: int

    @classmethod
    def from_trace(cls, tracer: Tracer, workload: str = "",
                   device: DeviceModel | None = None) -> "OperationProfile":
        """Aggregate a trace into a per-op-type profile.

        Args:
            tracer: a tracer that has observed at least one step.
            workload: label for reports.
            device: if given, use modeled times under this device instead
                of measured wall-clock times.
        """
        seconds: dict[str, float] = {}
        classes: dict[str, OpClass] = {}
        for record in tracer.compute_records():
            if device is None:
                elapsed = record.seconds
            else:
                elapsed = device.op_time(record.op.work())
            seconds[record.op_type] = seconds.get(record.op_type, 0.0) + elapsed
            classes[record.op_type] = record.op_class
        return cls(workload=workload, seconds_by_type=seconds,
                   class_by_type=classes, num_steps=max(tracer.num_steps, 1))

    # -- basic views --------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_type.values())

    def seconds_per_step(self) -> float:
        return self.total_seconds / self.num_steps

    def fractions(self) -> dict[str, float]:
        """Fraction of total time per op type, descending."""
        total = self.total_seconds
        if total == 0.0:
            return {}
        items = sorted(self.seconds_by_type.items(), key=lambda kv: -kv[1])
        return {name: value / total for name, value in items}

    def top_types(self, n: int = 10) -> list[tuple[str, float]]:
        return list(self.fractions().items())[:n]

    @staticmethod
    def top_instances(tracer: Tracer, n: int = 10,
                      device: DeviceModel | None = None) -> list[tuple[str, str, float]]:
        """Heaviest individual operations (not types) in a trace.

        Returns ``(op_name, op_type, seconds_per_step)`` tuples — the
        hotspot view that answers "which *layer* is slow", complementing
        the type-level profiles.
        """
        seconds: dict[str, float] = {}
        types: dict[str, str] = {}
        for record in tracer.compute_records():
            elapsed = (record.seconds if device is None
                       else device.op_time(record.op.work()))
            seconds[record.op.name] = seconds.get(record.op.name, 0.0) \
                + elapsed
            types[record.op.name] = record.op_type
        steps = max(tracer.num_steps, 1)
        ranked = sorted(seconds.items(), key=lambda kv: -kv[1])[:n]
        return [(name, types[name], value / steps)
                for name, value in ranked]

    # -- Fig. 2: dominance curve ---------------------------------------------

    def dominance_curve(self) -> list[float]:
        """Cumulative time fraction when op types are sorted by weight.

        ``curve[k-1]`` is the fraction of runtime covered by the k heaviest
        operation types; the paper shows 5-15 types reach >= 90%.
        """
        return list(np.cumsum(list(self.fractions().values())))

    def types_for_coverage(self, coverage: float = 0.9) -> int:
        """How many op types are needed to reach ``coverage`` of runtime."""
        for index, value in enumerate(self.dominance_curve()):
            if value >= coverage:
                return index + 1
        return len(self.seconds_by_type)

    # -- Fig. 3: class breakdown ----------------------------------------------

    def class_breakdown(self, min_type_fraction: float = 0.0) -> dict[str, float]:
        """Time fraction per Fig. 3 group letter (A-G).

        ``min_type_fraction`` mirrors the paper's presentation choice of
        dropping op types under 1% (so rows sum to between 0.9 and 1.0).
        """
        fractions = self.fractions()
        breakdown = {letter: 0.0 for letter in GROUP_ORDER}
        for op_type, fraction in fractions.items():
            if fraction < min_type_fraction:
                continue
            letter = FIGURE_GROUPS.get(self.class_by_type[op_type])
            if letter is not None:
                breakdown[letter] += fraction
        return breakdown

    # -- Fig. 4: similarity vectors ---------------------------------------------

    def vector(self, op_type_order: list[str]) -> np.ndarray:
        """This profile as a vector over a shared op-type basis."""
        fractions = self.fractions()
        return np.array([fractions.get(name, 0.0) for name in op_type_order],
                        dtype=np.float64)


def shared_basis(profiles: list[OperationProfile]) -> list[str]:
    """Union of op types across profiles, in stable sorted order."""
    names: set[str] = set()
    for profile in profiles:
        names.update(profile.seconds_by_type)
    return sorted(names)
