"""Trace serialization: persist op-level traces as JSON-lines files.

Fathom's purpose is comparative measurement — across machines, hardware
proposals, or framework versions. That requires traces to outlive the
process that produced them. This module writes a
:class:`~repro.profiling.tracer.Tracer` to a self-contained ``.jsonl``
file (op name/type/class, measured seconds, step, and the full analytic
work estimate) and loads it back as a :class:`SavedTrace` that is
drop-in compatible with :class:`~repro.profiling.profile.OperationProfile`
— so a profile captured on one machine can be re-priced under any device
model on another.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.framework.cost_model import WorkEstimate
from repro.framework.graph import OpClass

from .tracer import Tracer

FORMAT_VERSION = 1


@dataclass(frozen=True)
class SavedOp:
    """Stand-in for a live Operation: just enough for profiling."""

    name: str
    type_name: str
    op_class: OpClass
    _work: WorkEstimate

    def work(self) -> WorkEstimate:
        return self._work


@dataclass(frozen=True)
class SavedRecord:
    """Stand-in for an OpRecord, backed by deserialized data."""

    op: SavedOp
    seconds: float
    step: int

    @property
    def op_type(self) -> str:
        return self.op.type_name

    @property
    def op_class(self) -> OpClass:
        return self.op.op_class


class SavedTrace:
    """A deserialized trace, API-compatible with Tracer for profiling."""

    def __init__(self, records: list[SavedRecord], step_totals: list[float],
                 step_peak_bytes: list[int], metadata: dict,
                 total_op_seconds: float | None = None,
                 events: list | None = None,
                 compile_records: list[dict] | None = None):
        self.records = records
        self.step_totals = step_totals
        self.step_peak_bytes = step_peak_bytes
        self.metadata = metadata
        self.events = events or []
        self.compile_records = compile_records or []
        self._total_op_seconds = total_op_seconds

    def failure_events(self, kind: str | None = None) -> list:
        events = [e for e in self.events
                  if not hasattr(e, "pass_name")
                  and not hasattr(e, "outcome")
                  and not hasattr(e, "worker")
                  and not hasattr(e, "oracle")
                  and not hasattr(e, "store")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def degradation_events(self, kind: str | None = None) -> list:
        """Self-healing events persisted with the trace, in emit order."""
        events = [e for e in self.events if hasattr(e, "pass_name")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def serving_events(self, kind: str | None = None) -> list:
        """Serving SLO events persisted with the trace, in emit order."""
        events = [e for e in self.events if hasattr(e, "outcome")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def fleet_events(self, kind: str | None = None) -> list:
        """The fleet-scoped slice of :meth:`serving_events`."""
        return [e for e in self.serving_events(kind)
                if getattr(e, "zone", None) is not None
                or getattr(e, "server", None) is not None]

    def cluster_events(self, kind: str | None = None) -> list:
        """Distributed-training events persisted with the trace."""
        events = [e for e in self.events if hasattr(e, "worker")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def campaign_events(self, kind: str | None = None) -> list:
        """Chaos-campaign events persisted with the trace."""
        events = [e for e in self.events if hasattr(e, "oracle")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def storage_events(self, kind: str | None = None) -> list:
        """Checkpoint-durability events persisted with the trace."""
        events = [e for e in self.events if hasattr(e, "store")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def fault_seconds(self) -> float:
        return sum(e.seconds_lost for e in self.events)

    @property
    def num_steps(self) -> int:
        return len(self.step_totals)

    def compute_records(self) -> list[SavedRecord]:
        # Structural ops are filtered at save time.
        return self.records

    def total_op_seconds(self) -> float:
        if self._total_op_seconds is not None:
            return self._total_op_seconds
        return sum(r.seconds for r in self.records)

    def framework_overhead_fraction(self) -> float:
        total = sum(self.step_totals)
        if total == 0.0:
            return 0.0
        return max(0.0, total - self.total_op_seconds()) / total


def save_trace(tracer: Tracer, path: str | os.PathLike,
               metadata: dict | None = None) -> int:
    """Write a tracer's compute records to ``path``; returns record count."""
    records = tracer.compute_records()
    # Failure, degradation, and serving events share one ordered stream
    # in the tracer; persist them as separate header lists (each family
    # carries different fields) tagged with a shared ``seq`` so loading
    # restores the interleaved emit order exactly.
    failure_blobs: list[dict] = []
    degradation_blobs: list[dict] = []
    serving_blobs: list[dict] = []
    cluster_blobs: list[dict] = []
    campaign_blobs: list[dict] = []
    storage_blobs: list[dict] = []
    for seq, e in enumerate(getattr(tracer, "events", [])):
        if hasattr(e, "store"):
            storage_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "store": e.store, "key": e.key,
                 "seconds_lost": e.seconds_lost, "detail": e.detail})
        elif hasattr(e, "oracle"):
            campaign_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "oracle": e.oracle, "harness": e.harness, "ok": e.ok,
                 "seconds_lost": e.seconds_lost, "detail": e.detail})
        elif hasattr(e, "worker"):
            cluster_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "worker": e.worker,
                 "link": list(e.link) if e.link is not None else None,
                 "strategy": e.strategy, "seconds_lost": e.seconds_lost,
                 "detail": e.detail})
        elif hasattr(e, "pass_name"):
            degradation_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "op": e.op_name, "tier": e.tier, "pass": e.pass_name,
                 "attempt": e.attempt, "seconds_lost": e.seconds_lost,
                 "detail": e.detail})
        elif hasattr(e, "outcome"):
            serving_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "outcome": e.outcome, "replica": e.replica,
                 "latency_ms": e.latency_ms, "deadline_ms": e.deadline_ms,
                 "seconds_lost": e.seconds_lost, "detail": e.detail,
                 # fleet scoping (zone outages, re-routes, rollouts);
                 # None for single-server events
                 "zone": getattr(e, "zone", None),
                 "server": getattr(e, "server", None)})
        else:
            failure_blobs.append(
                {"seq": seq, "step": e.step, "kind": e.kind,
                 "op": e.op_name, "attempt": e.attempt,
                 "seconds_lost": e.seconds_lost, "detail": e.detail})
    with open(path, "w") as handle:
        header = {"kind": "repro-trace", "version": FORMAT_VERSION,
                  "num_steps": tracer.num_steps,
                  "step_totals": list(tracer.step_totals),
                  "step_peak_bytes": list(tracer.step_peak_bytes),
                  # includes structural ops, which records below omit
                  "total_op_seconds": tracer.total_op_seconds(),
                  "failure_events": failure_blobs,
                  "degradation_events": degradation_blobs,
                  "serving_events": serving_blobs,
                  "cluster_events": cluster_blobs,
                  "campaign_events": campaign_blobs,
                  "storage_events": storage_blobs,
                  # plan-compilation summaries (pass stats, memory plan)
                  "compile_records": list(
                      getattr(tracer, "compile_records", [])),
                  "metadata": metadata or {}}
        handle.write(json.dumps(header) + "\n")
        for record in records:
            work = record.op.work()
            handle.write(json.dumps({
                "op": record.op.name,
                "type": record.op_type,
                "class": record.op_class.name,
                "seconds": record.seconds,
                "step": record.step,
                "flops": work.flops,
                "bytes": work.bytes_moved,
                "trips": work.trip_count,
            }) + "\n")
    return len(records)


def load_trace(path: str | os.PathLike) -> SavedTrace:
    """Load a trace written by :func:`save_trace`."""
    with open(path) as handle:
        header = json.loads(handle.readline())
        if header.get("kind") != "repro-trace":
            raise ValueError(f"{path}: not a repro trace file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}")
        records = []
        for line in handle:
            if not line.strip():
                continue
            blob = json.loads(line)
            op = SavedOp(name=blob["op"], type_name=blob["type"],
                         op_class=OpClass[blob["class"]],
                         _work=WorkEstimate(flops=blob["flops"],
                                            bytes_moved=blob["bytes"],
                                            trip_count=blob["trips"]))
            records.append(SavedRecord(op=op, seconds=blob["seconds"],
                                       step=blob["step"]))
    from repro.framework.resilience import FailureEvent
    from repro.framework.session import DegradationEvent
    tagged: list[tuple[int, object]] = []
    for blob in header.get("failure_events", []):
        tagged.append((blob.get("seq", len(tagged)), FailureEvent(
            step=blob["step"], kind=blob["kind"], op_name=blob.get("op"),
            attempt=blob.get("attempt", 0),
            seconds_lost=blob.get("seconds_lost", 0.0),
            detail=blob.get("detail", ""))))
    for blob in header.get("degradation_events", []):
        tagged.append((blob.get("seq", len(tagged)), DegradationEvent(
            step=blob["step"], kind=blob["kind"], op_name=blob.get("op"),
            tier=blob.get("tier"), pass_name=blob.get("pass"),
            attempt=blob.get("attempt", 0),
            seconds_lost=blob.get("seconds_lost", 0.0),
            detail=blob.get("detail", ""))))
    if header.get("serving_events"):
        from repro.serving.events import ServingEvent
        for blob in header["serving_events"]:
            tagged.append((blob.get("seq", len(tagged)), ServingEvent(
                step=blob["step"], kind=blob["kind"],
                outcome=blob.get("outcome"), replica=blob.get("replica"),
                latency_ms=blob.get("latency_ms", 0.0),
                deadline_ms=blob.get("deadline_ms", 0.0),
                seconds_lost=blob.get("seconds_lost", 0.0),
                detail=blob.get("detail", ""),
                zone=blob.get("zone"), server=blob.get("server"))))
    if header.get("cluster_events"):
        from repro.distributed.events import ClusterEvent
        for blob in header["cluster_events"]:
            link = blob.get("link")
            tagged.append((blob.get("seq", len(tagged)), ClusterEvent(
                step=blob["step"], kind=blob["kind"],
                worker=blob.get("worker"),
                link=tuple(link) if link is not None else None,
                strategy=blob.get("strategy"),
                seconds_lost=blob.get("seconds_lost", 0.0),
                detail=blob.get("detail", ""))))
    if header.get("campaign_events"):
        from repro.chaos.events import CampaignEvent
        for blob in header["campaign_events"]:
            tagged.append((blob.get("seq", len(tagged)), CampaignEvent(
                step=blob["step"], kind=blob["kind"],
                oracle=blob.get("oracle"), harness=blob.get("harness"),
                ok=blob.get("ok"),
                seconds_lost=blob.get("seconds_lost", 0.0),
                detail=blob.get("detail", ""))))
    if header.get("storage_events"):
        from repro.storage.events import StorageEvent
        for blob in header["storage_events"]:
            tagged.append((blob.get("seq", len(tagged)), StorageEvent(
                step=blob["step"], kind=blob["kind"],
                store=blob.get("store", -1), key=blob.get("key", ""),
                seconds_lost=blob.get("seconds_lost", 0.0),
                detail=blob.get("detail", ""))))
    tagged.sort(key=lambda pair: pair[0])
    events = [event for _, event in tagged]
    return SavedTrace(records=records,
                      step_totals=header["step_totals"],
                      step_peak_bytes=header.get("step_peak_bytes", []),
                      metadata=header.get("metadata", {}),
                      total_op_seconds=header.get("total_op_seconds"),
                      events=events,
                      compile_records=header.get("compile_records", []))
