"""The operation-class taxonomy of the paper's Fig. 3.

The figure groups operation types into seven classes labelled A-G:

====== =========================
Group  Class
====== =========================
A      Matrix Operations
B      Convolution
C      Elementwise Arithmetic
D      Reduction and Expansion
E      Random Sampling
F      Optimization
G      Data Movement
====== =========================

Every operation type in the framework carries an
:class:`~repro.framework.graph.OpClass`; this module maps those classes
onto the figure's letters and provides the canonical group ordering used
by the breakdown heatmap.
"""

from __future__ import annotations

from repro.framework.graph import OpClass, Operation

FIGURE_GROUPS: dict[OpClass, str] = {
    OpClass.MATRIX: "A",
    OpClass.CONVOLUTION: "B",
    OpClass.ELEMENTWISE: "C",
    OpClass.REDUCTION_EXPANSION: "D",
    OpClass.RANDOM_SAMPLING: "E",
    OpClass.OPTIMIZATION: "F",
    OpClass.DATA_MOVEMENT: "G",
}

GROUP_ORDER = ["A", "B", "C", "D", "E", "F", "G"]

GROUP_NAMES: dict[str, str] = {
    letter: op_class.value for op_class, letter in FIGURE_GROUPS.items()
}


def figure_group(op: Operation) -> str | None:
    """Fig. 3 group letter for ``op``, or None for structural ops."""
    return FIGURE_GROUPS.get(op.op_class)


def group_of_class(op_class: OpClass) -> str | None:
    return FIGURE_GROUPS.get(op_class)
