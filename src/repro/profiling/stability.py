"""Execution-time stationarity statistics (the paper's Fig. 1).

The paper justifies operation-level sampling by showing that operation
execution times are stationary with low variance across the life of a
program. This module computes the same evidence from a trace: per-op-type
sample distributions across steps, their coefficients of variation, and a
simple drift check comparing the first and second halves of the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tracer import Tracer


@dataclass(frozen=True)
class StabilityStats:
    """Distribution of one op type's per-step execution time."""

    op_type: str
    samples: np.ndarray  # seconds per step

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    @property
    def coefficient_of_variation(self) -> float:
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    @property
    def robust_dispersion(self) -> float:
        """IQR / median: outlier-resistant relative spread.

        Preferred over the coefficient of variation on shared machines,
        where scheduler preemption injects sporadic large outliers into
        otherwise stationary op timings.
        """
        median = self.median
        if median == 0.0:
            return 0.0
        q75, q25 = np.percentile(self.samples, [75, 25])
        return float((q75 - q25) / median)

    def drift(self) -> float:
        """Relative difference between first-half and second-half means.

        Near zero for a stationary distribution.
        """
        half = len(self.samples) // 2
        if half == 0:
            return 0.0
        first, second = self.samples[:half].mean(), self.samples[half:].mean()
        if first == 0.0:
            return 0.0
        return float(abs(second - first) / first)

    def histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Sample-count histogram, the visual content of Fig. 1."""
        return np.histogram(self.samples, bins=bins)


def per_step_type_seconds(tracer: Tracer) -> dict[str, np.ndarray]:
    """Seconds per op type per step: ``{op_type: array of num_steps}``."""
    steps = tracer.num_steps
    totals: dict[str, np.ndarray] = {}
    for record in tracer.compute_records():
        if record.op_type not in totals:
            totals[record.op_type] = np.zeros(steps)
        totals[record.op_type][record.step] += record.seconds
    return totals


def stability_report(tracer: Tracer, warmup_steps: int = 1,
                     top_n: int = 10) -> list[StabilityStats]:
    """Stability stats for the ``top_n`` heaviest op types.

    The first ``warmup_steps`` steps are dropped: they include one-time
    costs (variable initialization, allocator warmup) that the paper's
    steady-state sampling also excludes.
    """
    per_type = per_step_type_seconds(tracer)
    stats = []
    for op_type, samples in per_type.items():
        trimmed = samples[warmup_steps:]
        if len(trimmed) == 0 or trimmed.sum() == 0.0:
            continue
        stats.append(StabilityStats(op_type=op_type, samples=trimmed))
    stats.sort(key=lambda s: -s.samples.sum())
    return stats[:top_n]
