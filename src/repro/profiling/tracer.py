"""Operation-level execution tracing.

The paper's measurement methodology (Section V-A) hinges on instrumenting
the framework's primitive operations rather than profiling at the script
or hardware-counter level, because only the operation level can ascribe
runtime behaviour to model features. :class:`Tracer` plugs into
``Session.run`` and records one :class:`OpRecord` per executed operation
per step, plus per-step totals for framework-overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.framework.graph import OpClass, Operation
from repro.framework.ops.state_ops import Const, Group, Placeholder, VariableOp

# Structural ops whose "execution" is bookkeeping, excluded from profiles
# the way the paper's tools ignore framework scaffolding.
_STRUCTURAL_TYPES = (Const, Placeholder, VariableOp, Group)


@dataclass(frozen=True)
class OpRecord:
    """One operation execution observed during one step."""

    op: Operation
    seconds: float
    step: int

    @property
    def op_type(self) -> str:
        return self.op.type_name

    @property
    def op_class(self) -> OpClass:
        return self.op.op_class


@dataclass
class Tracer:
    """Collects per-operation timing records across session runs.

    Pass an instance as ``Session.run(..., tracer=tracer)``. Each ``run``
    call is one *step* (one minibatch / one inference), matching the
    paper's observation that deep learning programs are naturally
    separable on update-step boundaries.
    """

    records: list[OpRecord] = field(default_factory=list)
    step_totals: list[float] = field(default_factory=list)
    step_peak_bytes: list[int] = field(default_factory=list)
    #: structured FailureEvent records emitted by the resilient runner
    #: (see :mod:`repro.framework.resilience`), interleaved with steps
    events: list = field(default_factory=list)
    #: plan-compilation summaries (one dict per compilation the session
    #: performed while this tracer was attached; see ExecutionPlan.summary)
    compile_records: list[dict] = field(default_factory=list)
    _current_step: int = 0

    def record(self, op: Operation, seconds: float) -> None:
        self.records.append(OpRecord(op=op, seconds=seconds,
                                     step=self._current_step))

    def record_compile(self, summary: dict) -> None:
        """Attach one plan-compilation summary (the session's hook)."""
        self.compile_records.append(summary)

    def finish_step(self, total_seconds: float,
                    peak_live_bytes: int = 0) -> None:
        self.step_totals.append(total_seconds)
        self.step_peak_bytes.append(peak_live_bytes)
        self._current_step += 1

    def record_event(self, event) -> None:
        """Attach a recovery/failure event (the resilient-runner hook)."""
        self.events.append(event)

    # -- summaries ---------------------------------------------------------

    @property
    def num_steps(self) -> int:
        return self._current_step

    def compute_records(self) -> list[OpRecord]:
        """Records for real compute ops (structural bookkeeping removed)."""
        return [r for r in self.records
                if not isinstance(r.op, _STRUCTURAL_TYPES)]

    def total_op_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def framework_overhead_fraction(self) -> float:
        """Fraction of wall time spent *outside* operations.

        The paper reports this is typically below 1-2% for TensorFlow;
        the executor's scheduling loop is similarly thin.
        """
        total = sum(self.step_totals)
        if total == 0.0:
            return 0.0
        return max(0.0, total - self.total_op_seconds()) / total

    def records_for_step(self, step: int) -> list[OpRecord]:
        return [r for r in self.records if r.step == step]

    def peak_live_bytes(self) -> int:
        """Largest intermediate-tensor footprint seen in any step."""
        return max(self.step_peak_bytes, default=0)

    def failure_events(self, kind: str | None = None) -> list:
        """Recovery events recorded so far, optionally filtered by kind.

        Degradation events (which carry a ``pass_name`` field), serving
        events (``outcome`` field), cluster events (``worker`` field),
        campaign events (``oracle`` field), and storage events
        (``store`` field) share the ``record_event`` hook but are
        reported separately via :meth:`degradation_events`,
        :meth:`serving_events`, :meth:`cluster_events`,
        :meth:`campaign_events`, and :meth:`storage_events`.
        """
        events = [e for e in self.events
                  if not hasattr(e, "pass_name")
                  and not hasattr(e, "outcome")
                  and not hasattr(e, "worker")
                  and not hasattr(e, "oracle")
                  and not hasattr(e, "store")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def degradation_events(self, kind: str | None = None) -> list:
        """Self-healing events (tier drops, quarantines, guardrails).

        Distinguished from failure events by duck-typing on the
        ``pass_name`` field, so the tracer stays decoupled from both
        event classes.
        """
        events = [e for e in self.events if hasattr(e, "pass_name")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def serving_events(self, kind: str | None = None) -> list:
        """SLO events from the inference-serving layer.

        One event per terminal request outcome plus breaker transitions,
        hedges, and replica restarts (see
        :class:`repro.serving.events.ServingEvent`) — and, for fleet
        runs, the fleet-scoped lifecycle (zone outages, re-routes,
        ejections, scaling, rollouts; see :meth:`fleet_events`).
        Distinguished from the other event families by duck-typing on
        the ``outcome`` field.
        """
        events = [e for e in self.events if hasattr(e, "outcome")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def fleet_events(self, kind: str | None = None) -> list:
        """The fleet-scoped slice of :meth:`serving_events`.

        Fleet events carry a ``zone`` or ``server`` attribution (see
        :data:`repro.serving.events.FLEET_EVENT_KINDS`); per-server
        events leave both ``None`` and are excluded here.
        """
        events = [e for e in self.serving_events(kind)
                  if getattr(e, "zone", None) is not None
                  or getattr(e, "server", None) is not None]
        return events

    def cluster_events(self, kind: str | None = None) -> list:
        """Distributed-training events (checkpoints, crashes, stragglers,
        retransmits, fallbacks, membership — see
        :class:`repro.distributed.events.ClusterEvent`). Distinguished
        from the other event families by duck-typing on the ``worker``
        field.
        """
        events = [e for e in self.events if hasattr(e, "worker")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def campaign_events(self, kind: str | None = None) -> list:
        """Chaos-campaign events (schedule executions, oracle verdicts,
        violations, minimization results — see
        :class:`repro.chaos.events.CampaignEvent`). Distinguished from
        the other event families by duck-typing on the ``oracle`` field.
        """
        events = [e for e in self.events if hasattr(e, "oracle")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def storage_events(self, kind: str | None = None) -> list:
        """Checkpoint-durability events (quorum commits, replica
        failures, failovers, read-repairs, scrub passes and heals,
        garbage collection — see
        :class:`repro.storage.events.StorageEvent`). Distinguished from
        the other event families by duck-typing on the ``store`` field.
        """
        events = [e for e in self.events if hasattr(e, "store")]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def fault_seconds(self) -> float:
        """Wall-clock time attributed to failed attempts and recovery.

        Sums ``seconds_lost`` over all failure events, letting profiles
        separate productive step time from time lost to faults.
        """
        return sum(e.seconds_lost for e in self.events)

    def clear(self) -> None:
        self.records.clear()
        self.step_totals.clear()
        self.step_peak_bytes.clear()
        self.events.clear()
        self.compile_records.clear()
        self._current_step = 0
