"""Operation-level profiling tools built around the framework's tracing hook.

The measurement stack mirrors the paper's Section V-A methodology:
``Tracer`` observes every operation execution inside ``Session.run``,
``OperationProfile`` aggregates traces into per-op-type time fractions,
``taxonomy`` maps op types onto the Fig. 3 A-G classes, and ``stability``
provides the Fig. 1 stationarity evidence.
"""

from .comparison import ProfileComparison, TypeDelta, compare_profiles
from .profile import OperationProfile, shared_basis
from .serialize import SavedTrace, load_trace, save_trace
from .stability import StabilityStats, per_step_type_seconds, stability_report
from .taxonomy import (FIGURE_GROUPS, GROUP_NAMES, GROUP_ORDER, figure_group,
                       group_of_class)
from .timeline import TimelineEvent, timeline_events, to_chrome_trace
from .tracer import OpRecord, Tracer

__all__ = [
    "ProfileComparison", "TypeDelta", "compare_profiles",
    "OperationProfile", "shared_basis",
    "SavedTrace", "load_trace", "save_trace",
    "StabilityStats", "per_step_type_seconds", "stability_report",
    "FIGURE_GROUPS", "GROUP_NAMES", "GROUP_ORDER", "figure_group",
    "group_of_class",
    "TimelineEvent", "timeline_events", "to_chrome_trace",
    "OpRecord", "Tracer",
]
