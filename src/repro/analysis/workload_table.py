"""Table II: the Fathom workloads.

Regenerated directly from the workload registry's metadata, so the table
can never drift from the implementations. The regeneration benchmark
asserts the rows match the paper (model names, years, neuronal styles,
layer counts, learning tasks, datasets).
"""

from __future__ import annotations

from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadMetadata


def table2_rows() -> list[WorkloadMetadata]:
    """Metadata rows in the paper's Table II order."""
    return [workload_cls.metadata for workload_cls in WORKLOADS.values()]


def render_table2() -> str:
    rows = table2_rows()
    widths = {
        "name": max(len(r.name) for r in rows),
        "style": max(len(r.neuronal_style) for r in rows),
        "task": max(len(r.learning_task) for r in rows),
        "dataset": max(len(r.dataset) for r in rows),
    }
    lines = ["Table II: The Fathom Workloads",
             (f"{'model':<{widths['name']}s}  year  "
              f"{'neuronal style':<{widths['style']}s}  layers  "
              f"{'task':<{widths['task']}s}  {'dataset':<{widths['dataset']}s}"
              "  purpose")]
    for row in rows:
        lines.append(
            f"{row.name:<{widths['name']}s}  {row.year:4d}  "
            f"{row.neuronal_style:<{widths['style']}s}  {row.layers:6d}  "
            f"{row.learning_task:<{widths['task']}s}  "
            f"{row.dataset:<{widths['dataset']}s}  {row.description}")
    return "\n".join(lines)
