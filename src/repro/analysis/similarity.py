"""Performance similarity between workloads (the paper's Fig. 4).

The method is exactly Section V-C's: each workload's operation-type
profile is a vector in high-dimensional space; pairwise similarity is
cosine similarity, inverted into the distance ``1 - cos(A, B)``; and
agglomerative clustering with *centroidal linkage* — greedily merge the
two closest vectors, replace them with their centroid, repeat — yields a
hierarchical dendrogram.

The clustering is implemented from first principles (it is the paper's
method, not an import); the test suite cross-checks it against
``scipy.cluster.hierarchy``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.profile import OperationProfile, shared_basis


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - (A.B)/(|A||B|)``, the paper's distance metric."""
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0.0:
        return 1.0
    return float(1.0 - np.dot(a, b) / norm)


def distance_matrix(vectors: np.ndarray) -> np.ndarray:
    """Symmetric pairwise cosine-distance matrix."""
    count = vectors.shape[0]
    distances = np.zeros((count, count))
    for i in range(count):
        for j in range(i + 1, count):
            distances[i, j] = distances[j, i] = cosine_distance(
                vectors[i], vectors[j])
    return distances


@dataclass(frozen=True)
class Merge:
    """One agglomeration step.

    ``left``/``right`` index either original items (< n) or previously
    created clusters (>= n, in creation order), scipy-linkage style.
    """

    left: int
    right: int
    distance: float
    size: int


@dataclass(frozen=True)
class Dendrogram:
    """A full agglomerative clustering of named profile vectors."""

    labels: list[str]
    merges: list[Merge]

    def merge_heights(self) -> list[float]:
        return [m.distance for m in self.merges]

    def cluster_members(self, cluster_index: int) -> list[int]:
        """Original item indices inside cluster ``cluster_index``.

        Indices < n refer to single items; >= n to merges.
        """
        count = len(self.labels)
        if cluster_index < count:
            return [cluster_index]
        merge = self.merges[cluster_index - count]
        return (self.cluster_members(merge.left)
                + self.cluster_members(merge.right))

    def leaf_order(self) -> list[int]:
        """Display order of the leaves (left-to-right dendrogram walk)."""
        if not self.merges:
            return list(range(len(self.labels)))
        return self.cluster_members(len(self.labels) + len(self.merges) - 1)

    def cophenetic_distance(self, i: int, j: int) -> float:
        """Height of the first merge joining items ``i`` and ``j``."""
        count = len(self.labels)
        for merge_index, merge in enumerate(self.merges):
            members = set(self.cluster_members(count + merge_index))
            if i in members and j in members:
                return merge.distance
        raise ValueError(f"items {i} and {j} are never merged")


def agglomerate(vectors: np.ndarray, labels: list[str]) -> Dendrogram:
    """Centroid-linkage agglomerative clustering of row vectors."""
    count = vectors.shape[0]
    if count != len(labels):
        raise ValueError("one label per vector required")
    # Active clusters: id -> (centroid, member count). Ids < count are
    # leaves; merged clusters get ids count, count+1, ...
    active: dict[int, tuple[np.ndarray, int]] = {
        i: (vectors[i].astype(np.float64), 1) for i in range(count)}
    merges: list[Merge] = []
    next_id = count
    while len(active) > 1:
        ids = sorted(active)
        best: tuple[float, int, int] | None = None
        for pos, left in enumerate(ids):
            for right in ids[pos + 1:]:
                dist = cosine_distance(active[left][0], active[right][0])
                if best is None or dist < best[0]:
                    best = (dist, left, right)
        dist, left, right = best
        centroid_left, size_left = active.pop(left)
        centroid_right, size_right = active.pop(right)
        size = size_left + size_right
        centroid = (centroid_left * size_left
                    + centroid_right * size_right) / size
        merges.append(Merge(left=left, right=right, distance=dist, size=size))
        active[next_id] = (centroid, size)
        next_id += 1
    return Dendrogram(labels=labels, merges=merges)


def cluster_profiles(profiles: list[OperationProfile]) -> Dendrogram:
    """Fig. 4: hierarchical similarity of workload operation profiles."""
    basis = shared_basis(profiles)
    vectors = np.stack([p.vector(basis) for p in profiles])
    return agglomerate(vectors, [p.workload for p in profiles])


def profile_distance(a: OperationProfile, b: OperationProfile) -> float:
    """Pairwise cosine distance between two profiles."""
    basis = shared_basis([a, b])
    return cosine_distance(a.vector(basis), b.vector(basis))
