"""The Section V-A placement experiment: CPU fall-back across the PCI bus.

For each workload, simulate three executions of one training step:

* ``cpu``  — everything on the (single-thread) CPU;
* ``gpu``  — everything on the GPU (the counterfactual TF v0.8 couldn't
  deliver for ops without GPU kernels);
* ``fallback`` — TF v0.8's actual behaviour: GPU except the op types
  without GPU kernels, with every cross-device tensor paying a PCIe
  transfer.

The paper's claim is that the fall-back mode "causes crippling
performance problems"; the study quantifies the slowdown and the
transfer volume responsible for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.placement import (DEFAULT_CPU_ONLY_TYPES,
                                       TransferModel, default_devices,
                                       gpu_with_cpu_fallback, place_all,
                                       simulate_schedule)
from repro.workloads.base import FathomModel


@dataclass(frozen=True)
class PlacementPoint:
    """Makespans (seconds/step) for one workload's three placements."""

    workload: str
    cpu_seconds: float
    gpu_seconds: float
    fallback_seconds: float
    fallback_cpu_ops: int
    transfer_mb: float

    @property
    def fallback_penalty(self) -> float:
        """Fallback time relative to pure GPU (>= 1; 1 if no CPU ops)."""
        return self.fallback_seconds / self.gpu_seconds

    @property
    def fallback_vs_cpu(self) -> float:
        """Fallback time relative to pure CPU (< 1 still beats the CPU)."""
        return self.fallback_seconds / self.cpu_seconds


def study_workload(model: FathomModel,
                   transfer: TransferModel | None = None) -> PlacementPoint:
    """Simulate the three placements over one training-step subgraph."""
    ops = model.graph.subgraph([model.loss, model.train_step])
    devices = default_devices()
    cpu_result = simulate_schedule(ops, place_all("cpu"), devices, transfer)
    gpu_result = simulate_schedule(ops, place_all("gpu"), devices, transfer)
    fallback = simulate_schedule(ops, gpu_with_cpu_fallback(), devices,
                                 transfer)
    return PlacementPoint(
        workload=model.name,
        cpu_seconds=cpu_result.makespan,
        gpu_seconds=gpu_result.makespan,
        fallback_seconds=fallback.makespan,
        fallback_cpu_ops=fallback.ops_per_device.get("cpu", 0),
        transfer_mb=fallback.transfer_bytes / 1e6)


def latency_sweep(model: FathomModel,
                  latencies=(10e-6, 100e-6, 1e-3)) -> dict[float, PlacementPoint]:
    """The fall-back penalty as a function of boundary-crossing cost.

    The paper's testbed paid substantial synchronization cost per
    CPU<->GPU handoff; sweeping the modeled latency shows which workloads
    are immune (no fall-back ops on the critical path) and which are
    crippled — the point where fall-back execution drops below pure-CPU
    speed is where "we opt for running most experiments on a CPU" becomes
    the right call.
    """
    return {latency: study_workload(model,
                                    TransferModel(latency=latency))
            for latency in latencies}


def render_placement_table(points: list[PlacementPoint]) -> str:
    width = max(len(p.workload) for p in points)
    lines = ["Section V-A: GPU execution with CPU fall-back ops "
             "(simulated, one training step)",
             (f"{'workload':>{width}s}  {'cpu':>9s}  {'gpu':>9s}  "
              f"{'fallback':>9s}  {'penalty':>8s}  {'cpu ops':>7s}  "
              f"{'PCIe MB':>8s}")]
    for point in points:
        lines.append(
            f"{point.workload:>{width}s}  {point.cpu_seconds * 1e3:7.1f}ms"
            f"  {point.gpu_seconds * 1e3:7.1f}ms"
            f"  {point.fallback_seconds * 1e3:7.1f}ms"
            f"  {point.fallback_penalty:7.1f}x"
            f"  {point.fallback_cpu_ops:7d}"
            f"  {point.transfer_mb:8.2f}")
    return "\n".join(lines)
