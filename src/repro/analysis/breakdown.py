"""Fig. 3: execution-time breakdown by operation class.

One row per workload, one column per Fig. 3 group (A Matrix Operations,
B Convolution, C Elementwise Arithmetic, D Reduction and Expansion,
E Random Sampling, F Optimization, G Data Movement). Following the
paper's presentation, op types below a 1% time share can be dropped, so
rows sum to between ~0.9 and 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.profile import OperationProfile
from repro.profiling.taxonomy import GROUP_NAMES, GROUP_ORDER


@dataclass(frozen=True)
class BreakdownMatrix:
    """Workload x op-class time-fraction matrix."""

    workloads: list[str]
    groups: list[str]
    values: np.ndarray  # (workloads, groups)

    def row(self, workload: str) -> dict[str, float]:
        index = self.workloads.index(workload)
        return dict(zip(self.groups, self.values[index]))

    def dominant_group(self, workload: str) -> str:
        row = self.row(workload)
        return max(row, key=row.get)

    def render(self) -> str:
        """ASCII heatmap in the style of the paper's Fig. 3."""
        shades = " .:-=+*#%@"
        width = max(len(name) for name in self.workloads)
        lines = ["Breakdown of execution time by operation type "
                 "(rows may sum to <1; <1% op types dropped)",
                 " " * (width + 2) + "  ".join(f"{g:>5s}"
                                               for g in self.groups)]
        for name, row in zip(self.workloads, self.values):
            cells = []
            for value in row:
                shade = shades[min(int(value * (len(shades) - 1) + 0.5),
                                   len(shades) - 1)]
                cells.append(f"{value:4.0%}{shade}")
            lines.append(f"{name:>{width}s}  " + "  ".join(cells))
        legend = "  ".join(f"{letter}={GROUP_NAMES[letter]}"
                           for letter in self.groups)
        lines.append(legend)
        return "\n".join(lines)


def breakdown_matrix(profiles: list[OperationProfile],
                     min_type_fraction: float = 0.01) -> BreakdownMatrix:
    """Assemble the Fig. 3 matrix from per-workload profiles."""
    rows = [profile.class_breakdown(min_type_fraction=min_type_fraction)
            for profile in profiles]
    values = np.array([[row[group] for group in GROUP_ORDER]
                       for row in rows])
    return BreakdownMatrix(workloads=[p.workload for p in profiles],
                           groups=list(GROUP_ORDER), values=values)
