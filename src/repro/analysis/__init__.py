"""Analyses that regenerate the paper's tables and figures.

=========== ==================================================
Artifact    Module
=========== ==================================================
Table I     :mod:`repro.analysis.survey`
Table II    :mod:`repro.analysis.workload_table`
Fig. 1      :mod:`repro.profiling.stability`
Fig. 2      :mod:`repro.analysis.dominance`
Fig. 3      :mod:`repro.analysis.breakdown`
Fig. 4      :mod:`repro.analysis.similarity`
Fig. 5      :mod:`repro.analysis.train_vs_infer`
Fig. 6      :mod:`repro.analysis.parallelism`
Suite-wide  :mod:`repro.analysis.suite`
=========== ==================================================
"""

from .accelerator import (PRESETS, AcceleratorResult, accelerated_fraction,
                          render_what_if, what_if)
from .breakdown import BreakdownMatrix, breakdown_matrix
from .census import WorkloadCensus, census, render_census
from .dominance import (DominanceCurve, dominance_curves,
                        render_dominance_table)
from .phases import PhaseSplit, render_phase_table, split_phases
from .placement_study import (PlacementPoint, latency_sweep,
                              render_placement_table, study_workload)
from .roofline import RooflinePoint, classify_op, render_roofline, roofline
from .scaling import (ClusterModel, ScalingCurve, render_scaling,
                      scaling_curve)
from .parallelism import ParallelismSweep, sweep_threads
from .similarity import (Dendrogram, Merge, agglomerate, cluster_profiles,
                         cosine_distance, distance_matrix, profile_distance)
from .survey import (FATHOM_ENTRY, SURVEY, SurveyEntry, coverage_gaps,
                     feature_counts, krizhevsky_share, render_table1)
from .train_vs_infer import (TrainInferencePoint, measure_workload,
                             render_figure5)
from .workload_table import render_table2, table2_rows
from . import suite

__all__ = [
    "PRESETS", "AcceleratorResult", "accelerated_fraction",
    "render_what_if", "what_if",
    "BreakdownMatrix", "breakdown_matrix",
    "WorkloadCensus", "census", "render_census",
    "DominanceCurve", "dominance_curves", "render_dominance_table",
    "PhaseSplit", "render_phase_table", "split_phases",
    "PlacementPoint", "latency_sweep", "render_placement_table",
    "study_workload",
    "RooflinePoint", "classify_op", "render_roofline", "roofline",
    "ClusterModel", "ScalingCurve", "render_scaling", "scaling_curve",
    "ParallelismSweep", "sweep_threads",
    "Dendrogram", "Merge", "agglomerate", "cluster_profiles",
    "cosine_distance", "distance_matrix", "profile_distance",
    "FATHOM_ENTRY", "SURVEY", "SurveyEntry", "coverage_gaps",
    "feature_counts", "krizhevsky_share", "render_table1",
    "TrainInferencePoint", "measure_workload", "render_figure5",
    "render_table2", "table2_rows",
    "suite",
]
