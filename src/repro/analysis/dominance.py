"""Fig. 2: cumulative operation-type dominance curves.

Each point on a workload's curve is the cumulative execution-time
fraction contributed by its k heaviest operation types. The paper's
finding: the distribution is strongly skewed — "a handful of heavy
operation types (usually 5 to 15) are collectively responsible for
upwards of 90% of the programs' duration" — but the heavy types differ
across models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.profile import OperationProfile


@dataclass(frozen=True)
class DominanceCurve:
    workload: str
    curve: list[float]  # cumulative fractions, one per op type
    op_types: list[str]  # op types sorted by descending weight

    def types_for_coverage(self, coverage: float = 0.9) -> int:
        for index, value in enumerate(self.curve):
            if value >= coverage:
                return index + 1
        return len(self.curve)

    @property
    def num_types(self) -> int:
        return len(self.curve)


def dominance_curves(profiles: list[OperationProfile]) -> list[DominanceCurve]:
    curves = []
    for profile in profiles:
        fractions = profile.fractions()
        curves.append(DominanceCurve(
            workload=profile.workload,
            curve=profile.dominance_curve(),
            op_types=list(fractions)))
    return curves


def render_dominance_table(curves: list[DominanceCurve],
                           coverage: float = 0.9) -> str:
    """Tabular summary of Fig. 2: op types needed for 90% coverage."""
    width = max(len(c.workload) for c in curves)
    lines = [f"{'workload':>{width}s}  total types  types for "
             f"{coverage:.0%}  heaviest op"]
    for curve in curves:
        lines.append(
            f"{curve.workload:>{width}s}  {curve.num_types:11d}  "
            f"{curve.types_for_coverage(coverage):14d}  "
            f"{curve.op_types[0]}")
    return "\n".join(lines)
