"""One-call characterization report.

Bundles every analysis in Section V — plus the two tables — into a single
markdown document, the way the paper's Section V reads. Used by
``examples/full_report.py`` and handy for regression-diffing the whole
reproduction after framework changes.
"""

from __future__ import annotations

import io

from repro.framework.device_model import cpu

from . import suite
from .accelerator import PRESETS, render_what_if, what_if
from .ascii_charts import grouped_bar_chart, step_curves
from .scaling import render_scaling, scaling_curve
from .breakdown import breakdown_matrix
from .census import census, render_census
from .dominance import dominance_curves, render_dominance_table
from .phases import render_phase_table, split_phases
from .placement_study import render_placement_table, study_workload
from .roofline import render_roofline, roofline
from .similarity import cluster_profiles
from .survey import coverage_gaps, krizhevsky_share, render_table1
from .train_vs_infer import render_figure5
from .workload_table import render_table2


def render_dendrogram_text(dendrogram) -> str:
    count = len(dendrogram.labels)

    def name(index: int) -> str:
        if index < count:
            return dendrogram.labels[index]
        members = dendrogram.cluster_members(index)
        return "(" + " ".join(dendrogram.labels[i] for i in members) + ")"

    lines = [f"d={merge.distance:5.3f}  {name(merge.left)} + "
             f"{name(merge.right)}" for merge in dendrogram.merges]
    order = " | ".join(dendrogram.labels[i]
                       for i in dendrogram.leaf_order())
    lines.append(f"leaf order: {order}")
    return "\n".join(lines)


def full_report(config: str = "default", steps: int = 2,
                include_parallelism: bool = True) -> str:
    """Generate the complete characterization as markdown text."""
    out = io.StringIO()
    device = cpu(1)

    out.write("# Fathom characterization report\n\n")
    out.write(f"Configuration: `{config}`, {steps} traced training steps, "
              "modeled single-thread CPU.\n\n")

    out.write("## Table I: architecture-research survey\n\n```\n")
    out.write(render_table1())
    out.write("\n```\n")
    out.write(f"\nKrizhevsky-CNN share: {krizhevsky_share():.0%}; "
              f"uncovered tasks: {', '.join(coverage_gaps())}.\n\n")

    out.write("## Table II: the Fathom workloads\n\n```\n")
    out.write(render_table2())
    out.write("\n```\n\n")

    profiles = suite.profile_suite(config=config, steps=steps, device=device)

    out.write("## Fig. 2: operation-type dominance\n\n```\n")
    curves = dominance_curves(profiles)
    out.write(render_dominance_table(curves))
    out.write("\n\n")
    out.write(step_curves({c.workload: c.curve for c in curves},
                          height=12, width=56))
    out.write("\n```\n\n")

    out.write("## Fig. 3: breakdown by operation class\n\n```\n")
    out.write(breakdown_matrix(profiles).render())
    out.write("\n```\n\n")

    out.write("## Fig. 4: performance similarity\n\n```\n")
    out.write(render_dendrogram_text(cluster_profiles(profiles)))
    out.write("\n```\n\n")

    out.write("## Fig. 5: training vs inference, CPU vs GPU\n\n```\n")
    points = suite.suite_train_vs_infer(config=config, steps=steps)
    out.write(render_figure5(points))
    out.write("\n\n")
    out.write(grouped_bar_chart(
        {p.workload: p.normalized() for p in points}, width=32))
    out.write("\n```\n\n")

    if include_parallelism:
        out.write("## Fig. 6: intra-op parallelism sweeps\n\n")
        for sweep in suite.suite_parallelism(config=config,
                                             steps=steps).values():
            out.write("```\n")
            out.write(sweep.render())
            out.write(f"\noverall speedup at 8 threads: "
                      f"{sweep.speedup(8):.2f}x\n```\n\n")

    models = [suite.get_model(name, config)
              for name in suite.WORKLOAD_NAMES]

    out.write("## Section V-A: GPU execution with CPU fall-back\n\n```\n")
    out.write(render_placement_table([study_workload(m) for m in models]))
    out.write("\n```\n\n")

    out.write("## Training-phase decomposition\n\n```\n")
    out.write(render_phase_table([split_phases(m, steps=steps)
                                  for m in models]))
    out.write("\n```\n\n")

    out.write("## Roofline classification\n\n```\n")
    out.write(render_roofline([roofline(m, steps=steps) for m in models]))
    out.write("\n```\n\n")

    out.write("## Static operation census\n\n```\n")
    out.write(render_census([census(m) for m in models]))
    out.write("\n```\n\n")

    out.write("## What-if accelerators (the Section V-E lesson)\n\n")
    for preset, classes in PRESETS.items():
        out.write("```\n")
        out.write(render_what_if([what_if(m, classes, steps=steps)
                                  for m in models], preset))
        out.write("\n```\n\n")

    out.write("## Data-parallel scaling\n\n```\n")
    out.write(render_scaling([scaling_curve(m, steps=steps)
                              for m in models]))
    out.write("\n```\n")

    return out.getvalue()
