"""Fig. 5: training vs. inference performance on CPU and GPU.

For each workload the paper reports four bars — training and inference
on a CPU and on a GPU — normalized to the workload's *training time on
the CPU* (the slowest configuration). The expected shape: training is
always slower than inference, variably so (convolutional networks pay a
higher training premium because the convolutional partial gradient needs
two backward reductions); the GPU is substantially faster across the
board; and the train/infer gap on GPU correlates with the gap on CPU.

Device times come from the analytic device models applied to traced
operation work estimates (see DESIGN.md for the hardware substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.device_model import (CPUDeviceModel, GPUDeviceModel,
                                          cpu, gpu)
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel


@dataclass(frozen=True)
class TrainInferencePoint:
    """Fig. 5's four bars for one workload, in seconds per step."""

    workload: str
    training_cpu: float
    inference_cpu: float
    training_gpu: float
    inference_gpu: float

    def normalized(self) -> dict[str, float]:
        """Each configuration relative to CPU training (the 1.0 bar)."""
        base = self.training_cpu
        return {"training_cpu": 1.0,
                "inference_cpu": self.inference_cpu / base,
                "training_gpu": self.training_gpu / base,
                "inference_gpu": self.inference_gpu / base}

    @property
    def cpu_train_infer_ratio(self) -> float:
        return self.training_cpu / self.inference_cpu

    @property
    def gpu_train_infer_ratio(self) -> float:
        return self.training_gpu / self.inference_gpu

    @property
    def gpu_speedup_training(self) -> float:
        return self.training_cpu / self.training_gpu


def _modeled_seconds_per_step(model: FathomModel, mode: str, steps: int,
                              device) -> float:
    profile = model.profile(mode=mode, steps=steps, device=device)
    return profile.seconds_per_step()


def measure_workload(model: FathomModel, steps: int = 2,
                     cpu_model: CPUDeviceModel | None = None,
                     gpu_model: GPUDeviceModel | None = None) -> TrainInferencePoint:
    """Trace one workload in both modes and model both devices.

    A single trace per mode is reused for both devices (device models are
    pure functions of the op work estimates).
    """
    cpu_model = cpu_model or cpu(threads=1)
    gpu_model = gpu_model or gpu()
    times = {}
    for mode in ("training", "inference"):
        runner = (model.run_training if mode == "training"
                  else model.run_inference)
        runner(1)  # warmup (variable init, allocator effects)
        tracer = Tracer()
        runner(steps, tracer=tracer)
        for device in (cpu_model, gpu_model):
            profile = OperationProfile.from_trace(tracer, model.name,
                                                  device=device)
            times[(mode, device.name)] = profile.seconds_per_step()
    return TrainInferencePoint(
        workload=model.name,
        training_cpu=times[("training", cpu_model.name)],
        inference_cpu=times[("inference", cpu_model.name)],
        training_gpu=times[("training", gpu_model.name)],
        inference_gpu=times[("inference", gpu_model.name)])


def render_figure5(points: list[TrainInferencePoint]) -> str:
    """Textual Fig. 5: normalized execution times per workload."""
    width = max(len(p.workload) for p in points)
    header = (f"{'workload':>{width}s}  {'train cpu':>10s}  "
              f"{'infer cpu':>10s}  {'train gpu':>10s}  {'infer gpu':>10s}  "
              f"{'gpu speedup':>11s}")
    lines = ["Normalized execution time (1.0 = training on CPU)", header]
    for point in points:
        norm = point.normalized()
        lines.append(
            f"{point.workload:>{width}s}  {norm['training_cpu']:10.3f}  "
            f"{norm['inference_cpu']:10.3f}  {norm['training_gpu']:10.4f}  "
            f"{norm['inference_gpu']:10.4f}  "
            f"{point.gpu_speedup_training:10.1f}x")
    return "\n".join(lines)
