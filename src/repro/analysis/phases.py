"""Forward / backward / optimizer phase decomposition (Section V-D).

The paper: "a rough symmetry exists between these two phases: most
functions evaluated in the forward phase have an analogue in the
backwards phase with similar performance characteristics", with the loss
function the training-only exception, and convolution paying a *double*
backward cost (filter + input gradients). This module splits a training
trace into phases and quantifies the symmetry:

* **forward** — ops that also appear in the inference subgraph;
* **loss** — forward-pass ops beyond inference (the loss function and
  its inputs, evaluated only when training);
* **backward** — autodiff-generated gradient ops;
* **optimizer** — the Apply* parameter updates and their slot plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.device_model import DeviceModel, cpu
from repro.framework.graph import OpClass
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel

PHASES = ("forward", "loss", "backward", "optimizer")


@dataclass(frozen=True)
class PhaseSplit:
    """Seconds per training step attributed to each phase."""

    workload: str
    seconds: dict[str, float]  # keyed by PHASES

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, phase: str) -> float:
        if self.total == 0.0:
            return 0.0
        return self.seconds[phase] / self.total

    @property
    def backward_forward_ratio(self) -> float:
        forward = self.seconds["forward"]
        if forward == 0.0:
            return float("inf")
        return self.seconds["backward"] / forward


def split_phases(model: FathomModel, steps: int = 2,
                 device: DeviceModel | None = None) -> PhaseSplit:
    """Trace a training step and attribute op time to phases."""
    device = device or cpu(1)
    inference_ops = {id(op) for op in
                     model.graph.subgraph([model.inference_output])}
    # Ops needed for the loss value but not for inference: the loss
    # function itself (labels plumbing, xent, reductions).
    loss_ops = {id(op) for op in model.graph.subgraph([model.loss])
                if id(op) not in inference_ops}

    model.run_training(1)
    tracer = Tracer()
    model.run_training(steps, tracer=tracer)

    seconds = {phase: 0.0 for phase in PHASES}
    for record in tracer.compute_records():
        elapsed = device.op_time(record.op.work()) / steps
        if id(record.op) in inference_ops:
            phase = "forward"
        elif id(record.op) in loss_ops:
            phase = "loss"
        elif record.op_class is OpClass.OPTIMIZATION:
            phase = "optimizer"
        else:
            phase = "backward"
        seconds[phase] += elapsed
    return PhaseSplit(workload=model.name, seconds=seconds)


def render_phase_table(splits: list[PhaseSplit]) -> str:
    width = max(len(s.workload) for s in splits)
    lines = ["Training-step phase decomposition (modeled, seconds/step)",
             (f"{'workload':>{width}s}  {'forward':>9s}  {'loss':>9s}  "
              f"{'backward':>9s}  {'optimizer':>9s}  {'bwd/fwd':>7s}")]
    for split in splits:
        lines.append(
            f"{split.workload:>{width}s}"
            f"  {split.seconds['forward'] * 1e3:7.2f}ms"
            f"  {split.seconds['loss'] * 1e3:7.2f}ms"
            f"  {split.seconds['backward'] * 1e3:7.2f}ms"
            f"  {split.seconds['optimizer'] * 1e3:7.2f}ms"
            f"  {split.backward_forward_ratio:6.2f}x")
    return "\n".join(lines)
