"""What-if accelerator analysis: the paper's closing Amdahl lesson.

Section V-E ends with the suite's central message for architects:
"While convolution and matrix multiplication are attractive targets for
hardware support, there are limits to the benefits that can be
extracted from them." This analysis makes the limit quantitative: given
a hypothetical accelerator that speeds up a chosen set of operation
classes by a factor S (a DianNao/Eyeriss-class conv engine, a TPU-class
GEMM engine, ...), what end-to-end step speedup does each workload
actually see?

The answer is application-level Amdahl's law over the traced profile:

    speedup(S) = 1 / ((1 - p) + p / S)

with p the accelerated classes' time fraction — computed here per
workload from real traces and the CPU device model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.device_model import DeviceModel, cpu
from repro.framework.graph import OpClass
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel

#: accelerator presets: name -> accelerated op classes
PRESETS: dict[str, frozenset[OpClass]] = {
    "conv-engine": frozenset({OpClass.CONVOLUTION}),
    "gemm-engine": frozenset({OpClass.MATRIX}),
    "conv+gemm": frozenset({OpClass.CONVOLUTION, OpClass.MATRIX}),
}


@dataclass(frozen=True)
class AcceleratorResult:
    """End-to-end effect of an op-class accelerator on one workload."""

    workload: str
    accelerated_fraction: float  # p: time share of the accelerated classes
    speedups: dict[float, float]  # accelerator factor -> end-to-end speedup

    def ceiling(self) -> float:
        """The S -> infinity limit: 1 / (1 - p)."""
        if self.accelerated_fraction >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - self.accelerated_fraction)


def accelerated_fraction(model: FathomModel,
                         classes: frozenset[OpClass],
                         steps: int = 2,
                         device: DeviceModel | None = None) -> float:
    """Time fraction of ``classes`` in the modeled training profile."""
    device = device or cpu(1)
    model.run_training(1)
    tracer = Tracer()
    model.run_training(steps, tracer=tracer)
    total = covered = 0.0
    for record in tracer.compute_records():
        elapsed = device.op_time(record.op.work())
        total += elapsed
        if record.op_class in classes:
            covered += elapsed
    if total == 0.0:
        return 0.0
    return covered / total


def what_if(model: FathomModel, classes: frozenset[OpClass],
            factors=(10.0, 100.0), steps: int = 2,
            device: DeviceModel | None = None) -> AcceleratorResult:
    """Amdahl speedups for an accelerator covering ``classes``."""
    fraction = accelerated_fraction(model, classes, steps=steps,
                                    device=device)
    speedups = {factor: 1.0 / ((1.0 - fraction) + fraction / factor)
                for factor in factors}
    return AcceleratorResult(workload=model.name,
                             accelerated_fraction=fraction,
                             speedups=speedups)


def render_what_if(results: list[AcceleratorResult],
                   preset_name: str) -> str:
    width = max(len(r.workload) for r in results)
    factors = sorted(next(iter(results)).speedups)
    header = (f"{'workload':>{width}s}  {'covered':>8s}  "
              + "  ".join(f"{f:4.0f}x eng" for f in factors)
              + "  ceiling")
    lines = [f"What-if accelerator '{preset_name}': end-to-end training "
             "speedup (Amdahl over traced profile)", header]
    for result in results:
        cells = "  ".join(f"{result.speedups[f]:7.2f}x" for f in factors)
        ceiling = result.ceiling()
        ceiling_text = ("     inf" if ceiling == float("inf")
                        else f"{ceiling:7.2f}x")
        lines.append(f"{result.workload:>{width}s}  "
                     f"{result.accelerated_fraction:8.1%}  {cells}  "
                     f"{ceiling_text}")
    return "\n".join(lines)
