"""Run analyses across the whole Fathom suite.

Convenience entry points used by the benchmarks and examples: build all
eight workloads at one configuration, trace them, and hand back profiles
or figure-ready structures. Workload instances are cached per
``(name, config, seed)`` within a process because graph construction is
pure and sessions are cheap to keep around.
"""

from __future__ import annotations

from functools import lru_cache

from repro.framework.device_model import DeviceModel
from repro.profiling.profile import OperationProfile
from repro.workloads import WORKLOAD_NAMES, create
from repro.workloads.base import FathomModel

from .breakdown import BreakdownMatrix, breakdown_matrix
from .dominance import DominanceCurve, dominance_curves
from .parallelism import ParallelismSweep, sweep_threads
from .similarity import Dendrogram, cluster_profiles
from .train_vs_infer import TrainInferencePoint, measure_workload


@lru_cache(maxsize=None)
def get_model(name: str, config: str = "default", seed: int = 0) -> FathomModel:
    """Cached workload instance (construction is deterministic)."""
    return create(name, config=config, seed=seed)


def profile_suite(config: str = "default", mode: str = "training",
                  steps: int = 2, device: DeviceModel | None = None,
                  names: list[str] | None = None,
                  seed: int = 0) -> list[OperationProfile]:
    """Operation profiles for every workload (Fig. 2/3/4 input)."""
    names = names or WORKLOAD_NAMES
    return [get_model(name, config, seed).profile(mode=mode, steps=steps,
                                                  device=device)
            for name in names]


def suite_dominance(config: str = "default", steps: int = 2,
                    device: DeviceModel | None = None) -> list[DominanceCurve]:
    """Fig. 2 for the whole suite."""
    return dominance_curves(profile_suite(config, steps=steps, device=device))


def suite_breakdown(config: str = "default", steps: int = 2,
                    device: DeviceModel | None = None) -> BreakdownMatrix:
    """Fig. 3 for the whole suite."""
    return breakdown_matrix(profile_suite(config, steps=steps, device=device))


def suite_similarity(config: str = "default", steps: int = 2,
                     device: DeviceModel | None = None) -> Dendrogram:
    """Fig. 4 for the whole suite."""
    return cluster_profiles(profile_suite(config, steps=steps, device=device))


def suite_train_vs_infer(config: str = "default",
                         steps: int = 2) -> list[TrainInferencePoint]:
    """Fig. 5 for the whole suite."""
    return [measure_workload(get_model(name, config), steps=steps)
            for name in WORKLOAD_NAMES]


def suite_parallelism(names=("deepq", "seq2seq", "memnet"),
                      config: str = "default",
                      steps: int = 2) -> dict[str, ParallelismSweep]:
    """Fig. 6a/b/c sweeps (deepq, seq2seq, memnet by default)."""
    return {name: sweep_threads(get_model(name, config), steps=steps)
            for name in names}
