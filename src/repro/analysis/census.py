"""Static operation census across the suite.

Section III-C argues that a model's performance is determined by "the
number, type, and organization" of its primitive operations. This module
produces the static side of that claim for every workload: op counts
split into forward and backward subgraphs, parameters, modeled FLOPs per
training step, arithmetic intensity (FLOPs per byte moved), and the
dataflow-graph structure numbers from
:mod:`repro.framework.graph_export`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.graph_export import graph_stats
from repro.workloads.base import FathomModel


@dataclass(frozen=True)
class WorkloadCensus:
    """Static structure of one workload's graphs."""

    workload: str
    parameters: int
    inference_ops: int
    training_ops: int
    flops_per_step: float
    bytes_per_step: float
    critical_path: int
    dag_parallelism: float

    @property
    def backward_ops(self) -> int:
        """Ops added by autodiff + optimizer (training minus inference)."""
        return self.training_ops - self.inference_ops

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved — the roofline-model x-axis."""
        if self.bytes_per_step == 0.0:
            return 0.0
        return self.flops_per_step / self.bytes_per_step


def census(model: FathomModel) -> WorkloadCensus:
    training_fetches = [model.loss, model.train_step]
    training_stats = graph_stats(model.graph, fetches=training_fetches)
    inference_ops = len(model.graph.subgraph([model.inference_output]))
    return WorkloadCensus(
        workload=model.name,
        parameters=model.num_parameters(),
        inference_ops=inference_ops,
        training_ops=training_stats.num_ops,
        flops_per_step=training_stats.total_work.flops,
        bytes_per_step=training_stats.total_work.bytes_moved,
        critical_path=training_stats.critical_path_length,
        dag_parallelism=training_stats.average_parallelism)


def render_census(rows: list[WorkloadCensus]) -> str:
    width = max(len(r.workload) for r in rows)
    lines = ["Static operation census (training-step subgraph, default "
             "config)",
             (f"{'workload':>{width}s}  {'params':>10s}  {'fwd ops':>7s}  "
              f"{'train ops':>9s}  {'GFLOPs':>7s}  {'AI(F/B)':>7s}  "
              f"{'depth':>5s}  {'par':>5s}")]
    for row in rows:
        lines.append(
            f"{row.workload:>{width}s}  {row.parameters:10,d}  "
            f"{row.inference_ops:7d}  {row.training_ops:9d}  "
            f"{row.flops_per_step / 1e9:7.3f}  "
            f"{row.arithmetic_intensity:7.2f}  {row.critical_path:5d}  "
            f"{row.dag_parallelism:5.2f}")
    return "\n".join(lines)
