"""Table I: the survey of deep learning in recent architecture research.

The paper motivates Fathom by surveying 16 papers from top-tier
architecture venues (ISCA, MICRO, ASPLOS, ISSCC, IISWC, FPGA, 2010-2016)
and showing how narrow their workload coverage is: nearly half evaluate
the same Krizhevsky CNN, recurrent networks appear only twice, and no
paper touches unsupervised or reinforcement learning.

The per-paper feature rows below are reconstructed from the cited papers
themselves; the layer-depth row and all aggregate claims (the numbers the
paper's prose actually uses) match Table I exactly, and the regeneration
benchmark asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SurveyEntry:
    """One column of Table I."""

    ref: str
    name: str
    fully_connected: bool = False
    convolutional: bool = False
    recurrent: bool = False
    max_depth: int = 0
    inference: bool = False
    supervised: bool = False
    unsupervised: bool = False
    reinforcement: bool = False
    vision: bool = False
    speech: bool = False
    language_modeling: bool = False
    function_approximation: bool = False
    uses_krizhevsky_cnn: bool = False


SURVEY: list[SurveyEntry] = [
    SurveyEntry("[8]", "Chakradhar et al. (ISCA'10)", convolutional=True,
                max_depth=4, inference=True, vision=True),
    SurveyEntry("[9]", "BenchNN (IISWC'12)", fully_connected=True,
                max_depth=4, inference=True, supervised=True,
                function_approximation=True),
    SurveyEntry("[10]", "DianNao (ASPLOS'14)", fully_connected=True,
                convolutional=True, max_depth=3, inference=True,
                vision=True, uses_krizhevsky_cnn=True),
    SurveyEntry("[11]", "DaDianNao (MICRO'14)", fully_connected=True,
                convolutional=True, max_depth=3, inference=True,
                supervised=True, vision=True, uses_krizhevsky_cnn=True),
    SurveyEntry("[12]", "Eyeriss (ISSCC'16)", convolutional=True,
                max_depth=5, inference=True, vision=True,
                uses_krizhevsky_cnn=True),
    SurveyEntry("[14]", "PRIME (ISCA'16)", fully_connected=True,
                convolutional=True, max_depth=16, inference=True,
                vision=True, uses_krizhevsky_cnn=True),
    SurveyEntry("[21]", "ShiDianNao (ISCA'15)", convolutional=True,
                max_depth=7, inference=True, vision=True),
    SurveyEntry("[24]", "EIE (ISCA'16)", fully_connected=True,
                recurrent=True, max_depth=3, inference=True, vision=True,
                language_modeling=True, uses_krizhevsky_cnn=True),
    SurveyEntry("[26]", "DjiNN and Tonic (ISCA'15)", fully_connected=True,
                convolutional=True, max_depth=13, inference=True,
                supervised=True, vision=True, speech=True,
                language_modeling=True),
    SurveyEntry("[35]", "PuDianNao (ASPLOS'15)", fully_connected=True,
                max_depth=6, inference=True, supervised=True,
                language_modeling=True, function_approximation=True),
    SurveyEntry("[38]", "Ovtcharov et al. (MSR'15)", fully_connected=True,
                convolutional=True, max_depth=9, inference=True,
                vision=True),
    SurveyEntry("[39]", "Minerva (ISCA'16)", fully_connected=True,
                max_depth=4, inference=True, supervised=True, vision=True),
    SurveyEntry("[40]", "ISAAC (ISCA'16)", fully_connected=True,
                convolutional=True, max_depth=26, inference=True,
                vision=True, uses_krizhevsky_cnn=True),
    SurveyEntry("[44]", "CortexSuite (IISWC'14)", fully_connected=True,
                recurrent=True, max_depth=2, inference=True,
                supervised=True, vision=True, speech=True,
                language_modeling=True),
    SurveyEntry("[47]", "Yazdanbakhsh et al. (MICRO'15)",
                fully_connected=True, max_depth=5, inference=True,
                supervised=True, function_approximation=True),
    SurveyEntry("[49]", "Zhang et al. (FPGA'15)", convolutional=True,
                max_depth=5, inference=True, vision=True,
                uses_krizhevsky_cnn=True),
]

FATHOM_ENTRY = SurveyEntry(
    "Fathom", "Fathom (this work)", fully_connected=True,
    convolutional=True, recurrent=True, max_depth=34, inference=True,
    supervised=True, unsupervised=True, reinforcement=True, vision=True,
    speech=True, language_modeling=True)

_FEATURE_ROWS = [
    ("Fully-connected", "fully_connected"),
    ("Convolutional", "convolutional"),
    ("Recurrent", "recurrent"),
    ("Inference", "inference"),
    ("Supervised", "supervised"),
    ("Unsupervised", "unsupervised"),
    ("Reinforcement", "reinforcement"),
    ("Vision", "vision"),
    ("Speech", "speech"),
    ("Language Modeling", "language_modeling"),
    ("Function Approximation", "function_approximation"),
]


def feature_counts(include_fathom: bool = True) -> dict[str, int]:
    """How many survey columns mark each feature."""
    entries = SURVEY + ([FATHOM_ENTRY] if include_fathom else [])
    return {label: sum(getattr(e, attr) for e in entries)
            for label, attr in _FEATURE_ROWS}


def coverage_gaps() -> list[str]:
    """Features no surveyed paper (excluding Fathom) covers."""
    counts = feature_counts(include_fathom=False)
    return [label for label, count in counts.items() if count == 0]


def krizhevsky_share() -> float:
    """Fraction of surveyed papers evaluating the Krizhevsky CNN."""
    return sum(e.uses_krizhevsky_cnn for e in SURVEY) / len(SURVEY)


def render_table1() -> str:
    """ASCII rendering of Table I."""
    entries = SURVEY + [FATHOM_ENTRY]
    label_width = max(len(label) for label, _ in _FEATURE_ROWS) + 2
    header = (" " * label_width
              + " ".join(f"{e.ref:>6s}" for e in entries))
    lines = ["Table I: Recent Architecture Research in Deep Learning",
             header]
    for label, attr in _FEATURE_ROWS:
        marks = " ".join(f"{'x' if getattr(e, attr) else '':>6s}"
                         for e in entries)
        lines.append(f"{label:<{label_width}s}{marks}")
    depths = " ".join(f"{e.max_depth:>6d}" for e in entries)
    lines.append(f"{'Layer Depth (Maximum)':<{label_width}s}{depths}")
    return "\n".join(lines)
