"""Terminal chart rendering for the analysis reports.

The paper's figures are plots; this reproduction's outputs live in
terminals and markdown. These renderers draw the two chart shapes the
report needs — horizontal bar charts (Fig. 5's normalized runtimes) and
multi-series step curves (Fig. 2's cumulative dominance) — in plain
monospaced text.
"""

from __future__ import annotations


def bar_chart(rows: list[tuple[str, float]], width: int = 40,
              max_value: float | None = None, unit: str = "") -> str:
    """Horizontal bars, one per (label, value) row."""
    if not rows:
        return "(empty chart)"
    peak = max_value if max_value is not None else max(v for _, v in rows)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label:>{label_width}s} |{bar}| "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: dict[str, dict[str, float]],
                      width: int = 30) -> str:
    """Bars grouped by outer key: one block per group, one bar per series.

    Matches Fig. 5's presentation: a group per workload, a bar per
    execution configuration, shared scale inside each group.
    """
    lines = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        block = bar_chart(list(series.items()), width=width,
                          max_value=max(series.values()))
        lines.extend("  " + line for line in block.splitlines())
    return "\n".join(lines)


def step_curves(curves: dict[str, list[float]], height: int = 12,
                width: int = 50, y_max: float = 1.0) -> str:
    """Multi-series monotone curves on one character grid.

    Each series is drawn with its own symbol; x is the (resampled) index
    within the series, y is the value. Built for Fig. 2's cumulative
    dominance curves.
    """
    if not curves:
        return "(empty chart)"
    symbols = "abcdefghijklmnopqrstuvwxyz"
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for series_index, (name, values) in enumerate(curves.items()):
        symbol = symbols[series_index % len(symbols)]
        legend.append(f"{symbol}={name}")
        if not values:
            continue
        for column in range(width):
            # Resample the series across the full chart width.
            position = column * (len(values) - 1) / max(width - 1, 1)
            value = values[min(int(round(position)), len(values) - 1)]
            row = int((1.0 - min(value, y_max) / y_max) * (height - 1))
            if grid[row][column] == " ":
                grid[row][column] = symbol
    lines = [f"{y_max:4.1f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("     |" + "".join(row))
    lines.append(" 0.0 +" + "".join(grid[-1]))
    lines.append("      " + "-" * width)
    lines.append("      " + "  ".join(legend))
    return "\n".join(lines)
