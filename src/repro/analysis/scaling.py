"""Data-parallel training scaling: compute vs gradient communication.

TensorFlow is "the dataflow-based second generation of Google's
DistBelief system" — a *distributed* training system — and the era's
defining scaling question (Krizhevsky's "one weird trick", Dean et al.'s
parameter servers) was how a model's compute-to-parameter ratio limits
data-parallel speedup: every step, each of K replicas computes on its
shard, then the gradients (one float per parameter) cross the network in
an all-reduce.

This analysis prices both sides per workload: modeled single-replica
step compute (from a trace) and ring-all-reduce communication
``2 * (K-1)/K * parameter_bytes / bandwidth``, yielding speedup and
efficiency curves. The shape to expect: convolutional trunks (huge
FLOPs, few parameters) scale; embedding/dense-heavy models (few FLOPs
per parameter) are communication-bound almost immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

# ClusterModel moved to the executed runtime so the analytic study and
# the cluster clock share one interconnect pricing formula; re-exported
# here for compatibility.
from repro.distributed.clock import ClusterModel
from repro.framework.device_model import DeviceModel, cpu
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8, 16)

__all__ = ["ClusterModel", "ScalingCurve", "scaling_curve",
           "render_scaling", "measured_scaling_curve",
           "DEFAULT_WORKER_COUNTS"]


@dataclass(frozen=True)
class ScalingCurve:
    """Data-parallel behaviour of one workload."""

    workload: str
    compute_seconds: float       # one replica's step compute
    parameter_bytes: float
    worker_counts: list[int]
    step_seconds: list[float]    # per global step, per worker count

    def speedup(self, workers: int) -> float:
        index = self.worker_counts.index(workers)
        return self.step_seconds[0] / self.step_seconds[index] * \
            (workers / self.worker_counts[0])

    def efficiency(self, workers: int) -> float:
        return self.speedup(workers) / workers

    @property
    def compute_comm_ratio(self) -> float:
        """Compute seconds per second of 8-worker communication."""
        comm = ClusterModel().allreduce_seconds(self.parameter_bytes, 8)
        if comm == 0.0:
            return float("inf")
        return self.compute_seconds / comm


def scaling_curve(model: FathomModel, steps: int = 2,
                  device: DeviceModel | None = None,
                  cluster: ClusterModel | None = None,
                  worker_counts=DEFAULT_WORKER_COUNTS) -> ScalingCurve:
    """Weak-scaling curve: fixed per-replica batch, K replicas.

    Per-step wall time = per-replica compute (unchanged: each replica
    keeps the single-replica batch) + all-reduce of the gradients.
    Speedup is in examples/second.
    """
    device = device or cpu(1)
    cluster = cluster or ClusterModel()
    model.run_training(1)
    tracer = Tracer()
    model.run_training(steps, tracer=tracer)
    compute = OperationProfile.from_trace(tracer, model.name,
                                          device=device).seconds_per_step()
    parameter_bytes = model.num_parameters() * 4.0
    times = []
    for workers in worker_counts:
        times.append(compute
                     + cluster.allreduce_seconds(parameter_bytes, workers))
    return ScalingCurve(workload=model.name, compute_seconds=compute,
                        parameter_bytes=parameter_bytes,
                        worker_counts=list(worker_counts),
                        step_seconds=times)


def measured_scaling_curve(model: FathomModel, steps: int = 2,
                           cluster: ClusterModel | None = None,
                           worker_counts=DEFAULT_WORKER_COUNTS,
                           strategy: str = "allreduce") -> ScalingCurve:
    """The *executed* counterpart of :func:`scaling_curve`.

    Runs the real cluster runtime (:class:`~repro.distributed.runtime.
    ClusterRuntime`) fault-free at each worker count and reads the step
    time off the deterministic cluster clock. Because the runtime and
    this module share one :class:`ClusterModel` and one modeled compute
    price, the measured curve validates the analytic *composition*
    (compute + collective per step) rather than restating its inputs:
    the runtime's timeline additionally includes barrier effects and
    whatever the exchange actually did that step.
    """
    from repro.distributed import (ClusterConfig, ClusterRuntime,
                                   modeled_step_seconds)
    cluster = cluster or ClusterModel()
    compute = modeled_step_seconds(model)
    parameter_bytes = model.num_parameters() * 4.0
    times = []
    for workers in worker_counts:
        runtime = ClusterRuntime(model, config=ClusterConfig(
            workers=workers, strategy=strategy, cluster=cluster,
            compute_seconds=compute))
        result = runtime.run(steps)
        times.append(result.elapsed_seconds / steps)
    return ScalingCurve(workload=model.name, compute_seconds=compute,
                        parameter_bytes=parameter_bytes,
                        worker_counts=list(worker_counts),
                        step_seconds=times)


def render_scaling(curves: list[ScalingCurve]) -> str:
    width = max(len(c.workload) for c in curves)
    counts = curves[0].worker_counts
    header = (f"{'workload':>{width}s}  {'params':>8s}  {'compute':>8s}  "
              + "  ".join(f"eff@{k:<2d}" for k in counts[1:])
              + "  comp/comm")
    lines = ["Data-parallel weak scaling (modeled; 10 GbE ring all-reduce)",
             header]
    for curve in curves:
        efficiencies = "  ".join(f"{curve.efficiency(k):5.0%}"
                                 for k in curve.worker_counts[1:])
        lines.append(
            f"{curve.workload:>{width}s}  "
            f"{curve.parameter_bytes / 4e6:6.2f}M  "
            f"{curve.compute_seconds * 1e3:6.1f}ms  {efficiencies}  "
            f"{curve.compute_comm_ratio:8.2f}")
    return "\n".join(lines)
