"""Fig. 6: the effect of intra-op parallelism on operation balance.

The paper sweeps the TensorFlow/Eigen thread pool from 1 to 8 threads
and plots the *absolute* time spent in each operation type for deepq
(6a), seq2seq (6b), and memnet (6c). The application-level Amdahl's-law
story: the heavy dense operations (convolution, matmul) scale strongly
and shrink, so the small data-dependent operations — the optimizer, the
loss function, memnet's skinny-tensor arithmetic — grow in relative
importance and the profile flattens out.

This reproduction sweeps the thread count of the analytic CPU device
model over a single training trace (modeled time is a pure function of
the per-op work estimates, so one trace serves every thread count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.framework.device_model import cpu
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel

DEFAULT_THREAD_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class ParallelismSweep:
    """Per-op-type absolute seconds across thread counts for one workload."""

    workload: str
    thread_counts: list[int]
    op_types: list[str]  # ordered by single-thread weight, descending
    seconds: np.ndarray  # (op_types, thread_counts)

    def series(self, op_type: str) -> list[float]:
        return list(self.seconds[self.op_types.index(op_type)])

    def total(self, threads: int) -> float:
        column = self.thread_counts.index(threads)
        return float(self.seconds[:, column].sum())

    def speedup(self, threads: int) -> float:
        return self.total(self.thread_counts[0]) / self.total(threads)

    def fraction(self, op_type: str, threads: int) -> float:
        column = self.thread_counts.index(threads)
        return float(self.seconds[self.op_types.index(op_type), column]
                     / self.seconds[:, column].sum())

    def render(self, top_n: int = 8) -> str:
        header = (f"{'op type':>28s}  "
                  + "  ".join(f"{t:>2d} thr" for t in self.thread_counts))
        lines = [f"Fig. 6 sweep for {self.workload} "
                 "(seconds per step, modeled)", header]
        for index, op_type in enumerate(self.op_types[:top_n]):
            cells = "  ".join(f"{v * 1e3:5.1f}ms"
                              for v in self.seconds[index])
            lines.append(f"{op_type:>28s}  {cells}")
        totals = "  ".join(f"{self.total(t) * 1e3:5.1f}ms"
                           for t in self.thread_counts)
        lines.append(f"{'TOTAL':>28s}  {totals}")
        return "\n".join(lines)


def sweep_threads(model: FathomModel, steps: int = 2,
                  thread_counts=DEFAULT_THREAD_COUNTS,
                  mode: str = "training") -> ParallelismSweep:
    """Trace once, model every thread count."""
    runner = (model.run_training if mode == "training"
              else model.run_inference)
    runner(1)  # warmup
    tracer = Tracer()
    runner(steps, tracer=tracer)
    profiles = [OperationProfile.from_trace(tracer, model.name,
                                            device=cpu(threads=t))
                for t in thread_counts]
    # Order op types by their single-thread time.
    base = profiles[0]
    op_types = sorted(base.seconds_by_type,
                      key=lambda name: -base.seconds_by_type[name])
    seconds = np.array(
        [[p.seconds_by_type.get(name, 0.0) / p.num_steps for p in profiles]
         for name in op_types])
    return ParallelismSweep(workload=model.name,
                            thread_counts=list(thread_counts),
                            op_types=op_types, seconds=seconds)
