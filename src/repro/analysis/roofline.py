"""Roofline classification: where each workload's time actually goes.

Architects reason about accelerators with the roofline model: an
operation with arithmetic intensity (FLOPs/byte) above the device's
balance point is compute-bound, below it memory-bound; very small ops
are bound by dispatch/launch overhead instead. Using the per-op work
estimates and a device model, this analysis splits each workload's
modeled step time into compute-bound, memory-bound, and overhead-bound
fractions — quantifying, e.g., why convolution loves accelerators while
memnet's skinny tensors do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.cost_model import WorkEstimate
from repro.framework.device_model import CPUDeviceModel, DeviceModel, cpu
from repro.profiling.tracer import Tracer
from repro.workloads.base import FathomModel

BOUND_KINDS = ("compute", "memory", "overhead")


def classify_op(work: WorkEstimate, device: DeviceModel) -> str:
    """Which resource dominates this op's modeled time on ``device``."""
    if isinstance(device, CPUDeviceModel):
        eff = device.effective_threads(work)
        compute = work.flops / (device.per_core_flops * eff)
        memory = work.bytes_moved / (device.memory_bandwidth * eff ** 0.5)
        overhead = device.dispatch_overhead
    else:
        util = max(device.utilization(work), 1.0 / device.saturation_trips)
        compute = work.flops / (device.peak_flops * util)
        memory = work.bytes_moved / (device.memory_bandwidth
                                     * max(util, 0.05))
        overhead = device.launch_overhead
    dominant = max(compute, memory)
    if overhead >= dominant:
        return "overhead"
    return "compute" if compute >= memory else "memory"


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's time split by binding resource."""

    workload: str
    device_name: str
    seconds: dict[str, float]  # keyed by BOUND_KINDS

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, kind: str) -> float:
        if self.total == 0.0:
            return 0.0
        return self.seconds[kind] / self.total


def roofline(model: FathomModel, steps: int = 2,
             device: DeviceModel | None = None) -> RooflinePoint:
    device = device or cpu(1)
    model.run_training(1)
    tracer = Tracer()
    model.run_training(steps, tracer=tracer)
    seconds = {kind: 0.0 for kind in BOUND_KINDS}
    for record in tracer.compute_records():
        work = record.op.work()
        seconds[classify_op(work, device)] += device.op_time(work) / steps
    return RooflinePoint(workload=model.name, device_name=device.name,
                         seconds=seconds)


def render_roofline(points: list[RooflinePoint]) -> str:
    width = max(len(p.workload) for p in points)
    device = points[0].device_name if points else "?"
    lines = [f"Roofline classification of modeled step time ({device})",
             (f"{'workload':>{width}s}  {'compute':>8s}  {'memory':>8s}  "
              f"{'overhead':>8s}")]
    for point in points:
        lines.append(
            f"{point.workload:>{width}s}"
            f"  {point.fraction('compute'):8.1%}"
            f"  {point.fraction('memory'):8.1%}"
            f"  {point.fraction('overhead'):8.1%}")
    return "\n".join(lines)
