"""Deterministic sharded data pipeline over a frozen template model.

Data-parallel training needs every worker to see a *different* shard of
the same global batch, and fault tolerance needs those shards to be
*replayable*: a crashed step must be recomputed from exactly the feeds
it originally saw, and a worker joining mid-run must pick up the shard
stream deterministically.

Both properties come from freezing one template model as the sole feed
source. The template is never trained (critical for workloads like
deepq whose ``sample_feed`` runs inference on its own session: frozen
weights ⇒ deterministic replay sampling), and its ``sample_feed`` is
drawn exactly ``num_shards`` times per global step in canonical shard
order. The results are cached until the coordinated-checkpoint frontier
passes them, so crash replay re-reads the cache instead of re-drawing
the dataset stream.
"""

from __future__ import annotations

from repro.workloads.base import FathomModel


class ShardedPipeline:
    """Shard-indexed, replayable minibatch source for one cluster run.

    Shard ``s`` of step ``t`` is the ``s``-th ``sample_feed`` draw of
    that step — a pure function of the template's ``(config, seed)`` and
    the sequence of shard counts, independent of which worker ends up
    computing it. Elastic membership changes the shard count *between*
    steps; the draw order makes the re-sharding deterministic.
    """

    def __init__(self, model: FathomModel):
        self.model = model
        self._cache: dict[int, list[dict]] = {}
        self._next_step = 0

    @property
    def shard_batch(self) -> int:
        """Per-shard minibatch size (the template's configured batch)."""
        return self.model.batch_size

    def feeds_for_step(self, step: int, num_shards: int) -> list[dict]:
        """The step's shard feeds, drawing and caching them on first use."""
        cached = self._cache.get(step)
        if cached is not None:
            if len(cached) != num_shards:
                raise ValueError(
                    f"step {step} was sharded {len(cached)} ways, "
                    f"requested {num_shards}; re-sharding is only legal "
                    f"between steps")
            return cached
        if step != self._next_step:
            raise ValueError(
                f"feeds must be drawn in step order: expected step "
                f"{self._next_step}, got {step} (replays hit the cache)")
        feeds = [self.model.sample_feed(training=True)
                 for _ in range(num_shards)]
        self._cache[step] = feeds
        self._next_step = step + 1
        return feeds

    def evict_before(self, step: int) -> None:
        """Drop cached feeds no longer reachable by crash replay."""
        for cached_step in [s for s in self._cache if s < step]:
            del self._cache[cached_step]

    def cached_steps(self) -> list[int]:
        return sorted(self._cache)
