"""Deterministic cluster time: per-worker virtual clocks + interconnect.

The distributed runtime is *event-driven*: nothing in it waits on wall
time. Each worker owns a virtual timeline on the :class:`ClusterClock`;
compute phases, injected straggler delays, message timeouts, and backoff
waits advance individual timelines, and synchronization points
(:meth:`ClusterClock.barrier`) advance everybody to the slowest member —
exactly how a synchronous data-parallel step behaves. Because every
advance is an explicit, deterministic function of the fault schedule,
two runs with the same seed produce identical timelines, which is what
lets the chaos tests assert exact event sequences.

:class:`ClusterModel` prices the interconnect. It used to live in
:mod:`repro.analysis.scaling` (which still re-exports it): the analytic
scaling study and the executed runtime deliberately share one pricing
formula, so the cross-validation benchmark compares the *composition* of
compute and communication, not two divergent cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

#: virtual node id of the parameter server (never a worker id)
SERVER = -1


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster: per-worker device + interconnect."""

    bandwidth: float = 1.25e9   # 10 GbE in bytes/s, the 2016 commodity link
    latency: float = 50e-6      # per all-reduce round

    def allreduce_seconds(self, parameter_bytes: float,
                          workers: int) -> float:
        """Ring all-reduce cost for one gradient exchange."""
        if workers <= 1:
            return 0.0
        volume = 2.0 * (workers - 1) / workers * parameter_bytes
        return self.latency * 2 * (workers - 1) + volume / self.bandwidth

    def ps_seconds(self, parameter_bytes: float, workers: int) -> float:
        """Parameter-server cost for one gradient exchange.

        The server's link serializes all traffic: ``K`` pushes in, ``K``
        parameter broadcasts out — which is why PS loses to the ring
        beyond a couple of workers, and why falling back to it under a
        partition is a *degradation*, not a free substitute.
        """
        if workers <= 1:
            return 0.0
        volume = 2.0 * workers * parameter_bytes
        return 2.0 * self.latency + volume / self.bandwidth


class ClusterClock:
    """Per-worker virtual timelines with barrier synchronization.

    Implements the shared ``now()``/``sleep()`` protocol of
    :mod:`repro.framework.clock` *per worker*: ``for_worker`` returns a
    bound view usable anywhere a plain clock is expected (e.g. a
    per-worker backoff sleep).
    """

    def __init__(self, workers=()):
        self._times: dict[int, float] = {int(w): 0.0 for w in workers}

    # -- membership --------------------------------------------------------

    @property
    def workers(self) -> list[int]:
        return sorted(self._times)

    def add_worker(self, worker: int, at: float | None = None) -> None:
        """Register a timeline; joiners start at the cluster frontier."""
        if at is None:
            at = max(self._times.values(), default=0.0)
        self._times[int(worker)] = float(at)

    def remove_worker(self, worker: int) -> None:
        self._times.pop(int(worker), None)

    # -- time --------------------------------------------------------------

    def now(self, worker: int) -> float:
        return self._times[worker]

    def advance(self, worker: int, seconds: float) -> float:
        self._times[worker] += max(0.0, float(seconds))
        return self._times[worker]

    def barrier(self, workers=None) -> float:
        """Advance ``workers`` (default: all) to the slowest member."""
        ids = list(workers) if workers is not None else list(self._times)
        frontier = max(self._times[w] for w in ids)
        for w in ids:
            self._times[w] = frontier
        return frontier

    def elapsed(self) -> float:
        """The cluster frontier: the furthest timeline."""
        return max(self._times.values(), default=0.0)

    def for_worker(self, worker: int) -> "WorkerClock":
        return WorkerClock(self, worker)


class WorkerClock:
    """One worker's view of the cluster clock (Clock-protocol shaped)."""

    def __init__(self, clock: ClusterClock, worker: int):
        self._clock = clock
        self.worker = worker

    def now(self) -> float:
        return self._clock.now(self.worker)

    def sleep(self, seconds: float) -> None:
        self._clock.advance(self.worker, seconds)
