"""Cluster events: the distributed counterpart of Failure/Serving events.

Every observable action the cluster runtime takes — checkpoints, worker
crashes and restarts, straggler verdicts, backup promotions, message
timeouts and retransmits, collective-to-PS fallback, membership changes,
gradient-attestation verdicts and quarantines/evictions
— is recorded as one :class:`ClusterEvent`. Events flow through the same
``tracer.record_event`` hook as
:class:`~repro.framework.resilience.FailureEvent`,
:class:`~repro.framework.session.DegradationEvent`, and
:class:`~repro.serving.events.ServingEvent`, and are persisted by
:mod:`repro.profiling.serialize`; the tracer distinguishes the family by
duck-typing on the ``worker`` field.
"""

from __future__ import annotations

from dataclasses import dataclass

#: every kind the runtime emits, for reference and validation
CLUSTER_EVENT_KINDS = (
    "checkpoint",        # coordinated barrier snapshot committed
    "crash",             # a worker died mid-step (injected)
    "restart",           # the crashed worker was re-forked
    "recover",           # cluster rolled back + replayed to the crash point
    "straggler",         # a worker's compute exceeded the straggler bound
    "backup_promote",    # a backup's mirror result beat its primary
    "timeout",           # a gradient/parameter message timed out
    "retransmit",        # the message was retried after seeded backoff
    "corrupt_screened",  # a poisoned gradient was rejected by the screen
    "fallback",          # ring all-reduce degraded to the PS path
    "join",              # a worker joined between steps
    "leave",             # a worker left between steps
    "reshard",           # the data pipeline re-sharded after membership
    "staleness",         # an async worker pulled params after lagging
    "gradient_suspect",  # attestation audit proved a shard corrupted
    "shard_replay",      # a flagged shard was replaced by clean recompute
    "quarantine",        # repeat suspect: shard screened, worker probed
    "quarantine_lift",   # a quarantined worker produced clean audits
    "evict",             # repeat offender scheduled to leave the cluster
)


@dataclass(frozen=True)
class ClusterEvent:
    """One action of the data-parallel cluster runtime.

    Args:
        step: global training step the event belongs to.
        kind: one of :data:`CLUSTER_EVENT_KINDS`.
        worker: the worker acted on (``None`` for cluster-wide events
            like ``checkpoint``/``reshard``; ``-1`` is the server).
        link: the ``(src, dst)`` link for message-level events.
        strategy: gradient-exchange strategy in force (``"ps"``,
            ``"allreduce"``), where relevant.
        seconds_lost: cluster-clock time attributed to the event
            (timeout waits, backoff sleeps, recovery replay).
        detail: free-text diagnosis for humans.
    """

    step: int
    kind: str
    worker: int | None = None
    link: tuple[int, int] | None = None
    strategy: str | None = None
    seconds_lost: float = 0.0
    detail: str = ""

    def signature(self) -> tuple:
        """Timing-free identity, for determinism comparisons."""
        return (self.step, self.kind, self.worker, self.link, self.strategy)


def events_signature(events) -> tuple:
    """The run's identity: the ordered tuple of event signatures."""
    return tuple(e.signature() for e in events)
