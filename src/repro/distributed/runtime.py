"""The executed data-parallel cluster runtime.

:class:`ClusterRuntime` trains a Fathom workload across ``K`` worker
replicas — each a real ``Session.fork`` driving real numpy steps — over
the deterministic event-driven :class:`~repro.distributed.clock.
ClusterClock`. One global step:

1. **Membership** — scheduled joins/leaves apply on the step boundary;
   the pipeline re-shards the global batch ``K'`` ways deterministically.
2. **Compute** — every live worker (primaries and ``backup_workers``
   shard mirrors) computes its shard's gradients with the session RNG
   pinned per ``(step, shard)``; injected crashes and straggler delays
   land here.
3. **Select** — per shard, the first finisher wins (drop-slowest backup
   semantics; ties break on worker id). Mirrors compute bit-identical
   gradients, so selection never perturbs arithmetic.
4. **Attest** — when gradient attestation is on, per-shard statistics
   nominate outliers, a recompute audit convicts liars bitwise
   (:mod:`repro.distributed.byzantine`), ``screened_mean`` swaps
   convicted shards for the auditor's clean recompute, and the
   reputation ledger escalates repeat offenders through quarantine to
   eviction.
5. **Exchange** — the strategy (parameter server or ring all-reduce)
   carries the shard gradients past the fault injector; a ring broken by
   a partition degrades to the PS route for the step.
6. **Apply** — every replica applies the canonically-aggregated update,
   keeping all parameters bit-identical; the cluster barriers.
7. **Checkpoint** — every ``checkpoint_every`` steps the cluster takes a
   coordinated barrier snapshot (Chandy-Lamport degenerates to exactly
   this when channels are empty at a barrier), optionally persisted via
   the atomic CRC32-checked :mod:`repro.framework.checkpoint`.

A worker crash restores *all* replicas from the last coordinated
snapshot, replays the committed aggregate log, and re-runs the
interrupted step from the feed cache — so the committed trajectory is
bit-for-bit the fault-free one.

The anchor invariant: fault-free synchronous training is bit-identical
to :func:`single_worker_reference` (gradient accumulation over the same
``K`` shards on one session) for every workload — by construction, since
both paths share the shard pipeline, the per-shard RNG pinning, the
canonical aggregation, and the Apply-op update path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.framework import checkpoint as checkpoint_lib
from repro.framework.device_model import cpu
from repro.framework.faults import ClusterFaultInjector, ClusterFaultPlan
from repro.framework.resilience import BackoffPolicy
from repro.framework.session import GuardrailPolicy, SessionSnapshot
from repro.workloads.base import FathomModel

from .byzantine import (AttestationPolicy, GradientAttestor,
                        ReputationLedger, ReputationPolicy)
from .clock import SERVER, ClusterClock, ClusterModel
from .events import ClusterEvent, events_signature
from .membership import MembershipChange, MembershipPlan
from .pipeline import ShardedPipeline
from .strategies import (AGGREGATIONS, AllReduceBroken,
                         ParameterServerStrategy, aggregate_shards,
                         make_aggregator, make_strategy)
from .worker import ClusterWorker

MANIFEST_NAME = "cluster-manifest.json"


def modeled_step_seconds(model: FathomModel, device=None) -> float:
    """Deterministic per-shard compute price: the training plan's ops
    costed on an analytic device model (no wall-clock noise)."""
    device = device or cpu(1)
    plan = model.compile_plan(mode="training")
    return float(sum(device.op_time(step.op.work()) for step in plan.steps))


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for :class:`ClusterRuntime`.

    Args:
        workers: primary worker count ``K`` (= shard count).
        strategy: ``"ps"`` or ``"allreduce"``.
        staleness: 0 runs synchronously; ``s > 0`` runs the
            bounded-staleness async PS mode, where workers pull fresh
            parameters only after falling ``s`` versions behind.
        backup_workers: extra shard-mirror replicas for drop-slowest
            straggler tolerance.
        seed: master seed: shard RNG pinning, fault draws, and backoff
            jitter all derive from it.
        checkpoint_every: coordinated-snapshot cadence in steps
            (0 = only the initial snapshot).
        checkpoint_dir: when set, coordinated checkpoints are also
            persisted here (atomic CRC32 archives + a JSON manifest).
        checkpoint_replicas: with ``checkpoint_replicas > 1`` each
            coordinated checkpoint is quorum-written to this many
            replica blob stores under ``checkpoint_dir`` (via
            :class:`repro.storage.ReplicatedCheckpointStore`) instead
            of one bare file — surviving torn writes and bit rot on a
            minority of replicas.
        scrub_interval: clock seconds between background scrub passes
            over the replicated archive (``None`` = no scrubbing; only
            meaningful with ``checkpoint_replicas > 1``).
        message_timeout: receiver wait before declaring a delivery lost.
        max_retries: retransmits per message before the exchange fails.
        backoff_base: first retransmit backoff (jittered per worker).
        compute_seconds: per-shard step compute price on the virtual
            clock; default :func:`modeled_step_seconds`.
        straggler_factor: a worker slower than this multiple of the
            median compute time is flagged as a straggler.
        restart_seconds: virtual-clock cost of restarting a crashed
            worker.
        cluster: interconnect pricing model.
        aggregation: one of :data:`~repro.distributed.strategies.
            AGGREGATIONS`. ``screened_mean`` turns gradient attestation
            on (with default policies unless overridden) and is
            bit-identical to ``mean`` whenever no shard is convicted.
        trim: per-coordinate trim count for ``trimmed_mean``
            (``None`` = the largest safe value, ``(K - 1) // 2``).
        attestation: enable gradient attestation with these thresholds
            (``None`` = off, unless ``aggregation="screened_mean"``
            implies the defaults). Synchronous mode only.
        reputation: quarantine/eviction escalation thresholds (used
            when attestation is on).
        guardrail: wire-level payload screen policy; its
            ``overflow_limit`` extends the NaN/Inf screen to reject
            absurd-magnitude *finite* payloads in flight.
    """

    workers: int = 2
    strategy: str = "ps"
    staleness: int = 0
    backup_workers: int = 0
    seed: int = 0
    checkpoint_every: int = 0
    checkpoint_dir: str | os.PathLike | None = None
    checkpoint_replicas: int = 1
    scrub_interval: float | None = None
    message_timeout: float = 0.05
    max_retries: int = 3
    backoff_base: float = 0.01
    compute_seconds: float | None = None
    straggler_factor: float = 3.0
    restart_seconds: float = 0.25
    cluster: ClusterModel = field(default_factory=ClusterModel)
    aggregation: str = "mean"
    trim: int | None = None
    attestation: AttestationPolicy | None = None
    reputation: ReputationPolicy | None = None
    guardrail: GuardrailPolicy | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.staleness and self.strategy != "ps":
            raise ValueError("bounded-staleness async requires the ps "
                             "strategy")
        if self.backup_workers < 0 or self.staleness < 0:
            raise ValueError("backup_workers and staleness must be >= 0")
        if self.aggregation not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {self.aggregation!r}; "
                             f"expected one of {list(AGGREGATIONS)}")
        if self.staleness and (self.aggregation != "mean"
                               or self.attestation is not None):
            raise ValueError("robust aggregation and attestation require "
                             "synchronous training (staleness=0)")
        if self.trim is not None and self.aggregation != "trimmed_mean":
            raise ValueError("trim only applies to "
                             "aggregation='trimmed_mean'")
        if self.trim is not None and self.trim < 0:
            raise ValueError(f"trim must be >= 0, got {self.trim}")
        if self.checkpoint_replicas < 1:
            raise ValueError(f"checkpoint_replicas must be >= 1, got "
                             f"{self.checkpoint_replicas}")
        if self.scrub_interval is not None and self.scrub_interval <= 0:
            raise ValueError(f"scrub_interval must be > 0, got "
                             f"{self.scrub_interval}")


@dataclass(frozen=True)
class ClusterRunResult:
    """What one cluster run produced, summarized for reports and tests."""

    workload: str
    strategy: str
    workers: int
    steps: int
    losses: list[float]
    events: list[ClusterEvent]
    elapsed_seconds: float
    injected: tuple

    def signature(self) -> tuple:
        """Ordered timing-free event identities (determinism checks)."""
        return events_signature(self.events)

    def events_of(self, kind: str) -> list[ClusterEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_json(self) -> dict:
        return {"workload": self.workload, "strategy": self.strategy,
                "workers": self.workers, "steps": self.steps,
                "losses": self.losses,
                "elapsed_seconds": self.elapsed_seconds,
                "events": [{"step": e.step, "kind": e.kind,
                            "worker": e.worker,
                            "link": list(e.link) if e.link else None,
                            "strategy": e.strategy,
                            "seconds_lost": e.seconds_lost,
                            "detail": e.detail} for e in self.events],
                "injected": [list(sig) for sig in self.injected]}


class _ExchangeContext:
    """Everything a strategy needs to move one step's messages."""

    def __init__(self, runtime: "ClusterRuntime"):
        self.clock = runtime.clock
        self.injector = runtime.injector
        self.cluster = runtime.config.cluster
        self.parameter_bytes = runtime.parameter_bytes
        self.timeout = runtime.config.message_timeout
        self.max_retries = runtime.config.max_retries
        self.emit = runtime._emit_kw
        self.aggregate = runtime._aggregate
        self.overflow_limit = (runtime.config.guardrail.overflow_limit
                               if runtime.config.guardrail is not None
                               else None)
        self._runtime = runtime

    def backoff_for(self, worker: int) -> BackoffPolicy:
        return self._runtime._backoff_for(worker)


class ClusterRuntime:
    """Elastic fault-tolerant data-parallel training over one workload."""

    #: the fault family this harness accepts via :meth:`install_faults`
    #: (the campaign engine's uniform adapter surface; see repro.chaos)
    FAULT_FAMILY = "cluster"

    def __init__(self, model: FathomModel,
                 config: ClusterConfig | None = None,
                 faults: ClusterFaultPlan | None = None,
                 membership: MembershipPlan | None = None,
                 tracer=None):
        self.model = model
        self.config = config or ClusterConfig()
        self.tracer = tracer
        self.membership = membership or MembershipPlan()
        self.injector: ClusterFaultInjector | None = \
            faults.injector() if faults is not None else None
        self.pipeline = ShardedPipeline(model)
        self.parameter_bytes = model.num_parameters() * 4.0
        self.compute_seconds = (self.config.compute_seconds
                                if self.config.compute_seconds is not None
                                else modeled_step_seconds(model))
        self.strategy = make_strategy(self.config.strategy)
        self._ps = (self.strategy
                    if isinstance(self.strategy, ParameterServerStrategy)
                    else ParameterServerStrategy())
        seed = self.config.seed
        self._aggregate = make_aggregator(self.config.aggregation,
                                          self.config.trim)
        # screened_mean implies attestation: screening without a
        # detector would silently be plain mean.
        attestation = self.config.attestation
        if attestation is None and self.config.aggregation == "screened_mean":
            attestation = AttestationPolicy()
        self._attestor = (GradientAttestor(attestation, seed=seed)
                          if attestation is not None else None)
        self._ledger = (ReputationLedger(self.config.reputation)
                        if attestation is not None else None)
        self.workers: dict[int, ClusterWorker] = {}
        for rank in range(self.config.workers + self.config.backup_workers):
            self.workers[rank] = ClusterWorker(rank, model, seed=seed)
        self._primary_ids = list(range(self.config.workers))
        self.clock = ClusterClock(self.workers)
        self._backoffs: dict[int, BackoffPolicy] = {}
        #: every ClusterEvent emitted, in order
        self.events: list[ClusterEvent] = []
        self._reshard()
        # The initial coordinated snapshot: crash recovery always has a
        # consistent state to roll back to, checkpoint cadence or not.
        self._snapshot_step = 0
        self._snapshot: SessionSnapshot = self._any_worker().snapshot()
        #: committed aggregates since the snapshot, for crash replay
        self._replay_log: list[tuple[int, list[np.ndarray]]] = []
        # Async mode: the server owns the authoritative parameters.
        self._server: ClusterWorker | None = None
        self._lags: dict[int, int] = {}
        if self.config.staleness:
            self._server = ClusterWorker(SERVER, model, seed=seed)

    # -- fault arming (campaign adapter surface) ----------------------------

    def install_faults(self, plan: ClusterFaultPlan) -> None:
        """Arm a :class:`~repro.framework.faults.ClusterFaultPlan`.

        Equivalent to passing ``faults=`` at construction; mirrors
        ``InferenceServer.install_faults`` so the chaos campaign engine
        drives every harness through one surface.
        """
        self.injector = plan.injector()

    def uninstall_faults(self) -> None:
        self.injector = None

    # -- events and plumbing -----------------------------------------------

    def _emit(self, event: ClusterEvent) -> None:
        self.events.append(event)
        if self.tracer is not None:
            record = getattr(self.tracer, "record_event", None)
            if record is not None:
                record(event)

    def _emit_kw(self, step: int, kind: str, **kw) -> None:
        self._emit(ClusterEvent(step=step, kind=kind, **kw))

    def _backoff_for(self, worker: int) -> BackoffPolicy:
        policy = self._backoffs.get(worker)
        if policy is None:
            # Per-worker spawn keys keep the jitter streams independent,
            # so simultaneous retransmits de-synchronize.
            policy = BackoffPolicy.for_worker(
                worker, base=self.config.backoff_base,
                seed=self.config.seed)
            self._backoffs[worker] = policy
        return policy

    def _any_worker(self) -> ClusterWorker:
        return self.workers[min(self.workers)]

    def _live_ids(self) -> list[int]:
        return sorted(w for w, worker in self.workers.items()
                      if worker.alive)

    def signature(self) -> tuple:
        return events_signature(self.events)

    # -- membership ---------------------------------------------------------

    def _apply_membership(self, step: int) -> None:
        changes = self.membership.changes_at(step)
        if not changes:
            return
        for change in changes:
            if change.action == "leave":
                if change.worker not in self.workers:
                    raise ValueError(f"step {step}: worker "
                                     f"{change.worker} is not a member")
                if len(self._primary_ids) <= 1 \
                        and change.worker in self._primary_ids:
                    raise ValueError("cannot remove the last primary")
                del self.workers[change.worker]
                self.clock.remove_worker(change.worker)
                if change.worker in self._primary_ids:
                    self._primary_ids.remove(change.worker)
                self._emit_kw(step, "leave", worker=change.worker)
                if self._attestor is not None:
                    self._attestor.forget(change.worker)
                    self._ledger.forget(change.worker)
            else:
                if change.worker in self.workers:
                    raise ValueError(f"step {step}: worker "
                                     f"{change.worker} already a member")
                joiner = ClusterWorker(change.worker, self.model,
                                       seed=self.config.seed)
                # Bootstrap from the current (bit-identical everywhere)
                # parameter state of any live replica.
                joiner.restore(self._any_worker().snapshot())
                self.workers[change.worker] = joiner
                self._primary_ids.append(change.worker)
                self._primary_ids.sort()
                self.clock.add_worker(change.worker)
                self._emit_kw(step, "join", worker=change.worker)
        self._reshard(step)
        # Membership changed under the old snapshot; re-anchor recovery
        # so replay never has to reconstruct departed members.
        self._take_snapshot(step, persist=False, emit=False)

    def _reshard(self, step: int | None = None) -> None:
        primaries = sorted(self._primary_ids)
        backups = sorted(set(self.workers) - set(primaries))
        for shard, worker_id in enumerate(primaries):
            self.workers[worker_id].shard = shard
        for index, worker_id in enumerate(backups):
            self.workers[worker_id].shard = index % len(primaries)
        if step is not None:
            self._emit_kw(step, "reshard",
                          detail=f"{len(primaries)} shards, "
                                 f"{len(backups)} backups")

    # -- checkpoints --------------------------------------------------------

    def _take_snapshot(self, step: int, persist: bool = True,
                       emit: bool = True) -> None:
        self.clock.barrier(self._live_ids())
        self._snapshot_step = step
        self._snapshot = self._any_worker().snapshot()
        self._replay_log.clear()
        self.pipeline.evict_before(step)
        detail = "in-memory"
        if persist and self.config.checkpoint_dir is not None:
            detail = self._persist_checkpoint(step)
        if emit:
            self._emit_kw(step, "checkpoint", detail=detail)

    def _checkpoint_store(self):
        """The replicated archive under ``checkpoint_dir`` (lazy)."""
        if getattr(self, "_ckpt_store", None) is None:
            from repro.storage import open_local_store
            self._ckpt_store = open_local_store(
                os.fspath(self.config.checkpoint_dir),
                replicas=self.config.checkpoint_replicas,
                scrub_interval=self.config.scrub_interval,
                tracer=self.tracer)
        return self._ckpt_store

    def _persist_checkpoint(self, step: int) -> str:
        directory = os.fspath(self.config.checkpoint_dir)
        os.makedirs(directory, exist_ok=True)
        manifest = {"kind": "repro-cluster-checkpoint", "step": step,
                    "workers": len(self._primary_ids),
                    "strategy": self.config.strategy,
                    "seed": self.config.seed,
                    "shard_batch": self.pipeline.shard_batch}
        if self.config.checkpoint_replicas > 1:
            record = self._checkpoint_store().save(
                self._any_worker().session, step=step)
            manifest["storage"] = {
                "replicas": self.config.checkpoint_replicas,
                "checkpoint_id": record.checkpoint_id,
                "digest": record.digest}
            detail = (f"replicated checkpoint {record.checkpoint_id} "
                      f"({record.replicas} replicas)")
        else:
            path = os.path.join(directory, f"cluster-step{step:06d}.npz")
            checkpoint_lib.save(self._any_worker().session, path)
            manifest["checkpoint"] = os.path.basename(path)
            detail = path
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        return detail

    # -- crash recovery -----------------------------------------------------

    def _recover(self, step: int, crashed: list[int]) -> None:
        for worker_id in crashed:
            worker = self.workers[worker_id]
            self._emit_kw(step, "crash", worker=worker_id,
                          detail="worker lost mid-step before exchange")
            worker.alive = False
            self.clock.advance(worker_id, self.config.restart_seconds)
            worker.replace_session(self._snapshot)
            self._emit_kw(step, "restart", worker=worker_id,
                          seconds_lost=self.config.restart_seconds,
                          detail=f"re-forked from coordinated snapshot "
                                 f"of step {self._snapshot_step}")
        # Coordinated rollback: every replica returns to the snapshot,
        # then the committed aggregate log replays — the recovered
        # trajectory is bit-for-bit the pre-crash one.
        for worker_id in self._live_ids():
            self.workers[worker_id].restore(self._snapshot)
        for _logged_step, aggregated in self._replay_log:
            for worker_id in self._live_ids():
                self.workers[worker_id].apply_update(aggregated)
        replay_cost = len(self._replay_log) * self.compute_seconds
        for worker_id in self._live_ids():
            self.clock.advance(worker_id, replay_cost)
        self.clock.barrier(self._live_ids())
        self._emit_kw(step, "recover", seconds_lost=replay_cost,
                      detail=f"rolled back to step {self._snapshot_step}, "
                             f"replayed {len(self._replay_log)} steps")

    # -- the training loop --------------------------------------------------

    def run(self, steps: int) -> ClusterRunResult:
        losses: list[float] = []
        for step in range(steps):
            self._apply_membership(step)
            if self.config.staleness:
                losses.append(self._async_step(step))
            else:
                losses.append(self._sync_step(step))
            if self.config.checkpoint_every and \
                    (step + 1) % self.config.checkpoint_every == 0:
                self._take_snapshot(step + 1)
        return ClusterRunResult(
            workload=self.model.name, strategy=self.config.strategy,
            workers=len(self._primary_ids), steps=steps, losses=losses,
            events=list(self.events),
            elapsed_seconds=self.clock.elapsed(),
            injected=(self.injector.signature()
                      if self.injector is not None else ()))

    # -- synchronous stepping ----------------------------------------------

    def _sync_step(self, step: int) -> float:
        num_shards = len(self._primary_ids)
        feeds = self.pipeline.feeds_for_step(step, num_shards)
        while True:
            crashed = []
            if self.injector is not None:
                crashed = [w for w in self._live_ids()
                           if self.injector.should_crash(w, step)]
            if not crashed:
                break
            self._recover(step, crashed)
            # The interrupted step re-runs from the feed cache; the
            # shard-pinned RNG makes the redo bit-identical.
        results = self._compute_phase(step, feeds)
        contributions = self._select_winners(step, results, num_shards)
        contributions = self._attestation_phase(step, contributions, feeds)
        aggregated = self._exchange(step, contributions)
        for worker_id in self._live_ids():
            self.workers[worker_id].apply_update(aggregated)
        self.clock.barrier(self._live_ids())
        self._replay_log.append((step, aggregated))
        return _canonical_loss([c[2] for c in contributions])

    def _compute_phase(self, step: int, feeds: list[dict]) -> dict:
        """Every live worker computes its shard; returns per-worker
        ``(finish_time, shard, loss, grads)``."""
        results: dict[int, tuple] = {}
        times: dict[int, float] = {}
        for worker_id in self._live_ids():
            worker = self.workers[worker_id]
            delay = (self.injector.compute_delay(worker_id, step)
                     if self.injector is not None else 0.0)
            elapsed = self.compute_seconds + delay
            finish = self.clock.advance(worker_id, elapsed)
            times[worker_id] = elapsed
            loss, grads = worker.compute_gradients(
                feeds[worker.shard], step, worker.shard)
            if self.injector is not None:
                corrupt = getattr(self.injector, "corrupt_gradients", None)
                corrupted = (corrupt(worker_id, step, grads)
                             if corrupt is not None else None)
                if corrupted is not None:
                    grads = corrupted
            results[worker_id] = (finish, worker.shard, loss, grads)
        self._detect_stragglers(step, times)
        return results

    def _detect_stragglers(self, step: int, times: dict[int, float]) -> None:
        if len(times) < 2 or self.config.straggler_factor <= 0:
            return
        median = float(np.median(sorted(times.values())))
        for worker_id in sorted(times):
            if times[worker_id] > self.config.straggler_factor * median:
                self._emit_kw(
                    step, "straggler", worker=worker_id,
                    seconds_lost=times[worker_id] - median,
                    detail=f"compute {times[worker_id]:.4f}s vs median "
                           f"{median:.4f}s "
                           f"(x{self.config.straggler_factor:.1f} bound)")

    def _select_winners(self, step: int, results: dict,
                        num_shards: int) -> list[tuple]:
        """Drop-slowest: per shard, the first finisher's result is used.

        Mirrors compute bit-identical gradients (shard-pinned RNG), so
        promotion changes timing and events, never arithmetic.
        """
        contributions = []
        for shard in range(num_shards):
            candidates = sorted(
                (finish, worker_id)
                for worker_id, (finish, worker_shard, _l, _g)
                in results.items() if worker_shard == shard)
            if not candidates:
                raise RuntimeError(f"shard {shard} has no live worker")
            _finish, winner = candidates[0]
            primary = sorted(self._primary_ids)[shard]
            if winner != primary:
                self._emit_kw(
                    step, "backup_promote", worker=winner,
                    detail=f"mirror beat primary {primary} on shard "
                           f"{shard} (drop-slowest)")
            _f, _s, loss, grads = results[winner]
            contributions.append((shard, winner, loss, grads))
        return contributions

    # -- gradient attestation (byzantine detection) -------------------------

    def _attestation_phase(self, step: int, contributions: list[tuple],
                           feeds: list[dict]) -> list[tuple]:
        """Statistics nominate, recompute audits convict.

        Per-shard statistics (:meth:`GradientAttestor.attest`) plus a
        seeded round-robin probe nominate shards; each nominee is
        recomputed by another live worker and compared **bitwise** —
        legal because a shard's gradient is a pure function of
        ``(seed, step, shard)``, and trustworthy because the audit
        recompute goes straight through ``compute_gradients`` (the
        injector corrupts only original contributions, modelling
        re-execution attestation on coordinator-verified hardware).
        Honest workers are always exonerated; convicted shards emit
        ``gradient_suspect`` and — under ``screened_mean``, or whenever
        the offender is quarantined — are replaced by the auditor's
        clean recompute (``shard_replay``), keeping the committed
        aggregate bitwise fault-free. Convictions feed the reputation
        ledger, which escalates quarantine → eviction.
        """
        attestor = self._attestor
        if attestor is None \
                or len(contributions) < attestor.policy.min_peers:
            return contributions
        records = attestor.attest(step, contributions)
        probe = attestor.probe_shard(step, len(contributions))
        quarantined = set(self._ledger.quarantined)
        out = list(contributions)
        suspects: set[int] = set()
        for index, record in enumerate(records):
            shard, worker, _loss, grads = contributions[index]
            nominated = bool(record.reasons) or index == probe \
                or worker in quarantined
            if not nominated:
                continue
            auditor = next((w for w in self._live_ids() if w != worker),
                           None)
            if auditor is None:
                continue
            audit_loss, audit_grads = self.workers[auditor] \
                .compute_gradients(feeds[shard], step, shard)
            self.clock.advance(auditor, self.compute_seconds)
            if _grads_equal(grads, audit_grads):
                continue  # exonerated
            suspects.add(worker)
            reason = "; ".join(record.reasons) or "round-robin probe"
            self._emit_kw(
                step, "gradient_suspect", worker=worker,
                detail=f"shard {shard}: audit recompute on worker "
                       f"{auditor} diverged ({reason}; "
                       f"norm_ratio={record.norm_ratio:.2f}, "
                       f"cosine={record.cosine:.2f})")
            if self.config.aggregation == "screened_mean" \
                    or worker in quarantined:
                out[index] = (shard, worker, audit_loss, audit_grads)
                self._emit_kw(
                    step, "shard_replay", worker=worker,
                    seconds_lost=self.compute_seconds,
                    detail=f"shard {shard} replaced by clean recompute "
                           f"from worker {auditor}")
        self._apply_reputation(step, suspects,
                               {c[1] for c in contributions})
        return out

    def _apply_reputation(self, step: int, suspects: set[int],
                          participants: set[int]) -> None:
        for action, worker in self._ledger.observe(step, suspects,
                                                   participants):
            if action == "quarantine":
                self._emit_kw(
                    step, "quarantine", worker=worker,
                    detail=f"suspect streak reached "
                           f"{self._ledger.policy.quarantine_after}; "
                           f"shard screened, worker still probed")
            elif action == "lift":
                self._emit_kw(
                    step, "quarantine_lift", worker=worker,
                    detail=f"{self._ledger.policy.lift_after} consecutive "
                           f"clean audits; worker readmitted")
            else:  # evict
                self._schedule_eviction(step, worker)

    def _schedule_eviction(self, step: int, worker: int) -> None:
        if worker in self._primary_ids and len(self._primary_ids) <= 1:
            # Never evict the last primary: keep it quarantined so its
            # shard stays screened every step.
            self._ledger.evicted.discard(worker)
            self._ledger.quarantined.add(worker)
            self._emit_kw(step, "quarantine", worker=worker,
                          detail="eviction skipped: last primary stays "
                                 "quarantined")
            return
        scheduled = any(c.step == step + 1 and c.action == "leave"
                        and c.worker == worker
                        for c in self.membership.changes)
        if not scheduled:
            self.membership = self.membership.adding(
                MembershipChange(step + 1, "leave", worker))
        self._emit_kw(step, "evict", worker=worker,
                      detail=f"suspect streak reached "
                             f"{self._ledger.policy.evict_after}; leaves "
                             f"before step {step + 1} and the pipeline "
                             f"re-shards")

    def _exchange(self, step: int, contributions: list[tuple]
                  ) -> list[np.ndarray]:
        ctx = _ExchangeContext(self)
        wire = [(shard, worker, grads)
                for shard, worker, _loss, grads in contributions]
        participants = self._live_ids()
        try:
            return self.strategy.exchange(ctx, step, wire, participants)
        except AllReduceBroken as exc:
            # Partitioned worker<->worker links don't block the
            # worker<->server routes: degrade to the (slower,
            # serializing) PS path for this step.
            self._emit_kw(step, "fallback", link=exc.link,
                          strategy="allreduce",
                          detail=f"ring broken ({exc}); degrading to "
                                 f"parameter-server exchange")
            return self._ps.exchange(ctx, step, wire, participants)

    # -- bounded-staleness async stepping -----------------------------------

    def _async_step(self, step: int) -> float:
        """Async PS: the server applies arrivals immediately; workers
        pull fresh parameters only after lagging ``staleness`` versions."""
        num_shards = len(self._primary_ids)
        feeds = self.pipeline.feeds_for_step(step, num_shards)
        ctx = _ExchangeContext(self)
        server = self._server
        arrivals = []
        for worker_id in sorted(self._primary_ids):
            worker = self.workers[worker_id]
            delay = (self.injector.compute_delay(worker_id, step)
                     if self.injector is not None else 0.0)
            finish = self.clock.advance(worker_id,
                                        self.compute_seconds + delay)
            loss, grads = worker.compute_gradients(
                feeds[worker.shard], step, worker.shard)
            arrivals.append((finish, worker_id, loss, grads))
        # The server consumes gradients in (virtual) arrival order —
        # deterministic: the clock is, and ties break on worker id.
        losses = []
        for _finish, worker_id, loss, grads in sorted(
                arrivals, key=lambda a: (a[0], a[1])):
            delivered = self._ps.push(ctx, step, worker_id, grads)
            server.apply_update(delivered)
            losses.append(loss)
        for worker_id in sorted(self._primary_ids):
            lag = self._lags.get(worker_id, 0) + 1
            if lag > self.config.staleness:
                values = [v for v in server.session._variables.values()]
                self._ps.pull(ctx, step, worker_id, values or
                              [np.zeros(1, dtype=np.float32)])
                self.workers[worker_id].pull_from(server)
                self._emit_kw(step, "staleness", worker=worker_id,
                              strategy="ps",
                              detail=f"pulled parameters after lagging "
                                     f"{lag} versions")
                lag = 0
            self._lags[worker_id] = lag
        return _canonical_loss(losses)


def _canonical_loss(shard_losses: list[float]) -> float:
    """Global loss: fixed-order mean of the shard losses."""
    return float(sum(shard_losses) / len(shard_losses))


def _grads_equal(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    """Bitwise equality of two gradient lists (the audit verdict)."""
    return len(a) == len(b) and all(
        np.array_equal(np.asarray(x), np.asarray(y))
        for x, y in zip(a, b))


def single_worker_reference(model: FathomModel, steps: int, shards: int,
                            seed: int = 0) -> tuple[list[float],
                                                    ClusterWorker]:
    """Single-worker training on the same global batch.

    Gradient accumulation over the ``shards`` per-step minibatches in
    canonical order on one session — the anchor the bit-identity
    invariant is stated against. Shares the pipeline, the per-shard RNG
    pinning, :func:`~repro.distributed.strategies.aggregate_shards`,
    and the Apply-op update path with the cluster runtime, so equality
    is structural rather than coincidental.

    Returns ``(per-step losses, the worker)`` so callers can compare
    final parameters bit-for-bit.
    """
    worker = ClusterWorker(0, model, seed=seed)
    pipeline = ShardedPipeline(model)
    losses = []
    for step in range(steps):
        feeds = pipeline.feeds_for_step(step, shards)
        shard_losses, shard_grads = [], []
        for shard in range(shards):
            loss, grads = worker.compute_gradients(feeds[shard], step, shard)
            shard_losses.append(loss)
            shard_grads.append(grads)
        worker.apply_update(aggregate_shards(shard_grads))
        losses.append(_canonical_loss(shard_losses))
    return losses, worker


def restore_cluster(model: FathomModel,
                    directory: str | os.PathLike,
                    config: ClusterConfig | None = None,
                    **kw) -> tuple["ClusterRuntime", dict]:
    """Resume a cluster from a persisted coordinated checkpoint.

    The new cluster may have a *different* worker count: checkpoints are
    keyed by variable name, and every replica restores the identical
    archive, so the restored parameters are bit-identical regardless of
    ``config.workers``. Returns ``(runtime, manifest)``.
    """
    directory = os.fspath(directory)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("kind") != "repro-cluster-checkpoint":
        raise ValueError(f"{manifest_path}: not a cluster checkpoint "
                         f"manifest")
    runtime = ClusterRuntime(model, config=config, **kw)
    if "storage" in manifest:
        # Replicated archive: restore through the durable store, which
        # digest-verifies and fails over/repairs damaged replicas.
        from repro.storage import open_local_store
        store = open_local_store(
            directory, replicas=manifest["storage"]["replicas"])
        checkpoint_id = manifest["storage"]["checkpoint_id"]
        for worker in runtime.workers.values():
            store.restore(worker.session, checkpoint_id)
        if runtime._server is not None:
            store.restore(runtime._server.session, checkpoint_id)
    else:
        archive = os.path.join(directory, manifest["checkpoint"])
        for worker in runtime.workers.values():
            checkpoint_lib.restore(worker.session, archive)
        if runtime._server is not None:
            checkpoint_lib.restore(runtime._server.session, archive)
    # Re-anchor recovery on the restored state.
    runtime._snapshot = runtime._any_worker().snapshot()
    runtime._snapshot_step = 0
    return runtime, manifest
