"""One data-parallel worker: a forked session plus gradient plumbing.

The executed runtime never feeds gradients through placeholders (only
placeholders are feedable) and never mutates the workload graph.
Instead it exploits the optimizer's structure: ``model.train_step`` is a
``Group`` over per-variable ``Apply*`` update ops, each of which takes
its gradient as ``inputs[0]`` and reads/writes its variable through the
run context. That gives two primitives:

* **extract** — fetching ``[loss] + [apply.inputs[0] ...]`` runs the
  forward and backward passes but *not* the updates, yielding the local
  gradients;
* **apply** — calling ``apply_op.compute((aggregated_grad,), ctx)``
  performs the exact update the graph would have, including optimizer
  slot state (momenta, Adam moments), against the worker's session.

Because every worker applies the identical canonically-aggregated
gradients, all replicas hold bit-identical parameters after every
synchronous step — the invariant the whole fault-tolerance story
(backup mirrors, checkpoint-from-any-worker, join-by-fork) leans on.

Stochastic graph ops (dropout, the VAE's reparameterization sample)
draw from the session RNG, so the runtime pins the RNG state per
``(step, shard)`` before each gradient computation: shard ``s`` of step
``t`` produces the same draws no matter which worker — primary, backup
mirror, restarted replacement, or the single-worker reference — runs it.
"""

from __future__ import annotations

import numpy as np

from repro.framework.optimizers import _ApplyOp
from repro.framework.session import Session, SessionSnapshot
from repro.workloads.base import FathomModel


def training_targets(model: FathomModel) -> list[_ApplyOp]:
    """The per-variable ``Apply*`` update ops behind ``train_step``."""
    group = model.train_step.op
    applies = [t.op for t in group.inputs]
    bad = [op.name for op in applies if not isinstance(op, _ApplyOp)]
    if bad:
        raise TypeError(
            f"{model.name}: train_step groups non-update ops {bad[:3]}; "
            f"the distributed runtime needs Apply* updates")
    return applies


def shard_rng_state(seed: int, step: int, shard: int) -> dict:
    """The pinned RNG state for one ``(step, shard)`` computation."""
    sequence = np.random.SeedSequence(seed, spawn_key=(step, shard))
    return np.random.default_rng(sequence).bit_generator.state


class ClusterWorker:
    """A live worker: session fork + compiled gradient fetch set."""

    def __init__(self, worker_id: int, model: FathomModel, seed: int = 0):
        self.id = int(worker_id)
        self.model = model
        self.seed = int(seed)
        #: shard index this worker computes (reassigned on re-sharding;
        #: backups mirror a primary's shard)
        self.shard: int = self.id
        self.alive = True
        self.applies = training_targets(model)
        self._fetches = [model.loss] + [op.inputs[0] for op in self.applies]
        self.session: Session = model.session.fork(seed=seed)

    # -- compute -----------------------------------------------------------

    def compute_gradients(self, feed: dict, step: int,
                          shard: int) -> tuple[float, list[np.ndarray]]:
        """One local forward/backward pass on a shard; no update applied.

        The session RNG is pinned to ``(data_seed, step, shard)`` first,
        so the result is a pure function of the shard, not the worker.
        """
        self.session.rng.bit_generator.state = \
            shard_rng_state(self.seed, step, shard)
        results = self.session.run(self._fetches, feed_dict=feed)
        return float(np.asarray(results[0])), results[1:]

    def apply_update(self, aggregated: list[np.ndarray]) -> None:
        """Apply canonically-aggregated gradients through the Apply* ops."""
        ctx = self.session._ctx
        for apply_op, grad in zip(self.applies, aggregated):
            apply_op.compute((grad,), ctx)

    def pull_from(self, other: "ClusterWorker") -> None:
        """Adopt another replica's parameters (async PS pull).

        Both sessions are forks over the same graph, so the id-keyed
        variable stores line up; optimizer slot state travels too.
        """
        self.session._variables.clear()
        self.session._variables.update(
            {key: value.copy()
             for key, value in other.session._variables.items()})
        self.session._variable_ops.clear()
        self.session._variable_ops.update(other.session._variable_ops)

    # -- state -------------------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        return self.session.state_snapshot()

    def restore(self, snapshot: SessionSnapshot) -> None:
        self.session.restore_snapshot(snapshot)

    def replace_session(self, snapshot: SessionSnapshot) -> None:
        """Restart after a crash: fresh fork, state from the snapshot."""
        self.session = self.model.session.fork(seed=self.seed)
        self.session.restore_snapshot(snapshot)
        self.alive = True
