"""Gradient exchange: parameter-server and ring-all-reduce transports.

A strategy moves one step's shard gradients across the (virtual)
network: it prices the collective on the :class:`~repro.distributed.
clock.ClusterModel`, pushes every message past the cluster fault
injector, survives lost and corrupted deliveries by timeout +
per-worker seeded-jitter retransmit, and returns the aggregated
gradients.

**Transport never touches arithmetic.** Aggregation is always the
context's configured aggregator — by default :func:`aggregate_shards`,
a canonical-shard-order float32 sum divided by the shard count —
regardless of which transport carried the bytes or in which order they
arrived. A real ring all-reduce would sum chunks in ring order and
produce a *different* float32 rounding than a PS sum; fixing one
canonical reduction order instead makes the result
transport-independent, which is what lets fault-free training be
bit-identical to the single-worker reference and lets the runtime fall
back from the ring to the PS path mid-run without perturbing the
trajectory. The strategies therefore govern *timing, faults, and
events*; the numbers are the same by construction. Byzantine-robust
alternatives (:data:`AGGREGATIONS`) swap in coordinate-wise trimmed
mean or median — same canonical shard order, different estimator.

Fault handling per message:

* **lost** (``lost_gradient`` or an active ``partition``): the receiver
  burns the configured timeout, the sender sleeps a jittered backoff
  (each worker's jitter stream is private — see
  :meth:`~repro.framework.resilience.BackoffPolicy.for_worker` — so
  retry storms de-synchronize) and retransmits.
* **corrupt** (``corrupt_gradient``): the receiver's numerical screen —
  the same NaN/Inf test the session guardrails apply to op outputs —
  rejects the payload and requests a retransmit.
* **retries exhausted**: the PS path raises :class:`ExchangeError`
  (unrecoverable for that step); the ring raises
  :class:`AllReduceBroken`, which the runtime catches to degrade to the
  PS path (partitioned worker↔worker links don't block worker↔server
  routes).
"""

from __future__ import annotations

import numpy as np

from .clock import SERVER

__all__ = ["AGGREGATIONS", "AllReduceBroken", "ExchangeError",
           "ParameterServerStrategy", "RingAllReduceStrategy",
           "aggregate_shards", "coordinate_median_shards",
           "make_aggregator", "make_strategy", "trimmed_mean_shards"]

#: robust-aggregation registry (see :func:`make_aggregator`):
#: ``screened_mean`` is plain :func:`aggregate_shards` arithmetic — its
#: robustness comes from the runtime replacing attestation-flagged
#: shards with clean recomputes *before* aggregation, which is what
#: keeps it bit-identical to ``mean`` whenever nothing is flagged.
AGGREGATIONS = ("mean", "trimmed_mean", "coordinate_median",
                "screened_mean")


class ExchangeError(RuntimeError):
    """A gradient exchange could not complete within its retry budget."""

    def __init__(self, message: str, link: tuple[int, int] | None = None):
        super().__init__(message)
        self.link = link


class AllReduceBroken(ExchangeError):
    """The ring collective lost a link for good; fall back to PS."""


def aggregate_shards(shard_grads: list[list[np.ndarray]]
                     ) -> list[np.ndarray]:
    """Canonical mean over shards: fixed-order float32 sum, then ``/K``.

    ``shard_grads[s][v]`` is shard ``s``'s gradient for variable ``v``.
    The summation order is the shard order — never arrival or ring
    order — so every transport (and the single-worker reference's
    gradient accumulation) produces bitwise-identical aggregates.
    """
    if not shard_grads:
        raise ValueError("no shard gradients to aggregate")
    count = np.float32(len(shard_grads))
    aggregated = []
    for per_shard in zip(*shard_grads):
        total = per_shard[0].copy()
        for grad in per_shard[1:]:
            total += grad
        aggregated.append(total / count)
    return aggregated


def trimmed_mean_shards(shard_grads: list[list[np.ndarray]],
                        trim: int | None = None) -> list[np.ndarray]:
    """Coordinate-wise trimmed mean: drop the ``trim`` largest and
    smallest values per coordinate, mean the rest (float32).

    ``trim=None`` picks the largest safe value, ``(K - 1) // 2`` —
    tolerant of up to ``trim`` byzantine shards per coordinate. With
    ``trim=0`` (or fewer than three shards) this degenerates to the
    canonical mean, bitwise.
    """
    if not shard_grads:
        raise ValueError("no shard gradients to aggregate")
    count = len(shard_grads)
    if trim is None:
        trim = (count - 1) // 2
    trim = min(int(trim), (count - 1) // 2)
    if trim <= 0:
        return aggregate_shards(shard_grads)
    aggregated = []
    for per_shard in zip(*shard_grads):
        stacked = np.sort(np.stack(per_shard), axis=0)
        kept = stacked[trim:count - trim]
        aggregated.append(np.mean(kept, axis=0, dtype=np.float32))
    return aggregated


def coordinate_median_shards(shard_grads: list[list[np.ndarray]]
                             ) -> list[np.ndarray]:
    """Coordinate-wise median over shards (float32).

    The classic byzantine-tolerant estimator: each coordinate ignores
    up to ``(K - 1) // 2`` arbitrary values. Pays for the robustness
    with bias — the median of K means is not the mean — so convergence
    is tolerance-checked, never bitwise.
    """
    if not shard_grads:
        raise ValueError("no shard gradients to aggregate")
    aggregated = []
    for per_shard in zip(*shard_grads):
        median = np.median(np.stack(per_shard), axis=0)
        aggregated.append(median.astype(per_shard[0].dtype, copy=False))
    return aggregated


def make_aggregator(name: str, trim: int | None = None):
    """Aggregator registry for the config layer.

    Returns a callable ``shard_grads -> aggregated``. ``mean`` and
    ``screened_mean`` are the *same arithmetic* (the screening happens
    upstream in the runtime); they differ only in what the runtime does
    with attestation verdicts before calling the aggregator.
    """
    if name in ("mean", "screened_mean"):
        return aggregate_shards
    if name == "trimmed_mean":
        return lambda shard_grads: trimmed_mean_shards(shard_grads, trim)
    if name == "coordinate_median":
        return coordinate_median_shards
    raise ValueError(f"unknown aggregation {name!r}; expected one of "
                     f"{list(AGGREGATIONS)}")


def _screen(payload: list[np.ndarray],
            overflow_limit: float | None = None) -> str | None:
    """Rejection reason for a delivered payload, or ``None`` if clean.

    Two screens, mirroring the session guardrails
    (:class:`~repro.framework.session.GuardrailPolicy`): every float
    tensor must be finite, and — when ``overflow_limit`` is set — the
    payload's global L2 norm must not exceed it. The norm screen
    catches *finite* garbage (e.g. a byzantine-scaled gradient) that
    the NaN/Inf test waves through.
    """
    total_sq = 0.0
    for value in payload:
        if not np.issubdtype(value.dtype, np.floating):
            continue
        if not np.isfinite(value).all():
            return "non-finite gradient payload rejected"
        if overflow_limit is not None:
            total_sq += float(np.sum(np.square(value, dtype=np.float64)))
    if overflow_limit is not None:
        norm = float(np.sqrt(total_sq))
        if norm > overflow_limit:
            return (f"gradient payload norm {norm:.4g} exceeds "
                    f"overflow limit {overflow_limit:.4g}")
    return None


class _Transport:
    """Shared deliver-with-retries machinery for both strategies."""

    name = "transport"

    def _deliver(self, ctx, step: int, src: int, dst: int,
                 payload: list[np.ndarray]) -> list[np.ndarray]:
        """Move one message across ``src -> dst``, surviving faults.

        Returns the (screened) delivered payload; raises
        :class:`ExchangeError` when the retry budget is exhausted.
        Virtual-time charges: a loss costs the receiver the timeout, a
        retransmit costs the sender its jittered backoff.
        """
        clock = ctx.clock
        attempt = 0
        while True:
            status, probe = "ok", payload[0]
            if ctx.injector is not None:
                status, probe = ctx.injector.on_message(
                    src, dst, step, payload[0])
            delivered = payload if status == "ok" else \
                (None if status == "lost" else [probe, *payload[1:]])
            if delivered is not None:
                reason = _screen(delivered, ctx.overflow_limit)
                if reason is None:
                    return delivered
            if delivered is None:
                # Nothing arrived: the receiver waits out the timeout.
                if dst in clock.workers:
                    clock.advance(dst, ctx.timeout)
                ctx.emit(step, "timeout", worker=dst, link=(src, dst),
                         strategy=self.name, seconds_lost=ctx.timeout,
                         detail=f"no delivery on {src}->{dst} within "
                                f"{ctx.timeout:.3f}s")
            else:
                # Poisoned payload: the receiver's numerical screen
                # (the guardrail test) rejects it and asks for a clean
                # copy, naming the sender it blames.
                ctx.emit(step, "corrupt_screened", worker=dst,
                         link=(src, dst), strategy=self.name,
                         detail=f"from worker {src}: {reason}")
            if attempt >= ctx.max_retries:
                raise ExchangeError(
                    f"link {src}->{dst} failed {attempt + 1} deliveries "
                    f"at step {step}", link=(src, dst))
            delay = ctx.backoff_for(src).delay(attempt)
            if src in clock.workers:
                clock.advance(src, delay)
            attempt += 1
            ctx.emit(step, "retransmit", worker=src, link=(src, dst),
                     strategy=self.name, seconds_lost=delay,
                     detail=f"attempt {attempt} after {delay:.4f}s backoff")


class ParameterServerStrategy(_Transport):
    """Centralized exchange: push shard gradients, pull the aggregate.

    Synchronous mode: the server barriers on every shard's push,
    aggregates canonically, and broadcasts — all replicas apply the
    identical update. (The bounded-staleness *async* mode reuses the
    same push/pull message plumbing but is driven by the runtime, which
    owns the server's parameter state.)
    """

    name = "ps"

    def exchange(self, ctx, step: int,
                 contributions: list[tuple[int, int, list[np.ndarray]]],
                 participants: list[int]) -> list[np.ndarray]:
        for _shard, worker, grads in contributions:
            self.push(ctx, step, worker, grads)
        aggregated = ctx.aggregate([g for _, _, g in contributions])
        for worker in sorted(participants):
            self.pull(ctx, step, worker, aggregated)
        cost = ctx.cluster.ps_seconds(ctx.parameter_bytes,
                                      len(contributions))
        for worker in participants:
            ctx.clock.advance(worker, cost)
        ctx.clock.barrier(participants)
        return aggregated

    def push(self, ctx, step: int, worker: int,
             grads: list[np.ndarray]) -> list[np.ndarray]:
        return self._deliver(ctx, step, worker, SERVER, grads)

    def pull(self, ctx, step: int, worker: int,
             values: list[np.ndarray]) -> list[np.ndarray]:
        return self._deliver(ctx, step, SERVER, worker, values)


class RingAllReduceStrategy(_Transport):
    """Decentralized exchange: 2(K-1) neighbor passes around a ring.

    The ring schedule exists to carry *timing and faults*: every phase
    sends one segment across each directed ring link, so a partitioned
    or lossy link surfaces exactly where a real ring would stall. When a
    link stays dead past the retry budget the collective is declared
    broken (:class:`AllReduceBroken`) and the step falls back to the PS
    route — a degradation the runtime records, since the PS exchange
    serializes at the server's link.
    """

    name = "allreduce"

    def exchange(self, ctx, step: int,
                 contributions: list[tuple[int, int, list[np.ndarray]]],
                 participants: list[int]) -> list[np.ndarray]:
        ring = sorted(participants)
        segments = {worker: grads
                    for _shard, worker, grads in contributions}
        if len(ring) > 1:
            for _phase in range(2 * (len(ring) - 1)):
                for index, src in enumerate(ring):
                    dst = ring[(index + 1) % len(ring)]
                    # The segment a worker forwards is whatever it last
                    # reduced; any of its shard tensors stands in for
                    # the wire payload.
                    payload = segments.get(src) \
                        or next(iter(segments.values()))
                    try:
                        self._deliver(ctx, step, src, dst, payload)
                    except ExchangeError as exc:
                        raise AllReduceBroken(
                            f"ring broken at step {step}: {exc}",
                            link=exc.link) from exc
        aggregated = ctx.aggregate([g for _, _, g in contributions])
        cost = ctx.cluster.allreduce_seconds(ctx.parameter_bytes,
                                             len(ring))
        for worker in ring:
            ctx.clock.advance(worker, cost)
        ctx.clock.barrier(ring)
        return aggregated


def make_strategy(name: str):
    """Strategy registry for the CLI and config layer."""
    strategies = {"ps": ParameterServerStrategy,
                  "allreduce": RingAllReduceStrategy}
    try:
        return strategies[name]()
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; expected one of "
                         f"{sorted(strategies)}") from None
