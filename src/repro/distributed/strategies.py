"""Gradient exchange: parameter-server and ring-all-reduce transports.

A strategy moves one step's shard gradients across the (virtual)
network: it prices the collective on the :class:`~repro.distributed.
clock.ClusterModel`, pushes every message past the cluster fault
injector, survives lost and corrupted deliveries by timeout +
per-worker seeded-jitter retransmit, and returns the aggregated
gradients.

**Transport never touches arithmetic.** Aggregation is always
:func:`aggregate_shards` — a canonical-shard-order float32 sum divided
by the shard count — regardless of which transport carried the bytes or
in which order they arrived. A real ring all-reduce would sum chunks in
ring order and produce a *different* float32 rounding than a PS sum;
fixing one canonical reduction order instead makes the result
transport-independent, which is what lets fault-free training be
bit-identical to the single-worker reference and lets the runtime fall
back from the ring to the PS path mid-run without perturbing the
trajectory. The strategies therefore govern *timing, faults, and
events*; the numbers are the same by construction.

Fault handling per message:

* **lost** (``lost_gradient`` or an active ``partition``): the receiver
  burns the configured timeout, the sender sleeps a jittered backoff
  (each worker's jitter stream is private — see
  :meth:`~repro.framework.resilience.BackoffPolicy.for_worker` — so
  retry storms de-synchronize) and retransmits.
* **corrupt** (``corrupt_gradient``): the receiver's numerical screen —
  the same NaN/Inf test the session guardrails apply to op outputs —
  rejects the payload and requests a retransmit.
* **retries exhausted**: the PS path raises :class:`ExchangeError`
  (unrecoverable for that step); the ring raises
  :class:`AllReduceBroken`, which the runtime catches to degrade to the
  PS path (partitioned worker↔worker links don't block worker↔server
  routes).
"""

from __future__ import annotations

import numpy as np

from .clock import SERVER

__all__ = ["AllReduceBroken", "ExchangeError", "ParameterServerStrategy",
           "RingAllReduceStrategy", "aggregate_shards", "make_strategy"]


class ExchangeError(RuntimeError):
    """A gradient exchange could not complete within its retry budget."""

    def __init__(self, message: str, link: tuple[int, int] | None = None):
        super().__init__(message)
        self.link = link


class AllReduceBroken(ExchangeError):
    """The ring collective lost a link for good; fall back to PS."""


def aggregate_shards(shard_grads: list[list[np.ndarray]]
                     ) -> list[np.ndarray]:
    """Canonical mean over shards: fixed-order float32 sum, then ``/K``.

    ``shard_grads[s][v]`` is shard ``s``'s gradient for variable ``v``.
    The summation order is the shard order — never arrival or ring
    order — so every transport (and the single-worker reference's
    gradient accumulation) produces bitwise-identical aggregates.
    """
    if not shard_grads:
        raise ValueError("no shard gradients to aggregate")
    count = np.float32(len(shard_grads))
    aggregated = []
    for per_shard in zip(*shard_grads):
        total = per_shard[0].copy()
        for grad in per_shard[1:]:
            total += grad
        aggregated.append(total / count)
    return aggregated


def _screen(payload: list[np.ndarray]) -> bool:
    """True if every float tensor in the payload is finite (guardrail)."""
    for value in payload:
        if np.issubdtype(value.dtype, np.floating) \
                and not np.isfinite(value).all():
            return False
    return True


class _Transport:
    """Shared deliver-with-retries machinery for both strategies."""

    name = "transport"

    def _deliver(self, ctx, step: int, src: int, dst: int,
                 payload: list[np.ndarray]) -> list[np.ndarray]:
        """Move one message across ``src -> dst``, surviving faults.

        Returns the (screened) delivered payload; raises
        :class:`ExchangeError` when the retry budget is exhausted.
        Virtual-time charges: a loss costs the receiver the timeout, a
        retransmit costs the sender its jittered backoff.
        """
        clock = ctx.clock
        attempt = 0
        while True:
            status, probe = "ok", payload[0]
            if ctx.injector is not None:
                status, probe = ctx.injector.on_message(
                    src, dst, step, payload[0])
            delivered = payload if status == "ok" else \
                (None if status == "lost" else [probe, *payload[1:]])
            if delivered is not None and _screen(delivered):
                return delivered
            if delivered is None:
                # Nothing arrived: the receiver waits out the timeout.
                if dst in clock.workers:
                    clock.advance(dst, ctx.timeout)
                ctx.emit(step, "timeout", worker=dst, link=(src, dst),
                         strategy=self.name, seconds_lost=ctx.timeout,
                         detail=f"no delivery on {src}->{dst} within "
                                f"{ctx.timeout:.3f}s")
            else:
                # Poisoned payload: the receiver's NaN/Inf screen (the
                # guardrail test) rejects it and asks for a clean copy.
                ctx.emit(step, "corrupt_screened", worker=dst,
                         link=(src, dst), strategy=self.name,
                         detail="non-finite gradient payload rejected")
            if attempt >= ctx.max_retries:
                raise ExchangeError(
                    f"link {src}->{dst} failed {attempt + 1} deliveries "
                    f"at step {step}", link=(src, dst))
            delay = ctx.backoff_for(src).delay(attempt)
            if src in clock.workers:
                clock.advance(src, delay)
            attempt += 1
            ctx.emit(step, "retransmit", worker=src, link=(src, dst),
                     strategy=self.name, seconds_lost=delay,
                     detail=f"attempt {attempt} after {delay:.4f}s backoff")


class ParameterServerStrategy(_Transport):
    """Centralized exchange: push shard gradients, pull the aggregate.

    Synchronous mode: the server barriers on every shard's push,
    aggregates canonically, and broadcasts — all replicas apply the
    identical update. (The bounded-staleness *async* mode reuses the
    same push/pull message plumbing but is driven by the runtime, which
    owns the server's parameter state.)
    """

    name = "ps"

    def exchange(self, ctx, step: int,
                 contributions: list[tuple[int, int, list[np.ndarray]]],
                 participants: list[int]) -> list[np.ndarray]:
        for _shard, worker, grads in contributions:
            self.push(ctx, step, worker, grads)
        aggregated = aggregate_shards([g for _, _, g in contributions])
        for worker in sorted(participants):
            self.pull(ctx, step, worker, aggregated)
        cost = ctx.cluster.ps_seconds(ctx.parameter_bytes,
                                      len(contributions))
        for worker in participants:
            ctx.clock.advance(worker, cost)
        ctx.clock.barrier(participants)
        return aggregated

    def push(self, ctx, step: int, worker: int,
             grads: list[np.ndarray]) -> list[np.ndarray]:
        return self._deliver(ctx, step, worker, SERVER, grads)

    def pull(self, ctx, step: int, worker: int,
             values: list[np.ndarray]) -> list[np.ndarray]:
        return self._deliver(ctx, step, SERVER, worker, values)


class RingAllReduceStrategy(_Transport):
    """Decentralized exchange: 2(K-1) neighbor passes around a ring.

    The ring schedule exists to carry *timing and faults*: every phase
    sends one segment across each directed ring link, so a partitioned
    or lossy link surfaces exactly where a real ring would stall. When a
    link stays dead past the retry budget the collective is declared
    broken (:class:`AllReduceBroken`) and the step falls back to the PS
    route — a degradation the runtime records, since the PS exchange
    serializes at the server's link.
    """

    name = "allreduce"

    def exchange(self, ctx, step: int,
                 contributions: list[tuple[int, int, list[np.ndarray]]],
                 participants: list[int]) -> list[np.ndarray]:
        ring = sorted(participants)
        segments = {worker: grads
                    for _shard, worker, grads in contributions}
        if len(ring) > 1:
            for _phase in range(2 * (len(ring) - 1)):
                for index, src in enumerate(ring):
                    dst = ring[(index + 1) % len(ring)]
                    # The segment a worker forwards is whatever it last
                    # reduced; any of its shard tensors stands in for
                    # the wire payload.
                    payload = segments.get(src) \
                        or next(iter(segments.values()))
                    try:
                        self._deliver(ctx, step, src, dst, payload)
                    except ExchangeError as exc:
                        raise AllReduceBroken(
                            f"ring broken at step {step}: {exc}",
                            link=exc.link) from exc
        aggregated = aggregate_shards([g for _, _, g in contributions])
        cost = ctx.cluster.allreduce_seconds(ctx.parameter_bytes,
                                             len(ring))
        for worker in ring:
            ctx.clock.advance(worker, cost)
        ctx.clock.barrier(ring)
        return aggregated


def make_strategy(name: str):
    """Strategy registry for the CLI and config layer."""
    strategies = {"ps": ParameterServerStrategy,
                  "allreduce": RingAllReduceStrategy}
    try:
        return strategies[name]()
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; expected one of "
                         f"{sorted(strategies)}") from None
