"""Gradient attestation and reputation: catching workers that lie.

The fault kinds of PR 5 are *fail-stop or loud*: a crashed worker stops
talking, a NaN-poisoned payload fails the wire screen instantly. The
byzantine kinds (:data:`~repro.framework.faults.BYZANTINE_FAULT_KINDS`)
are neither — a scaled, sign-flipped, stale, or drifting gradient is
finite, has the right shapes, and aggregates silently into every
replica. This module is the detection side of that threat model; the
recovery side (shard replacement, quarantine, eviction) lives in the
runtime's attestation phase.

**Statistics nominate, recompute audits convict.** Per-shard summary
statistics — gradient norm, norm ratio against the median of peers,
worst per-layer norm ratio, cosine against the sum of peers, and a
digest-repeat test — are scored against peers each step. But on real
workloads the honest ranges are wide (the leave-one-out cosine of an
honest memnet shard dips below -0.5), so statistics alone must either
miss attacks or slander honest workers. The repo's determinism contract
breaks the dilemma: a shard's gradient is a **pure function** of
``(seed, step, shard)`` (per-(step, shard) RNG pinning — see
``worker.py``), so any peer can recompute a nominated shard and compare
**bitwise**. An honest worker is always exonerated (recompute matches),
so the statistical triggers can be aggressive; a corrupted shard always
diverges, so conviction is certain. A seeded round-robin probe audits
one extra shard per step, which bounds the detection latency of
corruptions subtle enough to pass every statistic: a persistent liar is
audited within ``K - 1`` steps no matter how gentle the corruption.

Everything is deterministic given ``(policy, seed)``: the probe
schedule derives from the seed, the statistics are pure functions of
the contributions, and the audit is a bitwise comparison — the same run
replays the same suspects, quarantines, and evictions.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["AttestationPolicy", "GradientAttestor", "ReputationLedger",
           "ReputationPolicy", "ShardAttestation"]


@dataclass(frozen=True)
class AttestationPolicy:
    """Thresholds for nominating shards to the recompute audit.

    False positives are cheap (one extra gradient recompute, after
    which the honest worker is exonerated bitwise), so the defaults are
    deliberately aggressive relative to the honest ranges measured
    across the eight workloads (honest norm ratios reach ~5, honest
    leave-one-out cosines dip to ~-0.58).

    Args:
        norm_ratio_limit: audit a shard whose gradient norm exceeds
            this multiple of the median peer norm.
        cosine_floor: audit a shard whose cosine against the sum of its
            peers falls below this (a sign-flipped shard scores the
            exact negation of its honest cosine).
        probe_every: audit one seeded round-robin shard every this many
            steps (``0`` disables the probe — and with it the bounded
            detection-latency guarantee).
        stale_window: audit a shard whose payload digest repeats any of
            the worker's last ``stale_window`` digests (``0`` disables).
        min_peers: skip attestation entirely below this many
            contributions — peer statistics need peers.
    """

    norm_ratio_limit: float = 8.0
    cosine_floor: float = -0.25
    probe_every: int = 1
    stale_window: int = 4
    min_peers: int = 2

    def __post_init__(self):
        if self.norm_ratio_limit <= 1.0:
            raise ValueError(
                f"norm_ratio_limit must be > 1, got {self.norm_ratio_limit}")
        if not -1.0 <= self.cosine_floor <= 1.0:
            raise ValueError(
                f"cosine_floor must be in [-1, 1], got {self.cosine_floor}")
        if self.probe_every < 0:
            raise ValueError(
                f"probe_every must be >= 0, got {self.probe_every}")
        if self.stale_window < 0:
            raise ValueError(
                f"stale_window must be >= 0, got {self.stale_window}")
        if self.min_peers < 2:
            raise ValueError(
                f"min_peers must be >= 2, got {self.min_peers}")


@dataclass(frozen=True)
class ShardAttestation:
    """One shard's per-step attestation scorecard.

    ``reasons`` lists the statistical triggers that nominated the shard
    for audit (empty = statistically clean). Nomination is *not* an
    accusation: the runtime convicts only when the audit recompute
    diverges bitwise.
    """

    step: int
    shard: int
    worker: int
    norm: float
    norm_ratio: float
    layer_ratio: float
    cosine: float
    digest: str
    reasons: tuple[str, ...] = ()


def _flatten(grads) -> np.ndarray:
    return np.concatenate(
        [np.asarray(g, dtype=np.float64).ravel() for g in grads]) \
        if grads else np.zeros(0)


def _digest(grads) -> str:
    hasher = hashlib.sha1()
    for grad in grads:
        array = np.ascontiguousarray(grad)
        hasher.update(array.tobytes())
    return hasher.hexdigest()


class GradientAttestor:
    """Scores each step's shard gradients and nominates audits.

    Stateless across steps except for the per-worker digest windows
    (the stale detector) — and those are forgotten when a worker leaves
    (:meth:`forget`), so a joiner reusing an id starts clean.
    """

    def __init__(self, policy: AttestationPolicy | None = None,
                 seed: int = 0):
        self.policy = policy or AttestationPolicy()
        self.seed = int(seed)
        # The probe's round-robin offset is drawn once from the seed so
        # different runs probe different phases, identically on replay.
        self._probe_offset = int(
            np.random.default_rng(self.seed).integers(0, 2 ** 31))
        self._digests: dict[int, deque] = {}

    def probe_shard(self, step: int, num_shards: int) -> int | None:
        """The seeded round-robin audit victim for this step, if any."""
        policy = self.policy
        if policy.probe_every <= 0 or num_shards <= 0 \
                or step % policy.probe_every:
            return None
        return (step + self._probe_offset) % num_shards

    def attest(self, step: int,
               contributions: list[tuple[int, int, float, list]]
               ) -> list[ShardAttestation]:
        """Score one step's contributions ``(shard, worker, loss, grads)``.

        Returns one :class:`ShardAttestation` per contribution, in
        contribution order. Digest windows update as a side effect, so
        call exactly once per committed step.
        """
        policy = self.policy
        flats = [_flatten(grads) for _, _, _, grads in contributions]
        norms = [float(np.linalg.norm(flat)) for flat in flats]
        median_norm = float(np.median(norms)) if norms else 0.0
        total = np.sum(np.stack(flats), axis=0) if flats else np.zeros(0)
        layer_medians = self._layer_medians(contributions)
        records = []
        for index, (shard, worker, _loss, grads) in \
                enumerate(contributions):
            reasons = []
            norm = norms[index]
            norm_ratio = norm / median_norm if median_norm > 0.0 else 1.0
            if norm_ratio > policy.norm_ratio_limit:
                reasons.append(
                    f"norm_ratio {norm_ratio:.2f} > "
                    f"{policy.norm_ratio_limit:g}")
            peers = total - flats[index]
            peers_norm = float(np.linalg.norm(peers))
            cosine = 1.0
            if norm > 0.0 and peers_norm > 0.0:
                cosine = float(np.dot(flats[index], peers)
                               / (norm * peers_norm))
            if cosine < policy.cosine_floor:
                reasons.append(f"cosine {cosine:.2f} < "
                               f"{policy.cosine_floor:g}")
            layer_ratio = self._layer_ratio(grads, layer_medians)
            digest = _digest(grads)
            window = self._digests.setdefault(
                worker, deque(maxlen=max(policy.stale_window, 1)))
            if policy.stale_window and digest in window:
                reasons.append("digest repeats a recent contribution")
            window.append(digest)
            records.append(ShardAttestation(
                step=step, shard=shard, worker=worker, norm=norm,
                norm_ratio=norm_ratio, layer_ratio=layer_ratio,
                cosine=cosine, digest=digest, reasons=tuple(reasons)))
        return records

    def forget(self, worker: int) -> None:
        """Drop a departed worker's digest history."""
        self._digests.pop(worker, None)

    @staticmethod
    def _layer_medians(contributions) -> list[float]:
        per_layer: list[list[float]] = []
        for _, _, _, grads in contributions:
            for index, grad in enumerate(grads):
                if index >= len(per_layer):
                    per_layer.append([])
                per_layer[index].append(
                    float(np.linalg.norm(
                        np.asarray(grad, dtype=np.float64))))
        return [float(np.median(norms)) for norms in per_layer]

    @staticmethod
    def _layer_ratio(grads, layer_medians: list[float]) -> float:
        # Recorded for diagnosis, never flagged on: honest per-layer
        # ratios span [0.05, 9.3] across the eight workloads, far too
        # noisy for a threshold.
        worst = 1.0
        for index, grad in enumerate(grads):
            median = layer_medians[index] if index < len(layer_medians) \
                else 0.0
            if median <= 0.0:
                continue
            norm = float(np.linalg.norm(np.asarray(grad,
                                                   dtype=np.float64)))
            worst = max(worst, norm / median)
        return worst


@dataclass(frozen=True)
class ReputationPolicy:
    """How many convictions it takes to quarantine, then evict.

    Streaks are *consecutive* audited-and-convicted steps: one clean
    step resets the count, so a transient glitch (a single bit-flipped
    exchange) never escalates. A quarantined worker keeps computing and
    keeps being probed every step; ``lift_after`` consecutive clean
    audits readmit it, ``evict_after`` total consecutive convictions
    remove it from membership for good.
    """

    quarantine_after: int = 2
    evict_after: int = 4
    lift_after: int = 2

    def __post_init__(self):
        if self.quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, "
                             f"got {self.quarantine_after}")
        if self.evict_after <= self.quarantine_after:
            raise ValueError(
                f"evict_after ({self.evict_after}) must exceed "
                f"quarantine_after ({self.quarantine_after})")
        if self.lift_after < 1:
            raise ValueError(
                f"lift_after must be >= 1, got {self.lift_after}")


class ReputationLedger:
    """Per-worker conviction streaks driving quarantine and eviction.

    Fed once per committed step with the set of convicted workers; the
    returned actions are deterministic and ordered by worker id, so the
    same run always produces the same quarantine/evict event trail.
    """

    def __init__(self, policy: ReputationPolicy | None = None):
        self.policy = policy or ReputationPolicy()
        self.quarantined: set[int] = set()
        self.evicted: set[int] = set()
        self._suspect_streak: dict[int, int] = {}
        self._clean_streak: dict[int, int] = {}

    def observe(self, step: int, suspects: set[int],
                participants: set[int]) -> list[tuple[str, int]]:
        """Record one step's verdicts; return ``(action, worker)`` pairs.

        Actions are ``"quarantine"``, ``"lift"``, and ``"evict"``, in
        worker-id order. Workers absent from ``participants`` (crashed
        this step, already gone) keep their streaks untouched.
        """
        actions: list[tuple[str, int]] = []
        for worker in sorted(participants):
            if worker in self.evicted:
                continue
            if worker in suspects:
                self._suspect_streak[worker] = \
                    self._suspect_streak.get(worker, 0) + 1
                self._clean_streak[worker] = 0
            else:
                self._suspect_streak[worker] = 0
                self._clean_streak[worker] = \
                    self._clean_streak.get(worker, 0) + 1
            streak = self._suspect_streak[worker]
            if worker in self.quarantined:
                if streak >= self.policy.evict_after:
                    actions.append(("evict", worker))
                    self.quarantined.discard(worker)
                    self.evicted.add(worker)
                elif self._clean_streak[worker] >= self.policy.lift_after:
                    actions.append(("lift", worker))
                    self.quarantined.discard(worker)
            elif streak >= self.policy.quarantine_after:
                actions.append(("quarantine", worker))
                self.quarantined.add(worker)
        return actions

    def forget(self, worker: int) -> None:
        """Drop a departed worker's ledger state (id may be reused)."""
        self.quarantined.discard(worker)
        self.evicted.discard(worker)
        self._suspect_streak.pop(worker, None)
        self._clean_streak.pop(worker, None)
