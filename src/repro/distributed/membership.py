"""Elastic membership: workers join and leave between steps.

The cluster treats membership as a declarative, seed-free schedule:
:class:`MembershipPlan` lists which worker ids join or leave before
which global step. Changes are only legal on step boundaries — inside a
step the worker set is fixed — which keeps re-sharding deterministic:
after a change, the data pipeline simply shards the next global batch
``K'`` ways in canonical order, and a joiner bootstraps by forking the
current (bit-identical everywhere) parameter state.
"""

from __future__ import annotations

from dataclasses import dataclass

_ACTIONS = ("join", "leave")


@dataclass(frozen=True)
class MembershipChange:
    """One scheduled membership transition, applied before ``step``."""

    step: int
    action: str
    worker: int

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}")


@dataclass(frozen=True)
class MembershipPlan:
    """An immutable schedule of join/leave transitions."""

    changes: tuple[MembershipChange, ...]

    def __init__(self, changes=()):
        ordered = tuple(sorted(changes,
                               key=lambda c: (c.step, c.action, c.worker)))
        object.__setattr__(self, "changes", ordered)

    def changes_at(self, step: int) -> list[MembershipChange]:
        return [c for c in self.changes if c.step == step]

    def adding(self, change: MembershipChange) -> "MembershipPlan":
        """A new plan with ``change`` merged in (plans are immutable).

        The runtime uses this to schedule reputation-driven evictions
        discovered *during* the run — e.g. a byzantine worker voted out
        by the attestation ledger leaves on the next step boundary.
        """
        return MembershipPlan(self.changes + (change,))

    @classmethod
    def elastic(cls, join_step: int, leave_step: int,
                joiner: int, leaver: int) -> "MembershipPlan":
        """Convenience: one worker joins, another later leaves."""
        return cls([MembershipChange(join_step, "join", joiner),
                    MembershipChange(leave_step, "leave", leaver)])
