"""Executed fault-tolerant data-parallel training (see docs/distributed.md).

Unlike :mod:`repro.analysis.scaling` — which *prices* data-parallel
scaling analytically — this package *runs* it: each worker is a real
``Session.fork`` computing real numpy gradient steps, coordinated over a
deterministic event-driven cluster clock, with injectable worker
crashes, stragglers, network partitions, and lost/corrupted gradient
messages.

The anchor invariant: fault-free synchronous data-parallel training is
bit-identical to single-worker training on the same global batch, for
every workload. Everything else — coordinated checkpoints, crash replay,
backup mirrors, ring→PS fallback, elastic membership — is built so
faults perturb *timing and events* but never the committed trajectory.
"""

from .clock import SERVER, ClusterClock, ClusterModel, WorkerClock
from .events import CLUSTER_EVENT_KINDS, ClusterEvent, events_signature
from .membership import MembershipChange, MembershipPlan
from .pipeline import ShardedPipeline
from .runtime import (ClusterConfig, ClusterRunResult, ClusterRuntime,
                      modeled_step_seconds, restore_cluster,
                      single_worker_reference)
from .strategies import (AllReduceBroken, ExchangeError,
                         ParameterServerStrategy, RingAllReduceStrategy,
                         aggregate_shards, make_strategy)
from .worker import ClusterWorker, shard_rng_state, training_targets

__all__ = [
    "SERVER", "ClusterClock", "ClusterModel", "WorkerClock",
    "CLUSTER_EVENT_KINDS", "ClusterEvent", "events_signature",
    "MembershipChange", "MembershipPlan", "ShardedPipeline",
    "ClusterConfig", "ClusterRunResult", "ClusterRuntime",
    "modeled_step_seconds", "restore_cluster", "single_worker_reference",
    "AllReduceBroken", "ExchangeError", "ParameterServerStrategy",
    "RingAllReduceStrategy", "aggregate_shards", "make_strategy",
    "ClusterWorker", "shard_rng_state", "training_targets",
]
