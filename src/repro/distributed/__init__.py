"""Executed fault-tolerant data-parallel training (see docs/distributed.md).

Unlike :mod:`repro.analysis.scaling` — which *prices* data-parallel
scaling analytically — this package *runs* it: each worker is a real
``Session.fork`` computing real numpy gradient steps, coordinated over a
deterministic event-driven cluster clock, with injectable worker
crashes, stragglers, network partitions, lost/corrupted gradient
messages, and byzantine source-corrupted gradients.

The anchor invariant: fault-free synchronous data-parallel training is
bit-identical to single-worker training on the same global batch, for
every workload. Everything else — coordinated checkpoints, crash replay,
backup mirrors, ring→PS fallback, elastic membership, gradient
attestation with reputation-driven eviction — is built so faults perturb
*timing and events* but never the committed trajectory.
"""

from .byzantine import (AttestationPolicy, GradientAttestor,
                        ReputationLedger, ReputationPolicy,
                        ShardAttestation)
from .clock import SERVER, ClusterClock, ClusterModel, WorkerClock
from .events import CLUSTER_EVENT_KINDS, ClusterEvent, events_signature
from .membership import MembershipChange, MembershipPlan
from .pipeline import ShardedPipeline
from .runtime import (ClusterConfig, ClusterRunResult, ClusterRuntime,
                      modeled_step_seconds, restore_cluster,
                      single_worker_reference)
from .strategies import (AGGREGATIONS, AllReduceBroken, ExchangeError,
                         ParameterServerStrategy, RingAllReduceStrategy,
                         aggregate_shards, coordinate_median_shards,
                         make_aggregator, make_strategy,
                         trimmed_mean_shards)
from .worker import ClusterWorker, shard_rng_state, training_targets

__all__ = [
    "SERVER", "ClusterClock", "ClusterModel", "WorkerClock",
    "CLUSTER_EVENT_KINDS", "ClusterEvent", "events_signature",
    "MembershipChange", "MembershipPlan", "ShardedPipeline",
    "ClusterConfig", "ClusterRunResult", "ClusterRuntime",
    "modeled_step_seconds", "restore_cluster", "single_worker_reference",
    "AGGREGATIONS", "AllReduceBroken", "ExchangeError",
    "ParameterServerStrategy", "RingAllReduceStrategy",
    "aggregate_shards", "coordinate_median_shards", "make_aggregator",
    "make_strategy", "trimmed_mean_shards",
    "AttestationPolicy", "GradientAttestor", "ReputationLedger",
    "ReputationPolicy", "ShardAttestation",
    "ClusterWorker", "shard_rng_state", "training_targets",
]
