"""The eight Fathom reference workloads (the paper's Table II).

Every workload implements the standard model interface
(:class:`~repro.workloads.base.FathomModel`): build the graph, feed
minibatches, run inference or training, profile. Construct one by name::

    from repro import workloads
    model = workloads.create("alexnet", config="tiny", seed=0)
    model.run_training(steps=2)
"""

from .alexnet import AlexNet
from .autoenc import VariationalAutoencoder
from .base import FathomModel, WorkloadMetadata
from .deepq import DeepQ
from .memnet import MemN2N
from .residual import ResidualNet
from .seq2seq import Seq2Seq
from .speech import DeepSpeech
from .vgg import VGG

#: registry in the paper's Table II order
WORKLOADS: dict[str, type[FathomModel]] = {
    "seq2seq": Seq2Seq,
    "memnet": MemN2N,
    "speech": DeepSpeech,
    "autoenc": VariationalAutoencoder,
    "residual": ResidualNet,
    "vgg": VGG,
    "alexnet": AlexNet,
    "deepq": DeepQ,
}

WORKLOAD_NAMES = list(WORKLOADS)


def create(name: str, config: str = "default", seed: int = 0,
           backend: str | None = None) -> FathomModel:
    """Instantiate a workload by name.

    ``backend`` selects the session's execution backend axis:
    ``"interp"`` (the default plan interpreter) or ``"codegen"``
    (generated region kernels; see :mod:`repro.framework.codegen`).
    """
    try:
        workload_cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: "
                       f"{WORKLOAD_NAMES}") from None
    return workload_cls(config=config, seed=seed, backend=backend)


__all__ = [
    "AlexNet", "VariationalAutoencoder", "FathomModel", "WorkloadMetadata",
    "DeepQ", "MemN2N", "ResidualNet", "Seq2Seq", "DeepSpeech", "VGG",
    "WORKLOADS", "WORKLOAD_NAMES", "create",
]
