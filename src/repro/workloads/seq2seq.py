"""seq2seq: sequence-to-sequence translation (Sutskever et al., 2014).

The canonical recurrent encoder-decoder: a stack of LSTM layers encodes
the source sentence into a high-dimensional embedding, and a decoder
stack re-emits it in the target language, with Bahdanau-style additive
attention keeping track of context in the original sentence (the paper
cites [4] for the attention model). Training uses teacher forcing with a
per-position cross-entropy weighted to ignore padding.

The operation mix this produces is exactly what the paper reports for
seq2seq: heavy elementwise multiplication from the LSTM gates, and data
movement (Tile, Transpose, Concat) plus small matmuls from the attention
mechanism (Sections V-B, V-C; Fig. 6b).
"""

from __future__ import annotations

import numpy as np

from repro.data import wmt
from repro.data.wmt import SyntheticWMT
from repro.framework import initializers, layers, rnn
from repro.framework.graph import Tensor, name_scope
from repro.framework.ops import (add, batch_matmul, concat, divide,
                                 expand_dims, matmul, multiply, one_hot,
                                 placeholder, reduce_sum, reshape, softmax,
                                 softmax_cross_entropy_with_logits, split,
                                 squeeze, tanh, tile)
from repro.framework.ops.state_ops import variable
from repro.framework.optimizers import GradientDescentOptimizer

from .base import FathomModel, WorkloadMetadata


class Seq2Seq(FathomModel):
    name = "seq2seq"
    metadata = WorkloadMetadata(
        name="seq2seq", year=2014, reference="Sutskever et al. [43]",
        neuronal_style="Recurrent", layers=7, learning_task="Supervised",
        dataset="WMT-15",
        description=("Direct language-to-language sentence translation. "
                     "State-of-the-art accuracy with a simple, "
                     "language-agnostic architecture."))

    # The paper's core network is "three 7-neuron [LSTM] layers" (Section
    # IV) — Fathom's seq2seq is a deliberately small recurrent stack, and
    # its tiny per-op tensors are why the measured profile is dominated by
    # elementwise arithmetic and data movement rather than MatMul
    # (Sections V-B/V-C, Fig. 6b). The default config keeps that regime.
    configs = {
        "tiny": {"vocab_size": 50, "embed_dim": 16, "hidden_units": 16,
                 "num_layers": 1, "sequence_length": 5, "batch_size": 2,
                 "learning_rate": 0.5},
        "default": {"vocab_size": 1000, "embed_dim": 32,
                    "hidden_units": 32, "num_layers": 2,
                    "sequence_length": 12, "batch_size": 16,
                    "learning_rate": 0.5},
        "paper": {"vocab_size": 40_000, "embed_dim": 64,
                  "hidden_units": 7, "num_layers": 3,
                  "sequence_length": 30, "batch_size": 64,
                  "learning_rate": 0.5},
    }

    def _embed_steps(self, ids: Tensor, table: Tensor,
                     name: str) -> list[Tensor]:
        """Per-timestep embedded inputs for a (batch, steps) id tensor."""
        from repro.framework.ops import gather
        embedded = gather(table, ids, name=name)  # (batch, steps, embed)
        steps = [squeeze(piece, [1]) for piece in
                 split(embedded, ids.shape[1], axis=1, name=f"{name}_step")]
        return steps

    def _lstm_stack(self, prefix: str, input_size: int) -> list[rnn.LSTMCell]:
        cfg = self.config
        cells = []
        size = input_size
        for layer in range(cfg["num_layers"]):
            cells.append(rnn.LSTMCell(cfg["hidden_units"], size,
                                      self.init_rng,
                                      name=f"{prefix}/lstm{layer}"))
            size = cfg["hidden_units"]
        return cells

    @staticmethod
    def _run_stack(cells: list[rnn.LSTMCell], x: Tensor,
                   states: list[rnn.LSTMState]):
        new_states = []
        for cell, state in zip(cells, states):
            x, new_state = cell(x, state)
            new_states.append(new_state)
        return x, new_states

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticWMT(vocab_size=cfg["vocab_size"],
                                    max_length=cfg["sequence_length"],
                                    seed=self.seed)
        batch = cfg["batch_size"]
        source_len = cfg["sequence_length"]
        target_len = source_len + 1
        hidden = cfg["hidden_units"]
        vocab = cfg["vocab_size"]

        self.source = placeholder((batch, source_len), dtype=np.int32,
                                  name="source")
        self.decoder_input = placeholder((batch, target_len), dtype=np.int32,
                                         name="decoder_input")
        self.target = placeholder((batch, target_len), dtype=np.int32,
                                  name="target")
        self.weights = placeholder((batch, target_len), name="weights")

        embed_init = initializers.uniform(0.1)
        source_table = variable(embed_init(self.init_rng,
                                           (vocab, cfg["embed_dim"])),
                                name="source_embedding")
        target_table = variable(embed_init(self.init_rng,
                                           (vocab, cfg["embed_dim"])),
                                name="target_embedding")

        # -- encoder ---------------------------------------------------------
        with name_scope("encoder"):
            encoder_cells = self._lstm_stack("encoder", cfg["embed_dim"])
            states = [cell.zero_state(batch) for cell in encoder_cells]
            top_outputs = []
            for step in self._embed_steps(self.source, source_table,
                                          "source_embed"):
                out, states = self._run_stack(encoder_cells, step, states)
                top_outputs.append(out)
            memory = concat([expand_dims(o, 1) for o in top_outputs],
                            axis=1, name="memory")  # (batch, src, hidden)

        # -- additive attention (Bahdanau et al.) ------------------------------
        with name_scope("attention"):
            w_memory = variable(initializers.glorot_uniform(
                self.init_rng, (hidden, hidden)), name="w_memory")
            w_query = variable(initializers.glorot_uniform(
                self.init_rng, (hidden, hidden)), name="w_query")
            v_score = variable(initializers.glorot_uniform(
                self.init_rng, (hidden, 1)), name="v_score")
            keys = reshape(
                matmul(reshape(memory, (batch * source_len, hidden)),
                       w_memory),
                (batch, source_len, hidden), name="keys")

        def attend(query: Tensor) -> Tensor:
            """Context vector for one decoder state."""
            projected = matmul(query, w_query)
            tiled = tile(expand_dims(projected, 1), (1, source_len, 1),
                         name="query_tile")
            energies = tanh(add(keys, tiled))
            scores = reshape(
                matmul(reshape(energies, (batch * source_len, hidden)),
                       v_score),
                (batch, source_len), name="scores")
            alignment = softmax(scores, name="alignment")
            context = squeeze(
                batch_matmul(expand_dims(alignment, 1), memory), [1],
                name="context")
            return context

        # -- decoder with teacher forcing ---------------------------------------
        with name_scope("decoder"):
            decoder_cells = self._lstm_stack("decoder", cfg["embed_dim"])
            w_combine = variable(initializers.glorot_uniform(
                self.init_rng, (2 * hidden, hidden)), name="w_combine")
            w_project = variable(initializers.glorot_uniform(
                self.init_rng, (hidden, vocab)), name="w_project")
            decoder_states = states  # encoder final states seed the decoder
            step_logits = []
            for step in self._embed_steps(self.decoder_input, target_table,
                                          "target_embed"):
                out, decoder_states = self._run_stack(decoder_cells, step,
                                                      decoder_states)
                context = attend(out)
                combined = tanh(matmul(concat([out, context], axis=1),
                                       w_combine))
                step_logits.append(matmul(combined, w_project))

        # -- weighted sequence loss ------------------------------------------------
        with name_scope("loss"):
            weight_steps = [squeeze(piece, [1]) for piece in
                            split(self.weights, target_len, axis=1)]
            target_steps = [squeeze(piece, [1]) for piece in
                            split(self.target, target_len, axis=1)]
            step_losses = []
            for logits, target, weight in zip(step_logits, target_steps,
                                              weight_steps):
                xent = softmax_cross_entropy_with_logits(
                    logits, one_hot(target, vocab))
                step_losses.append(reduce_sum(multiply(xent, weight)))
            total = reduce_sum(
                concat([expand_dims(s, 0) for s in step_losses], axis=0))
            denominator = reduce_sum(self.weights)
            self._loss_fetch = divide(total, denominator, name="perplexity")

        self._inference_fetch = concat(
            [softmax(logits) for logits in step_logits], axis=0,
            name="translations")
        self._train_fetch = GradientDescentOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.source: batch["source"],
                self.decoder_input: batch["decoder_input"],
                self.target: batch["target"],
                self.weights: batch["weights"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Teacher-forced token accuracy and per-token perplexity."""
        correct = weight_total = 0.0
        loss_total = 0.0
        batch = self.batch_size
        steps = self.config["sequence_length"] + 1
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            probs, loss = self.session.run(
                [self._inference_fetch, self._loss_fetch], feed_dict=feed)
            # inference output is (steps*batch, vocab) in time-major blocks
            predictions = probs.argmax(axis=1).reshape(steps, batch).T
            weights = feed[self.weights]
            correct += float(
                ((predictions == feed[self.target]) * weights).sum())
            weight_total += float(weights.sum())
            loss_total += float(loss)
        return {"token_accuracy": correct / weight_total,
                "perplexity": float(np.exp(loss_total / batches))}
