"""deepq: deep Q-learning on Atari-style games (Mnih et al., 2013).

The suite's reinforcement-learning representative — the paper notes it
was, at the time, the *only* reinforcement workload anywhere near the
architecture literature. The model is the DQN convolutional tower
(stacked frames -> 2-3 conv layers -> 2 dense layers -> one Q-value per
action) trained with the Bellman bootstrap: the regression target for
``Q(s, a)`` is ``r + gamma * max_a' Q_target(s', a')`` computed by a
periodically-synchronized target network and held fixed through
``StopGradient``. The optimizer is RMSProp, whose ``ApplyRMSProp`` nodes
are the rising non-convolutional profile entry in the paper's Fig. 6a.

The original drives the Arcade Learning Environment; this reproduction
substitutes the pixel arcade games in :mod:`repro.rl.ale` and keeps the
full loop — frame stacking, epsilon-greedy play, experience replay,
target-network sync — via :class:`repro.rl.agent.DQNAgent` (the workload
implements the agent's ``QNetwork`` protocol).
"""

from __future__ import annotations

import numpy as np

from repro.framework import initializers, layers
from repro.framework.graph import Tensor, name_scope
from repro.framework.ops import (abs_, add, flatten, minimum, multiply,
                                 one_hot, placeholder, reduce_max,
                                 reduce_mean, reduce_sum, relu, square,
                                 stop_gradient, subtract)
from repro.framework.ops.state_ops import VariableOp, assign, group
from repro.framework.optimizers import RMSPropOptimizer
from repro.rl import ale
from repro.rl.replay import ReplayBuffer

from .base import FathomModel, WorkloadMetadata


class DeepQ(FathomModel):
    name = "deepq"
    metadata = WorkloadMetadata(
        name="deepq", year=2013, reference="Mnih et al. [36]",
        neuronal_style="Convolutional, Full", layers=5,
        learning_task="Reinforcement", dataset="Atari ALE",
        description=("Atari-playing neural network from DeepMind. Achieves "
                     "superhuman performance on majority of Atari2600 "
                     "games, without any preconceptions."))

    configs = {
        "tiny": {"game": "catch", "screen_size": 16, "frame_depth": 4,
                 "batch_size": 4, "channel_scale": 0.25, "dense_units": 64,
                 "gamma": 0.95, "learning_rate": 1e-3,
                 "replay_capacity": 512, "replay_seed_transitions": 64},
        "default": {"game": "catch", "screen_size": 24, "frame_depth": 4,
                    "batch_size": 32, "channel_scale": 0.5,
                    "dense_units": 256, "gamma": 0.99,
                    "learning_rate": 2.5e-4, "replay_capacity": 4096,
                    "replay_seed_transitions": 256},
        "paper": {"game": "catch", "screen_size": 84, "frame_depth": 4,
                  "batch_size": 32, "channel_scale": 1.0,
                  "dense_units": 512, "gamma": 0.99,
                  "learning_rate": 2.5e-4, "replay_capacity": 100_000,
                  "replay_seed_transitions": 1024},
    }

    # (filters at scale 1.0, kernel, stride) — Mnih et al.'s tower
    _CONV_PLAN = [(32, 8, 4), (64, 4, 2), (64, 3, 1)]

    def _q_tower(self, states: Tensor, scope: str) -> tuple[Tensor, str]:
        """Build one Q-network tower; returns (q_values, scope prefix)."""
        cfg = self.config
        with name_scope(scope):
            net = states
            for index, (filters, kernel, stride) in enumerate(
                    self._CONV_PLAN, start=1):
                kernel = min(kernel, net.shape[1])
                net = layers.conv2d_layer(
                    net, max(4, int(filters * cfg["channel_scale"])), kernel,
                    self.init_rng, strides=min(stride, net.shape[1]),
                    padding="SAME", activation=relu,
                    kernel_init=initializers.he_normal, name=f"conv{index}")
            net = flatten(net)
            net = layers.dense(net, cfg["dense_units"], self.init_rng,
                               activation=relu, name="fc1")
            q_values = layers.dense(net, self.env.num_actions, self.init_rng,
                                    name="q_values")
        return q_values, scope

    def build(self) -> None:
        cfg = self.config
        self.env = ale.make(cfg["game"], screen_size=cfg["screen_size"],
                            seed=self.seed)
        state_shape = (cfg["screen_size"], cfg["screen_size"],
                       cfg["frame_depth"])
        batch = cfg["batch_size"]

        self.states = placeholder((batch,) + state_shape, name="states")
        self.actions = placeholder((batch,), dtype=np.int32, name="actions")
        self.rewards = placeholder((batch,), name="rewards")
        self.next_states = placeholder((batch,) + state_shape,
                                       name="next_states")
        self.dones = placeholder((batch,), name="dones")

        self.q_online, online_scope = self._q_tower(self.states, "online")
        q_next, target_scope = self._q_tower(self.next_states, "target")

        with name_scope("bellman"):
            max_next = reduce_max(q_next, axis=1)
            target = stop_gradient(
                add(self.rewards,
                    multiply(cfg["gamma"],
                             multiply(max_next, subtract(1.0, self.dones)))))
            chosen = reduce_sum(
                multiply(self.q_online,
                         one_hot(self.actions, self.env.num_actions)),
                axis=1)
            error = subtract(chosen, target)
            # Huber loss composed from primitives: quadratic inside the
            # unit interval, linear outside.
            abs_error = abs_(error)
            clipped = minimum(abs_error, 1.0)
            huber = add(multiply(0.5, square(clipped)),
                        subtract(abs_error, clipped))
            self._loss_fetch = reduce_mean(huber, name="huber_loss")

        online_vars = self._scope_variables(online_scope)
        target_vars = self._scope_variables(target_scope)
        self._train_fetch = RMSPropOptimizer(
            cfg["learning_rate"], decay=0.95,
            epsilon=0.01).minimize(self._loss_fetch, var_list=online_vars)
        with name_scope("sync"):
            copies = [assign(dst, src)
                      for dst, src in zip(target_vars, online_vars)]
            self._sync_fetch = group(*copies, name="sync_target")

        self._inference_fetch = self.q_online
        self.replay = ReplayBuffer(cfg["replay_capacity"], state_shape,
                                   seed=self.seed + 2)

    def _scope_variables(self, scope: str) -> list[Tensor]:
        prefix = scope + "/"
        return [op.output for op in self.graph.operations
                if isinstance(op, VariableOp)
                and op.attrs.get("trainable", True)
                and op.name.startswith(prefix)]

    # -- QNetwork protocol (used by repro.rl.agent.DQNAgent) --------------------

    def q_values(self, states: np.ndarray) -> np.ndarray:
        """Action values for arbitrary-size state batches.

        The graph has a fixed batch dimension, so smaller inputs are
        padded up and the padding rows discarded.
        """
        count = states.shape[0]
        batch = self.batch_size
        padded = np.zeros((batch,) + states.shape[1:], dtype=np.float32)
        padded[:min(count, batch)] = states[:batch]
        values = self.session.run(self.q_online,
                                  feed_dict={self.states: padded})
        return values[:count]

    def train_on_batch(self, batch: dict[str, np.ndarray]) -> float:
        loss, _ = self.session.run(
            [self._loss_fetch, self._train_fetch],
            feed_dict={self.states: batch["states"],
                       self.actions: batch["actions"],
                       self.rewards: batch["rewards"],
                       self.next_states: batch["next_states"],
                       self.dones: batch["dones"]})
        return float(loss)

    def sync_target(self) -> None:
        self.session.run(self._sync_fetch)

    # -- standard interface -------------------------------------------------------

    def _ensure_replay_seeded(self) -> None:
        if len(self.replay) >= self.config["replay_seed_transitions"]:
            return
        from repro.rl.agent import DQNAgent, EpsilonSchedule
        agent = DQNAgent(self, self.env, self.replay,
                         frame_depth=self.config["frame_depth"],
                         batch_size=self.batch_size,
                         epsilon=EpsilonSchedule(start=1.0, end=1.0),
                         seed=self.seed + 3)
        agent.fill_replay(self.config["replay_seed_transitions"])

    def sample_feed(self, training: bool = True):
        self._ensure_replay_seeded()
        batch = self.replay.sample(self.batch_size)
        if not training:
            return {self.states: batch["states"]}
        return {self.states: batch["states"],
                self.actions: batch["actions"],
                self.rewards: batch["rewards"],
                self.next_states: batch["next_states"],
                self.dones: batch["dones"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Average greedy-policy episode reward over ``batches`` games."""
        from repro.rl.agent import FrameStack
        frames = FrameStack(self.config["frame_depth"])
        total = 0.0
        for _ in range(batches):
            state = frames.reset(self.env.reset())
            done = False
            steps = 0
            while not done and steps < 200:
                action = int(self.q_values(state[np.newaxis])[0].argmax())
                frame, reward, done = self.env.step(action)
                state = frames.push(frame)
                total += reward
                steps += 1
        return {"mean_episode_reward": total / batches}
