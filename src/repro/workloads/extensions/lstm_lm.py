"""lstm_lm: a word-level LSTM language model (Zaremba et al., 2014).

The canonical recurrent language model of the paper's era: embedded
words flow through a stack of LSTM layers, statically unrolled over the
sequence, into a softmax over the vocabulary tied across timesteps.
Trained with truncated-BPTT-style fixed-length sequences on the
synthetic Markov corpus, whose ground-truth entropy gives the evaluate()
perplexity a meaningful floor.
"""

from __future__ import annotations

import numpy as np

from repro.data.ptb import SyntheticPTB
from repro.framework import initializers, rnn
from repro.framework.graph import name_scope
from repro.framework.ops import (concat, expand_dims, gather, matmul,
                                 one_hot, placeholder, reduce_mean,
                                 softmax, softmax_cross_entropy_with_logits,
                                 split, squeeze)
from repro.framework.ops.state_ops import variable
from repro.framework.optimizers import AdamOptimizer

from ..base import FathomModel, WorkloadMetadata


class LSTMLanguageModel(FathomModel):
    name = "lstm_lm"
    metadata = WorkloadMetadata(
        name="lstm_lm", year=2014, reference="Zaremba et al. (extension)",
        neuronal_style="Recurrent", layers=2, learning_task="Supervised",
        dataset="PTB (synthetic)",
        description=("Living-suite extension: word-level LSTM language "
                     "model, the era's standard recurrent LM."))

    configs = {
        "tiny": {"vocab_size": 50, "embed_dim": 16, "hidden_units": 32,
                 "num_layers": 1, "sequence_length": 8, "batch_size": 4,
                 "branching": 5, "learning_rate": 5e-3},
        "default": {"vocab_size": 500, "embed_dim": 64,
                    "hidden_units": 128, "num_layers": 2,
                    "sequence_length": 20, "batch_size": 16,
                    "branching": 20, "learning_rate": 5e-3},
        "paper": {"vocab_size": 10_000, "embed_dim": 650,
                  "hidden_units": 650, "num_layers": 2,
                  "sequence_length": 35, "batch_size": 20,
                  "branching": 50, "learning_rate": 5e-3},
    }

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticPTB(vocab_size=cfg["vocab_size"],
                                    branching=cfg["branching"],
                                    seed=self.seed)
        batch = cfg["batch_size"]
        steps = cfg["sequence_length"]
        vocab = cfg["vocab_size"]
        hidden = cfg["hidden_units"]

        self.inputs = placeholder((batch, steps), dtype=np.int32,
                                  name="inputs")
        self.targets = placeholder((batch, steps), dtype=np.int32,
                                   name="targets")

        table = variable(
            initializers.uniform(0.1)(self.init_rng,
                                      (vocab, cfg["embed_dim"])),
            name="embedding")
        embedded = gather(table, self.inputs)  # (batch, steps, embed)
        step_inputs = [squeeze(piece, [1]) for piece in
                       split(embedded, steps, axis=1, name="step")]

        cells = []
        size = cfg["embed_dim"]
        for layer in range(cfg["num_layers"]):
            cells.append(rnn.LSTMCell(hidden, size, self.init_rng,
                                      name=f"lstm{layer}"))
            size = hidden
        states = [cell.zero_state(batch) for cell in cells]

        with name_scope("softmax"):
            projection = variable(
                initializers.glorot_uniform(self.init_rng, (hidden, vocab)),
                name="projection")

        step_logits = []
        for step_input in step_inputs:
            out = step_input
            new_states = []
            for cell, state in zip(cells, states):
                out, new_state = cell(out, state)
                new_states.append(new_state)
            states = new_states
            step_logits.append(matmul(out, projection))

        with name_scope("loss"):
            target_steps = [squeeze(piece, [1]) for piece in
                            split(self.targets, steps, axis=1)]
            step_losses = [
                reduce_mean(softmax_cross_entropy_with_logits(
                    logits, one_hot(target, vocab)))
                for logits, target in zip(step_logits, target_steps)]
            self._loss_fetch = reduce_mean(
                concat([expand_dims(l, 0) for l in step_losses], axis=0),
                name="mean_xent")

        self._inference_fetch = concat(
            [softmax(logits) for logits in step_logits], axis=0,
            name="next_word_probs")
        self._train_fetch = AdamOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(
            self.batch_size, sequence_length=self.config["sequence_length"])
        return {self.inputs: batch["inputs"],
                self.targets: batch["targets"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Per-word perplexity (uniform bound = vocab_size)."""
        total = 0.0
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            total += float(self.session.run(self._loss_fetch,
                                            feed_dict=feed))
        return {"perplexity": float(np.exp(total / batches)),
                "uniform_perplexity": float(self.config["vocab_size"])}
