"""Living-suite extension workloads.

The paper closes: "As the field continues to evolve, there will
inevitably be new models which arise, and we hope Fathom will become a
'living' workload suite, incorporating advances as they are discovered."
This subpackage is that mechanism: additional workloads behind the same
standard interface, kept separate from the faithful core eight so the
paper's tables and figures stay exact.

Current extensions target the language-modeling domain the Table I
survey found underserved:

* ``lstm_lm`` — a word-level LSTM language model (Zaremba et al., 2014).
* ``skipgram`` — word2vec skip-gram with negative sampling
  (Mikolov et al., 2013).
* ``neuraltalk`` — CNN-encoder/LSTM-decoder image captioning
  (Karpathy & Fei-Fei, 2015), the model the Table I survey found as the
  architecture literature's lone recurrent sighting.
"""

from ..base import FathomModel
from .lstm_lm import LSTMLanguageModel
from .neuraltalk import NeuralTalk
from .skipgram import SkipGram

EXTENSION_WORKLOADS: dict[str, type[FathomModel]] = {
    "lstm_lm": LSTMLanguageModel,
    "skipgram": SkipGram,
    "neuraltalk": NeuralTalk,
}


def create(name: str, config: str = "default", seed: int = 0) -> FathomModel:
    """Instantiate an extension workload by name."""
    try:
        workload_cls = EXTENSION_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown extension workload {name!r}; available: "
            f"{sorted(EXTENSION_WORKLOADS)}") from None
    return workload_cls(config=config, seed=seed)


__all__ = ["EXTENSION_WORKLOADS", "LSTMLanguageModel", "NeuralTalk",
           "SkipGram", "create"]
