"""neuraltalk: CNN-encoder / LSTM-decoder image captioning.

Karpathy & Fei-Fei's NeuralTalk is the model the paper's survey singles
out: it appeared (heavily modified) in EIE [24] as one of only two
recurrent networks in the entire architecture literature. As a
living-suite extension it combines the suite's two dominant styles in
one workload — convolutional feature extraction feeding a statically
unrolled LSTM language decoder — which makes its operation profile a
genuine hybrid of the Fig. 4 clusters.

Structure: a small conv tower encodes the image; its feature vector
initializes the LSTM state; the decoder is trained with teacher forcing
to emit the caption. Captions are synthetic template sentences whose
content words are determined by the image class
(:mod:`repro.data.captions`), so captioning requires real visual
recognition.
"""

from __future__ import annotations

import numpy as np

from repro.data.captions import SyntheticCaptions
from repro.framework import initializers, layers, rnn
from repro.framework.graph import name_scope
from repro.framework.ops import (concat, expand_dims, flatten, gather,
                                 matmul, max_pool, one_hot, placeholder,
                                 reduce_mean, relu, softmax,
                                 softmax_cross_entropy_with_logits, split,
                                 squeeze, tanh)
from repro.framework.ops.state_ops import variable
from repro.framework.optimizers import AdamOptimizer

from ..base import FathomModel, WorkloadMetadata


class NeuralTalk(FathomModel):
    name = "neuraltalk"
    metadata = WorkloadMetadata(
        name="neuraltalk", year=2015,
        reference="Karpathy & Fei-Fei (extension)",
        neuronal_style="Convolutional, Recurrent", layers=6,
        learning_task="Supervised", dataset="Captions (synthetic)",
        description=("Living-suite extension: CNN-encoder LSTM-decoder "
                     "image captioning, the survey's lone recurrent "
                     "sighting in architecture papers."))

    configs = {
        "tiny": {"image_size": 16, "num_classes": 4, "conv_channels": 8,
                 "embed_dim": 16, "hidden_units": 32, "batch_size": 4,
                 "learning_rate": 2e-3},
        "default": {"image_size": 32, "num_classes": 8,
                    "conv_channels": 16, "embed_dim": 32,
                    "hidden_units": 128, "batch_size": 16,
                    "learning_rate": 2e-3},
        "paper": {"image_size": 224, "num_classes": 8,
                  "conv_channels": 64, "embed_dim": 300,
                  "hidden_units": 512, "batch_size": 64,
                  "learning_rate": 2e-3},
    }

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticCaptions(image_size=cfg["image_size"],
                                         num_classes=cfg["num_classes"],
                                         seed=self.seed)
        batch = cfg["batch_size"]
        length = self.dataset.CAPTION_LENGTH
        vocab = self.dataset.vocab_size
        hidden = cfg["hidden_units"]

        self.images = placeholder(
            (batch, cfg["image_size"], cfg["image_size"], 3), name="images")
        self.caption_in = placeholder((batch, length), dtype=np.int32,
                                      name="caption_in")
        self.caption_out = placeholder((batch, length), dtype=np.int32,
                                       name="caption_out")

        # -- CNN encoder ----------------------------------------------------
        with name_scope("encoder"):
            net = self.images
            channels = cfg["conv_channels"]
            for index in range(3):
                net = layers.conv2d_layer(
                    net, channels * (2 ** index), 3, self.init_rng,
                    activation=relu, kernel_init=initializers.he_normal,
                    name=f"conv{index + 1}")
                if net.shape[1] >= 2:
                    net = max_pool(net, ksize=(2, 2), strides=(2, 2),
                                   padding="VALID", name=f"pool{index + 1}")
            features = layers.dense(flatten(net), hidden, self.init_rng,
                                    activation=tanh, name="features")

        # -- LSTM decoder seeded by the image features ------------------------
        with name_scope("decoder"):
            table = variable(
                initializers.uniform(0.1)(self.init_rng,
                                          (vocab, cfg["embed_dim"])),
                name="word_embedding")
            projection = variable(
                initializers.glorot_uniform(self.init_rng,
                                            (hidden, vocab)),
                name="projection")
            cell = rnn.LSTMCell(hidden, cfg["embed_dim"], self.init_rng,
                                name="lstm")
            state = (features, tanh(features))
            embedded = gather(table, self.caption_in)
            step_inputs = [squeeze(piece, [1]) for piece in
                           split(embedded, length, axis=1, name="word")]
            step_logits = []
            for step_input in step_inputs:
                out, state = cell(step_input, state)
                step_logits.append(matmul(out, projection))

        with name_scope("loss"):
            target_steps = [squeeze(piece, [1]) for piece in
                            split(self.caption_out, length, axis=1)]
            step_losses = [
                reduce_mean(softmax_cross_entropy_with_logits(
                    logits, one_hot(target, vocab)))
                for logits, target in zip(step_logits, target_steps)]
            self._loss_fetch = reduce_mean(
                concat([expand_dims(l, 0) for l in step_losses], axis=0),
                name="caption_xent")

        self._inference_fetch = concat(
            [softmax(logits) for logits in step_logits], axis=0,
            name="word_probs")
        self._train_fetch = AdamOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.images: batch["images"],
                self.caption_in: batch["caption_in"],
                self.caption_out: batch["caption_out"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Teacher-forced caption token accuracy (and content-word
        accuracy, which requires actually recognizing the image)."""
        correct = content_correct = total = content_total = 0
        batch = self.batch_size
        length = self.dataset.CAPTION_LENGTH
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            probs = self.session.run(self._inference_fetch, feed_dict=feed)
            predictions = probs.argmax(axis=1).reshape(length, batch).T
            targets = feed[self.caption_out]
            correct += int((predictions == targets).sum())
            total += targets.size
            # Content words are positions 3 (adjective) and 4 (noun).
            content = predictions[:, 3:5] == targets[:, 3:5]
            content_correct += int(content.sum())
            content_total += content.size
        return {"token_accuracy": correct / total,
                "content_word_accuracy": content_correct / content_total,
                "content_chance": 1.0 / self.dataset.num_classes}

    def caption_image(self, image: np.ndarray) -> str:
        """Greedy-decode a caption for one image (free-running)."""
        from repro.data.captions import START_ID
        batch = self.batch_size
        length = self.dataset.CAPTION_LENGTH
        images = np.zeros((batch,) + image.shape, dtype=np.float32)
        images[0] = image
        caption = np.zeros((batch, length), dtype=np.int32)
        caption[:, 0] = START_ID
        for position in range(length - 1):
            probs = self.session.run(
                self._inference_fetch,
                feed_dict={self.images: images,
                           self.caption_in: caption,
                           self.caption_out: caption})
            step = probs[position * batch:(position + 1) * batch]
            caption[:, position + 1] = step.argmax(axis=1)
        return self.dataset.decode(caption[0, 1:])
