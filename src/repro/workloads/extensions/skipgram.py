"""skipgram: word2vec with negative sampling (Mikolov et al., 2013).

The embedding workload of the era: a center word's input embedding is
scored against its true context word and against sampled negatives with
a dot product, trained with the negative-sampling logistic loss

    -log sigmoid(u_ctx . v_c) - sum_k log sigmoid(-u_neg_k . v_c).

Computationally it is the opposite pole from the dense networks: almost
entirely Gather/BatchMatMul on skinny tensors plus the scatter-add
backward, making it a useful extension point for studying sparse
embedding workloads the core suite only touches via seq2seq/memnet.
"""

from __future__ import annotations

import numpy as np

from repro.data.ptb import SyntheticPTB
from repro.framework import initializers
from repro.framework.graph import name_scope
from repro.framework.ops import (add, batch_matmul, concat, expand_dims,
                                 gather, log, multiply, negative,
                                 placeholder, reduce_mean, reduce_sum,
                                 sigmoid, squeeze, subtract)
from repro.framework.ops.state_ops import variable
from repro.framework.optimizers import GradientDescentOptimizer

from ..base import FathomModel, WorkloadMetadata


class SkipGram(FathomModel):
    name = "skipgram"
    metadata = WorkloadMetadata(
        name="skipgram", year=2013, reference="Mikolov et al. (extension)",
        neuronal_style="Embedding", layers=1, learning_task="Unsupervised",
        dataset="PTB (synthetic)",
        description=("Living-suite extension: word2vec skip-gram with "
                     "negative sampling, the era's embedding workhorse."))

    configs = {
        "tiny": {"vocab_size": 50, "embed_dim": 16, "negatives": 3,
                 "window": 2, "branching": 5, "batch_size": 16,
                 "learning_rate": 2.0},
        "default": {"vocab_size": 1000, "embed_dim": 64, "negatives": 5,
                    "window": 2, "branching": 20, "batch_size": 128,
                    "learning_rate": 0.5},
        "paper": {"vocab_size": 100_000, "embed_dim": 300, "negatives": 15,
                  "window": 5, "branching": 50, "batch_size": 512,
                  "learning_rate": 0.5},
    }

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticPTB(vocab_size=cfg["vocab_size"],
                                    branching=cfg["branching"],
                                    seed=self.seed)
        batch = cfg["batch_size"]
        negatives = cfg["negatives"]
        embed_dim = cfg["embed_dim"]

        self.centers = placeholder((batch,), dtype=np.int32, name="centers")
        self.contexts = placeholder((batch,), dtype=np.int32,
                                    name="contexts")
        self.negatives = placeholder((batch, negatives), dtype=np.int32,
                                     name="negatives")

        init = initializers.uniform(0.5 / embed_dim)
        self.input_table = variable(
            init(self.init_rng, (cfg["vocab_size"], embed_dim)),
            name="input_embeddings")
        self.output_table = variable(
            np.zeros((cfg["vocab_size"], embed_dim), dtype=np.float32),
            name="output_embeddings")

        center_vectors = gather(self.input_table, self.centers,
                                name="center_lookup")  # (batch, embed)
        positive_vectors = gather(self.output_table, self.contexts,
                                  name="context_lookup")
        negative_vectors = gather(self.output_table, self.negatives,
                                  name="negative_lookup")

        with name_scope("scores"):
            # (batch, 1+negatives, embed) x (batch, embed, 1)
            candidates = concat([expand_dims(positive_vectors, 1),
                                 negative_vectors], axis=1)
            scores = squeeze(
                batch_matmul(candidates, expand_dims(center_vectors, 2)),
                [2], name="dot_scores")  # (batch, 1+negatives)

        with name_scope("loss"):
            eps = 1e-7
            probabilities = sigmoid(scores)
            # Column 0 is the true context; the rest are negatives.
            from repro.framework.ops import slice_
            positive_prob = squeeze(
                slice_(probabilities, (0, 0), (batch, 1)), [1])
            negative_prob = slice_(probabilities, (0, 1),
                                   (batch, negatives))
            positive_loss = negative(log(add(positive_prob, eps)))
            negative_loss = negative(reduce_sum(
                log(add(subtract(1.0, negative_prob), eps)), axis=1))
            self._loss_fetch = reduce_mean(
                add(positive_loss, negative_loss), name="nce_loss")

        self._inference_fetch = sigmoid(scores, name="pair_probabilities")
        self._train_fetch = GradientDescentOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.skipgram_batch(
            self.batch_size, window=self.config["window"],
            negatives=self.config["negatives"])
        return {self.centers: batch["centers"],
                self.contexts: batch["contexts"],
                self.negatives: batch["negatives"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Fraction of pairs where the true context outranks every negative."""
        wins = total = 0
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            probabilities = self.session.run(self._inference_fetch,
                                             feed_dict=feed)
            positive = probabilities[:, :1]
            negatives = probabilities[:, 1:]
            wins += int((positive > negatives.max(axis=1,
                                                  keepdims=True)).sum())
            total += probabilities.shape[0]
        return {"ranking_accuracy": wins / total,
                "chance": 1.0 / (1 + self.config["negatives"])}
