"""autoenc: the variational autoencoder of Kingma & Welling (2014).

The suite's unsupervised representative. An encoder maps each input
image to the mean and log-variance of a diagonal Gaussian over a latent
embedding; the reparameterization trick samples
``z = mu + exp(logvar / 2) * eps`` with ``eps ~ N(0, 1)``; a decoder
reconstructs the input from z. The loss is the negative evidence lower
bound: Bernoulli reconstruction cross-entropy plus the analytic KL
divergence to the standard-normal prior.

The paper singles this model out because it *samples during inference*,
not just training — ``StandardRandomNormal`` shows up in its operation
profile (Fig. 3, group E) in both modes.
"""

from __future__ import annotations

import numpy as np

from repro.data.mnist import SyntheticMNIST
from repro.framework import layers
from repro.framework.graph import name_scope
from repro.framework.ops import (add, exp, log, multiply, placeholder,
                                 random_normal, reduce_mean, reduce_sum,
                                 sigmoid, square, subtract, tanh)
from repro.framework.optimizers import AdamOptimizer

from .base import FathomModel, WorkloadMetadata


class VariationalAutoencoder(FathomModel):
    name = "autoenc"
    metadata = WorkloadMetadata(
        name="autoenc", year=2014, reference="Kingma & Welling [32]",
        neuronal_style="Full", layers=3, learning_task="Unsupervised",
        dataset="MNIST",
        description=("Variational autoencoder. An efficient, generative "
                     "model for feature learning."))

    configs = {
        "tiny": {"image_size": 14, "hidden_units": 64, "latent_dim": 8,
                 "batch_size": 8, "learning_rate": 1e-3},
        "default": {"image_size": 28, "hidden_units": 512, "latent_dim": 20,
                    "batch_size": 64, "learning_rate": 1e-3},
        "paper": {"image_size": 28, "hidden_units": 500, "latent_dim": 20,
                  "batch_size": 100, "learning_rate": 1e-3},
    }

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticMNIST(image_size=cfg["image_size"],
                                      seed=self.seed)
        batch = cfg["batch_size"]
        input_dim = cfg["image_size"] ** 2
        latent = cfg["latent_dim"]
        self.images = placeholder((batch, input_dim), name="images")

        with name_scope("encoder"):
            hidden = layers.dense(self.images, cfg["hidden_units"],
                                  self.init_rng, activation=tanh,
                                  name="hidden")
            self.z_mean = layers.dense(hidden, latent, self.init_rng,
                                       name="z_mean")
            self.z_log_var = layers.dense(hidden, latent, self.init_rng,
                                          name="z_log_var")

        with name_scope("sampling"):
            epsilon = random_normal((batch, latent), name="epsilon")
            std = exp(multiply(self.z_log_var, 0.5))
            self.z = add(self.z_mean, multiply(std, epsilon), name="z")

        with name_scope("decoder"):
            hidden = layers.dense(self.z, cfg["hidden_units"], self.init_rng,
                                  activation=tanh, name="hidden")
            self.reconstruction = layers.dense(hidden, input_dim,
                                               self.init_rng,
                                               activation=sigmoid,
                                               name="reconstruction")

        with name_scope("loss"):
            eps = 1e-7
            per_pixel = add(
                multiply(self.images, log(add(self.reconstruction, eps))),
                multiply(subtract(1.0, self.images),
                         log(add(subtract(1.0, self.reconstruction), eps))))
            reconstruction_nll = multiply(
                reduce_sum(per_pixel, axis=1), -1.0)
            kl = multiply(
                reduce_sum(
                    subtract(add(1.0, self.z_log_var),
                             add(square(self.z_mean), exp(self.z_log_var))),
                    axis=1),
                -0.5)
            self._loss_fetch = reduce_mean(add(reconstruction_nll, kl),
                                           name="elbo_loss")

        self._inference_fetch = self.reconstruction
        self._train_fetch = AdamOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.images: batch["images"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Negative ELBO and mean reconstruction error per pixel."""
        elbo_total = pixel_error_total = 0.0
        count = 0
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            loss, reconstruction = self.session.run(
                [self._loss_fetch, self.reconstruction], feed_dict=feed)
            elbo_total += float(loss)
            pixel_error_total += float(
                np.abs(reconstruction - feed[self.images]).mean())
            count += 1
        return {"negative_elbo": elbo_total / count,
                "pixel_l1_error": pixel_error_total / count}
