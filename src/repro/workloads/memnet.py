"""memnet: end-to-end memory networks (Sukhbaatar et al., 2015).

One of the paper's two "exotic" topologies: state is decoupled from
structure by joining an indirectly-addressable memory with a neural
network. Each story sentence is embedded (bag-of-words with position
encoding) into a memory slot; the query is embedded the same way; each
*hop* attends over memory with a softmax, reads a weighted-sum output,
and updates the query state. Three hops feed a final answer softmax.

The operation mix is dominated by small, skinny-tensor data movement and
reductions — Mul, Tile-like expansion, Transpose, small BatchMatMul,
Softmax — which is why memnet resists intra-op parallelism in the
paper's Fig. 6c.

The bAbI dataset is substituted by a procedural single-supporting-fact
generator (:mod:`repro.data.babi`), a genuinely answerable reasoning
task.
"""

from __future__ import annotations

import numpy as np

from repro.data.babi import SyntheticBabi
from repro.framework import initializers
from repro.framework.graph import Tensor, name_scope
from repro.framework.ops import (add, argmax, batch_matmul, constant,
                                 expand_dims, gather, matmul, multiply,
                                 one_hot, placeholder, reduce_mean,
                                 reduce_sum, softmax,
                                 softmax_cross_entropy_with_logits, squeeze)
from repro.framework.ops.state_ops import variable
from repro.framework.optimizers import AdamOptimizer

from .base import FathomModel, WorkloadMetadata


def position_encoding(sentence_length: int, embed_dim: int) -> np.ndarray:
    """Sukhbaatar et al.'s position-encoding weights ``l_kj``.

    Makes the sentence embedding order-aware instead of a pure bag of
    words: ``l_kj = (1 - j/J) - (k/d)(1 - 2j/J)``.
    """
    encoding = np.empty((sentence_length, embed_dim), dtype=np.float32)
    for j in range(sentence_length):
        for k in range(embed_dim):
            encoding[j, k] = ((1.0 - (j + 1) / sentence_length)
                              - ((k + 1) / embed_dim)
                              * (1.0 - 2.0 * (j + 1) / sentence_length))
    return encoding


class MemN2N(FathomModel):
    name = "memnet"
    metadata = WorkloadMetadata(
        name="memnet", year=2015, reference="Sukhbaatar et al. [42]",
        neuronal_style="Memory Network", layers=3,
        learning_task="Supervised", dataset="bAbI",
        description=("Facebook's memory-oriented neural system. One of two "
                     "novel architectures which explore a topology beyond "
                     "feed-forward lattices of neurons."))

    # "task" selects the bAbI task: 1 = single supporting fact (the
    # paper's dataset), 2 = two supporting facts (objects carried by
    # actors), which exercises the multi-hop attention much harder.
    configs = {
        "tiny": {"memory_size": 5, "embed_dim": 8, "hops": 2,
                 "num_actors": 3, "num_locations": 4, "batch_size": 4,
                 "learning_rate": 1e-2, "task": 1},
        "default": {"memory_size": 20, "embed_dim": 32, "hops": 3,
                    "num_actors": 6, "num_locations": 6, "batch_size": 32,
                    "learning_rate": 1e-2, "task": 1},
        "paper": {"memory_size": 50, "embed_dim": 50, "hops": 3,
                  "num_actors": 8, "num_locations": 8, "batch_size": 32,
                  "learning_rate": 1e-2, "task": 1},
    }

    def _bag_embed(self, ids: Tensor, table: Tensor, encoding: Tensor,
                   name: str) -> Tensor:
        """Position-encoded bag-of-words embedding, summed over words.

        ``ids`` is ``(..., sentence_len)``; the result drops that axis
        and appends the embedding dimension.
        """
        with name_scope(name):
            embedded = gather(table, ids)  # (..., sentence, embed)
            weighted = multiply(embedded, encoding)
            return reduce_sum(weighted, axis=-2)

    def build(self) -> None:
        cfg = self.config
        if cfg.get("task", 1) == 2:
            from repro.data.babi import SyntheticBabiTwoFacts
            self.dataset = SyntheticBabiTwoFacts(
                memory_size=cfg["memory_size"],
                num_actors=cfg["num_actors"],
                num_locations=cfg["num_locations"], seed=self.seed)
        else:
            self.dataset = SyntheticBabi(memory_size=cfg["memory_size"],
                                         num_actors=cfg["num_actors"],
                                         num_locations=cfg["num_locations"],
                                         seed=self.seed)
        batch = cfg["batch_size"]
        memory_size = cfg["memory_size"]
        sentence_len = self.dataset.SENTENCE_LENGTH
        embed_dim = cfg["embed_dim"]
        vocab = self.dataset.vocab_size
        hops = cfg["hops"]

        self.stories = placeholder((batch, memory_size, sentence_len),
                                   dtype=np.int32, name="stories")
        self.queries = placeholder((batch, sentence_len), dtype=np.int32,
                                   name="queries")
        self.answers = placeholder((batch,), dtype=np.int32, name="answers")

        encoding = constant(position_encoding(sentence_len, embed_dim),
                            name="position_encoding")
        embed_init = initializers.truncated_normal(0.1)

        # Adjacent weight sharing: A^{k+1} = C^k, B = A^1, W^T = C^K.
        # We materialize hops+1 tables; table[k] is A for hop k and C for
        # hop k-1. Each table has a matching *temporal encoding* matrix
        # T (Sukhbaatar et al., Section 4.1), added per memory slot so
        # the model can tell recent statements from stale ones — without
        # it, "where is mary?" is unanswerable when mary moved twice.
        tables = [variable(embed_init(self.init_rng, (vocab, embed_dim)),
                           name=f"embedding_{k}")
                  for k in range(hops + 1)]
        temporal = [variable(embed_init(self.init_rng,
                                        (memory_size, embed_dim)),
                             name=f"temporal_{k}")
                    for k in range(hops + 1)]
        query_state = self._bag_embed(self.queries, tables[0], encoding,
                                      name="query_embed")  # (batch, embed)

        for hop in range(hops):
            with name_scope(f"hop{hop}"):
                memory = add(
                    self._bag_embed(self.stories, tables[hop], encoding,
                                    name="memory_embed"),
                    temporal[hop], name="memory_temporal")
                output_memory = add(
                    self._bag_embed(self.stories, tables[hop + 1], encoding,
                                    name="output_embed"),
                    temporal[hop + 1], name="output_temporal")
                scores = squeeze(
                    batch_matmul(memory, expand_dims(query_state, 2)), [2],
                    name="match")
                attention = softmax(scores, name="attention")
                read = squeeze(
                    batch_matmul(expand_dims(attention, 1), output_memory),
                    [1], name="read")
                query_state = add(query_state, read, name="next_state")

        with name_scope("answer"):
            # W^T = C^K: project through the final embedding's answer rows.
            w_answer = variable(
                embed_init(self.init_rng,
                           (embed_dim, self.dataset.num_answers)),
                name="w_answer")
            logits = matmul(query_state, w_answer, name="logits")

        with name_scope("loss"):
            targets = one_hot(self.answers, self.dataset.num_answers)
            self._loss_fetch = reduce_mean(
                softmax_cross_entropy_with_logits(logits, targets))
        self._inference_fetch = softmax(logits, name="predictions")
        self.predicted_answer = argmax(logits, axis=-1)
        self._train_fetch = AdamOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.stories: batch["stories"],
                self.queries: batch["queries"],
                self.answers: batch["answers"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Question-answering accuracy vs chance."""
        from .base import classification_accuracy
        return classification_accuracy(self, self.answers, batches)
