"""residual: the 34-layer residual network of He et al. (2015).

Residual networks solved the degradation problem — deeper plain networks
trained *worse* — by adding identity shortcut connections across every
pair of convolutional layers, so each pair learns a residual function.
This let MSRA train 150+ layer models and sweep the 2015 ILSVRC tracks.
Fathom uses the 34-layer variant (Table II), the deepest model in the
suite, and the 2015 anchor of the longitudinal comparison: its single
fully-connected classification layer is under 1% of runtime.

Structure: a 7x7 stem convolution, four stages of basic blocks with
[3, 4, 6, 3] blocks and [64, 128, 256, 512] filters (scaled by config),
1x1 projection shortcuts at stage transitions, batch normalization after
each convolution, global average pooling, and one dense classifier.
"""

from __future__ import annotations

import numpy as np

from repro.data.imagenet import SyntheticImageNet
from repro.framework import initializers, layers
from repro.framework.graph import Tensor, name_scope
from repro.framework.ops import (add, flatten, max_pool, one_hot,
                                 placeholder, reduce_mean, relu, softmax,
                                 softmax_cross_entropy_with_logits)
from repro.framework.optimizers import MomentumOptimizer

from .base import FathomModel, WorkloadMetadata


class ResidualNet(FathomModel):
    name = "residual"
    metadata = WorkloadMetadata(
        name="residual", year=2015, reference="He et al. [27]",
        neuronal_style="Convolutional", layers=34,
        learning_task="Supervised", dataset="ImageNet",
        description=("Image classifier from Microsoft Research Asia. "
                     "Dramatically increased the practical depth of "
                     "convolutional networks. ILSVRC 2015 winner."))

    configs = {
        "tiny": {"image_size": 32, "num_classes": 10, "batch_size": 4,
                 "channel_scale": 0.125, "learning_rate": 0.001},
        "default": {"image_size": 64, "num_classes": 100, "batch_size": 4,
                    "channel_scale": 0.25, "learning_rate": 0.01},
        "paper": {"image_size": 224, "num_classes": 1000, "batch_size": 64,
                  "channel_scale": 1.0, "learning_rate": 0.1},
    }

    # ResNet-34: (basic blocks, filters at scale 1.0) per stage
    _STAGE_PLAN = [(3, 64), (4, 128), (6, 256), (3, 512)]

    def _basic_block(self, net: Tensor, filters: int, stride: int,
                     name: str) -> Tensor:
        """Two 3x3 convolutions with an identity (or projection) shortcut."""
        with name_scope(name):
            shortcut = net
            out = layers.conv2d_layer(net, filters, 3, self.init_rng,
                                      strides=stride, use_bias=False,
                                      name="conv_a")
            out = layers.batch_norm(out, name="bn_a")
            out = relu(out)
            out = layers.conv2d_layer(out, filters, 3, self.init_rng,
                                      use_bias=False, name="conv_b")
            out = layers.batch_norm(out, name="bn_b")
            if stride != 1 or shortcut.shape[-1] != filters:
                shortcut = layers.conv2d_layer(
                    shortcut, filters, 1, self.init_rng, strides=stride,
                    use_bias=False, name="projection")
                shortcut = layers.batch_norm(shortcut, name="bn_proj")
            return relu(add(out, shortcut, name="residual_add"))

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticImageNet(
            image_size=cfg["image_size"], num_classes=cfg["num_classes"],
            seed=self.seed)
        batch = cfg["batch_size"]
        self.images = placeholder(
            (batch, cfg["image_size"], cfg["image_size"], 3), name="images")
        self.labels = placeholder((batch,), dtype=np.int32, name="labels")

        scale = cfg["channel_scale"]
        stem_width = max(8, int(64 * scale))
        net = layers.conv2d_layer(self.images, stem_width, 7, self.init_rng,
                                  strides=2, use_bias=False, name="stem")
        net = layers.batch_norm(net, name="stem_bn")
        net = relu(net)
        if net.shape[1] >= 4:
            net = max_pool(net, ksize=(3, 3), strides=(2, 2), padding="SAME",
                           name="stem_pool")

        for stage_index, (blocks, filters) in enumerate(self._STAGE_PLAN,
                                                        start=1):
            width = max(8, int(filters * scale))
            for block_index in range(1, blocks + 1):
                downsample = (stage_index > 1 and block_index == 1
                              and net.shape[1] >= 2)
                net = self._basic_block(
                    net, width, stride=2 if downsample else 1,
                    name=f"stage{stage_index}/block{block_index}")

        # Global average pooling then the lone dense classifier.
        net = reduce_mean(net, axis=[1, 2], name="global_avg_pool")
        logits = layers.dense(flatten(net), cfg["num_classes"],
                              self.init_rng,
                              kernel_init=initializers.he_normal, name="fc")

        with name_scope("loss"):
            targets = one_hot(self.labels, cfg["num_classes"])
            self._loss_fetch = reduce_mean(
                softmax_cross_entropy_with_logits(logits, targets))
        self._inference_fetch = softmax(logits, name="predictions")
        self._train_fetch = MomentumOptimizer(
            cfg["learning_rate"], momentum=0.9).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.images: batch["images"], self.labels: batch["labels"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Top-1 classification accuracy vs chance."""
        from .base import classification_accuracy
        return classification_accuracy(self, self.labels, batches)
