"""The Fathom standard model interface.

The paper stresses that, unlike model zoos, "all Fathom models are
wrapped in a standard interface which exposes the same functions for
every model. Thus, evaluating training, inference, or simply inspecting
the model's dataflow graph is straightforward." :class:`FathomModel` is
that interface: every workload builds its graph in ``build``, supplies
minibatches via ``sample_feed``, and inherits uniform ``run_inference`` /
``run_training`` / ``profile`` entry points.

Workloads are configured by named dictionaries (``tiny`` for CI,
``default`` for analysis, ``paper`` for the original hyperparameters) and
are fully deterministic given ``(config, seed)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.framework.resilience import ResilienceConfig

from repro.framework.device_model import DeviceModel
from repro.framework.graph import Graph, Tensor
from repro.framework.ops.state_ops import VariableOp
from repro.framework.session import Session
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer


@dataclass(frozen=True)
class WorkloadMetadata:
    """One row of the paper's Table II."""

    name: str
    year: int
    reference: str
    neuronal_style: str
    layers: int
    learning_task: str
    dataset: str
    description: str


def classification_accuracy(model: "FathomModel", labels_placeholder,
                            batches: int = 4) -> dict[str, float]:
    """Shared evaluate() implementation for softmax classifiers.

    Assumes ``model.inference_output`` is a ``(batch, classes)`` softmax
    and ``labels_placeholder`` carries the integer class per example.
    Reports top-1 and (when there are more than five classes) ILSVRC-style
    top-5 accuracy.
    """
    correct = correct_top5 = total = 0
    num_classes = model.inference_output.shape[-1]
    report_top5 = num_classes > 5
    for _ in range(batches):
        feed = model.sample_feed(training=False)
        probabilities = model.session.run(model.inference_output,
                                          feed_dict=feed)
        predictions = probabilities.argmax(axis=-1)
        labels = feed[labels_placeholder]
        correct += int((predictions == labels).sum())
        if report_top5:
            top5 = np.argsort(-probabilities, axis=-1)[:, :5]
            correct_top5 += int((top5 == labels[:, None]).any(axis=1).sum())
        total += len(labels)
    metrics = {"accuracy": correct / total, "chance": 1.0 / num_classes}
    if report_top5:
        metrics["top5_accuracy"] = correct_top5 / total
    return metrics


class FathomModel(abc.ABC):
    """Base class for the eight Fathom reference workloads."""

    #: short name, e.g. ``"alexnet"``; set by subclasses
    name: str = ""
    #: Table II metadata; set by subclasses
    metadata: WorkloadMetadata
    #: named hyperparameter configurations; must include ``tiny``,
    #: ``default``, and ``paper``
    configs: dict[str, dict[str, Any]] = {}

    def __init__(self, config: str | Mapping[str, Any] = "default",
                 seed: int = 0, backend: str | None = None):
        if isinstance(config, str):
            if config not in self.configs:
                raise KeyError(
                    f"{self.name}: unknown config {config!r}; available: "
                    f"{sorted(self.configs)}")
            self.config_name = config
            self.config = dict(self.configs[config])
        else:
            self.config_name = "custom"
            self.config = {**self.configs["default"], **dict(config)}
        self.seed = seed
        #: generator for construction-time weight initialization
        self.init_rng = np.random.default_rng(seed)
        self.graph = Graph()
        self._inference_fetch: Tensor | None = None
        self._loss_fetch: Tensor | None = None
        self._train_fetch: Tensor | None = None
        with self.graph.as_default():
            self.build()
        for attr in ("_inference_fetch", "_loss_fetch", "_train_fetch"):
            if getattr(self, attr) is None:
                raise RuntimeError(
                    f"{type(self).__name__}.build() must set {attr}")
        # Workload graphs are built once and never mutated afterwards,
        # so they opt into the full optimizing plan pipeline. The
        # optional ``backend`` selects the execution backend axis
        # ('interp' or 'codegen') for the session's plans.
        self.session = Session(self.graph, seed=seed + 1, optimize="full",
                               backend=backend)

    # -- to be provided by each workload ---------------------------------------

    @abc.abstractmethod
    def build(self) -> None:
        """Construct the dataflow graph inside ``self.graph``.

        Must set ``self._inference_fetch`` (the model's forward output),
        ``self._loss_fetch`` (scalar training loss), and
        ``self._train_fetch`` (one optimizer update step).
        """

    @abc.abstractmethod
    def sample_feed(self, training: bool = True) -> dict[Tensor, np.ndarray]:
        """One minibatch as a ``Session.run`` feed dict."""

    # -- the standard interface --------------------------------------------------

    @property
    def batch_size(self) -> int:
        return int(self.config["batch_size"])

    @property
    def inference_output(self) -> Tensor:
        return self._inference_fetch

    @property
    def loss(self) -> Tensor:
        return self._loss_fetch

    @property
    def train_step(self) -> Tensor:
        return self._train_fetch

    def run_inference(self, steps: int = 1,
                      tracer: Tracer | None = None) -> np.ndarray:
        """Run forward passes; returns the last step's output."""
        output = None
        for _ in range(steps):
            output = self.session.run(self._inference_fetch,
                                      feed_dict=self.sample_feed(training=False),
                                      tracer=tracer)
        return output

    def run_training(self, steps: int = 1,
                     tracer: Tracer | None = None,
                     resilience: "ResilienceConfig | None" = None
                     ) -> list[float]:
        """Run update steps; returns the per-step losses.

        Args:
            resilience: when given, the steps are driven by a
                :class:`~repro.framework.resilience.ResilientRunner`
                with this policy — NaN/Inf guards, bounded retry with
                rollback, watchdog, and periodic atomic checkpoints.
                With ``healing=True`` the runner also blame-localizes
                plan-step failures and de-optimizes through the
                execution tiers (full → structural → safe mode),
                quarantining offending compiler passes; with
                ``guardrails=...`` every op's outputs are screened for
                NaN/Inf/overflow. Recovery actions surface as
                ``FailureEvent`` (and healing actions as
                ``DegradationEvent``) records on ``tracer`` (see
                docs/robustness.md). A fault-free resilient run is
                bit-for-bit identical to a plain one.
        """
        if resilience is not None:
            from repro.framework.resilience import ResilientRunner
            return ResilientRunner(self, config=resilience,
                                   tracer=tracer).run(steps)
        losses = []
        for _ in range(steps):
            loss_value, _ = self.session.run(
                [self._loss_fetch, self._train_fetch],
                feed_dict=self.sample_feed(training=True),
                tracer=tracer)
            losses.append(float(np.asarray(loss_value)))
        return losses

    def profile(self, mode: str = "training", steps: int = 2,
                device: DeviceModel | None = None,
                warmup: int = 1) -> OperationProfile:
        """Trace ``steps`` executions and aggregate an operation profile.

        Args:
            mode: ``"training"`` or ``"inference"``.
            steps: measured steps (after ``warmup`` untraced steps).
            device: aggregate modeled times under this device model
                instead of measured wall-clock times.
        """
        if mode not in ("training", "inference"):
            raise ValueError(f"mode must be training or inference, got {mode}")
        runner = (self.run_training if mode == "training"
                  else self.run_inference)
        if warmup:
            runner(warmup)
        tracer = Tracer()
        runner(steps, tracer=tracer)
        return OperationProfile.from_trace(
            tracer, workload=self.name, device=device)

    def compile_plan(self, mode: str = "training"):
        """The session's compiled :class:`ExecutionPlan` for a mode.

        Compiles (or returns the cached plan for) the same fetch set the
        corresponding ``run_*`` entry point uses, without running it —
        the inspection hook behind ``repro compile``.
        """
        if mode == "training":
            fetches = [self._loss_fetch, self._train_fetch]
        elif mode == "inference":
            fetches = [self._inference_fetch]
        else:
            raise ValueError(
                f"mode must be training or inference, got {mode}")
        return self.session.compile(fetches)

    def serve(self, config=None, tracer=None, clock=None):
        """A robust request front-end over this model's inference plan.

        Returns a :class:`~repro.serving.server.InferenceServer` —
        deadline-aware dynamic batching with admission control, a
        replica pool of forked sessions behind circuit breakers, hedged
        retry, and degrade-don't-die tier demotion (the serving-side
        counterpart of ``run_training(resilience=...)``; see
        docs/serving.md).
        """
        from repro.serving import InferenceServer
        return InferenceServer(self, config=config, tracer=tracer,
                               clock=clock)

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Task-quality metrics on held-out synthetic batches.

        Each workload reports its natural metric (classification accuracy,
        phoneme error rate, reconstruction error, episode reward, ...);
        see the subclass docstrings. Used by the correctness tests to show
        the reference implementations genuinely learn their tasks.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement evaluate()")

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(op.output.size for op in self.graph.operations
                   if isinstance(op, VariableOp)
                   and op.attrs.get("trainable", True))

    def summary(self) -> str:
        """Keras-style textual summary: top-level scopes with op and
        parameter counts, plus graph totals."""
        from collections import OrderedDict
        scopes: "OrderedDict[str, dict]" = OrderedDict()
        for op in self.graph.operations:
            scope = op.name.split("/", 1)[0]
            entry = scopes.setdefault(scope, {"ops": 0, "params": 0})
            entry["ops"] += 1
            if isinstance(op, VariableOp) and op.attrs.get("trainable",
                                                           True):
                entry["params"] += op.output.size
        # Fold parameter-free single-op scopes (loose constants, the odd
        # unscoped node) into one row to keep the table readable.
        folded = {"ops": 0, "params": 0}
        for scope in [s for s, e in scopes.items()
                      if e["params"] == 0 and e["ops"] <= 2]:
            folded["ops"] += scopes.pop(scope)["ops"]
        if folded["ops"]:
            scopes["(unscoped)"] = folded
        width = max(len(scope) for scope in scopes)
        lines = [f"{type(self).__name__} (config={self.config_name!r})",
                 f"{'scope':<{width}s}  {'ops':>6s}  {'params':>10s}"]
        for scope, entry in scopes.items():
            lines.append(f"{scope:<{width}s}  {entry['ops']:6d}  "
                         f"{entry['params']:10,d}")
        lines.append(f"{'TOTAL':<{width}s}  {len(self.graph):6d}  "
                     f"{self.num_parameters():10,d}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} config={self.config_name!r} "
                f"ops={len(self.graph)} params={self.num_parameters()}>")
