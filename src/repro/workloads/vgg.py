"""vgg: the 19-layer network of Simonyan & Zisserman (2014).

VGG-19's insight was that stacks of small 3x3 filters are easier to
train and more accurate than the large filters of AlexNet. The network
is sixteen 3x3 convolutional layers in five blocks (each followed by
2x2 max-pooling) plus three fully-connected layers. In the paper's
longitudinal comparison the fully-connected layers consume ~7% of
runtime, down from alexnet's 11% (Section V-B).

Configurations scale image size and channel width; depth is always the
full 19 weight layers.
"""

from __future__ import annotations

import numpy as np

from repro.data.imagenet import SyntheticImageNet
from repro.framework import initializers, layers
from repro.framework.graph import name_scope
from repro.framework.ops import (dropout, flatten, max_pool, one_hot,
                                 placeholder, reduce_mean, relu, softmax,
                                 softmax_cross_entropy_with_logits)
from repro.framework.optimizers import MomentumOptimizer

from .base import FathomModel, WorkloadMetadata


class VGG(FathomModel):
    name = "vgg"
    metadata = WorkloadMetadata(
        name="vgg", year=2014, reference="Simonyan & Zisserman [41]",
        neuronal_style="Convolutional, Full", layers=19,
        learning_task="Supervised", dataset="ImageNet",
        description=("Image classifier demonstrating the power of small "
                     "convolutional filters. ILSVRC 2014 winner."))

    # "init" selects weight initialization: see AlexNet's note — scaled
    # configs use He-scaled normals so the 19-layer stack trains.
    configs = {
        "tiny": {"image_size": 32, "num_classes": 10, "batch_size": 4,
                 "channel_scale": 0.125, "dense_units": 64,
                 "dropout_rate": 0.5, "learning_rate": 0.01, "init": "he"},
        "default": {"image_size": 64, "num_classes": 100, "batch_size": 4,
                    "channel_scale": 0.25, "dense_units": 512,
                    "dropout_rate": 0.5, "learning_rate": 0.001,
                    "init": "he"},
        "paper": {"image_size": 224, "num_classes": 1000, "batch_size": 64,
                  "channel_scale": 1.0, "dense_units": 4096,
                  "dropout_rate": 0.5, "learning_rate": 0.01,
                  "init": "gaussian"},
    }

    def _kernel_init(self):
        if self.config["init"] == "gaussian":
            return initializers.truncated_normal(0.01)
        return initializers.he_normal

    # VGG-19: (conv layers per block, filters at scale 1.0)
    _BLOCK_PLAN = [(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)]

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticImageNet(
            image_size=cfg["image_size"], num_classes=cfg["num_classes"],
            seed=self.seed)
        batch = cfg["batch_size"]
        self.images = placeholder(
            (batch, cfg["image_size"], cfg["image_size"], 3), name="images")
        self.labels = placeholder((batch,), dtype=np.int32, name="labels")

        scale = cfg["channel_scale"]
        net = self.images
        for block_index, (depth, filters) in enumerate(self._BLOCK_PLAN,
                                                       start=1):
            width = max(8, int(filters * scale))
            for conv_index in range(1, depth + 1):
                net = layers.conv2d_layer(
                    net, width, 3, self.init_rng, activation=relu,
                    kernel_init=self._kernel_init(),
                    name=f"conv{block_index}_{conv_index}")
            if net.shape[1] >= 2:
                net = max_pool(net, ksize=(2, 2), strides=(2, 2),
                               padding="VALID", name=f"pool{block_index}")

        net = flatten(net)
        for index in (6, 7):
            net = layers.dense(net, cfg["dense_units"], self.init_rng,
                               activation=relu,
                               kernel_init=self._kernel_init(),
                               name=f"fc{index}")
            net = dropout(net, cfg["dropout_rate"], name=f"drop{index}")
        logits = layers.dense(net, cfg["num_classes"], self.init_rng,
                              kernel_init=self._kernel_init(),
                              name="fc8")

        with name_scope("loss"):
            targets = one_hot(self.labels, cfg["num_classes"])
            self._loss_fetch = reduce_mean(
                softmax_cross_entropy_with_logits(logits, targets))
        self._inference_fetch = softmax(logits, name="predictions")
        self._train_fetch = MomentumOptimizer(
            cfg["learning_rate"], momentum=0.9).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.images: batch["images"], self.labels: batch["labels"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Top-1 classification accuracy vs chance."""
        from .base import classification_accuracy
        return classification_accuracy(self, self.labels, batches)
