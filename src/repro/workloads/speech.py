"""speech: Baidu's Deep Speech recognition engine (Hannun et al., 2014).

A deliberately *structurally simple* speech model: spectrogram frames in,
phoneme probabilities out, no hand-tuned acoustic model. Three dense
layers with clipped-ReLU activations operate on context windows of
frames, a single bidirectional vanilla-recurrent layer (no LSTM — the
authors explicitly avoided them for efficiency), one more dense layer,
and a CTC loss that learns from unsegmented label sequences.

The paper's profile (Fig. 3) bears out the design: speech is almost
exclusively matrix multiplication, with the CTC computation the only
other significant contributor. Following the paper, we use TIMIT-scale
windows and embedding sizes rather than Baidu's proprietary corpus
dimensions (and substitute synthetic TIMIT-shaped data — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.data.timit import SyntheticTIMIT
from repro.framework import layers, rnn
from repro.framework.graph import Tensor, name_scope
from repro.framework.ops import (concat, ctc_loss, log_softmax, minimum, pad,
                                 placeholder, reduce_mean, relu, reshape,
                                 slice_, split, squeeze)
from repro.framework.optimizers import AdamOptimizer

from .base import FathomModel, WorkloadMetadata


class DeepSpeech(FathomModel):
    name = "speech"
    metadata = WorkloadMetadata(
        name="speech", year=2014, reference="Hannun et al. [25]",
        neuronal_style="Recurrent, Full", layers=5,
        learning_task="Supervised", dataset="TIMIT",
        description=("Baidu's speech recognition engine. Proved purely "
                     "deep-learned networks can beat hand-tuned systems."))

    configs = {
        "tiny": {"num_frames": 12, "num_features": 8, "context": 1,
                 "hidden_units": 32, "num_phonemes": 10, "batch_size": 2,
                 "relu_clip": 20.0, "learning_rate": 1e-3,
                 "min_phoneme_frames": 3, "max_phoneme_frames": 6},
        "default": {"num_frames": 50, "num_features": 26, "context": 2,
                    "hidden_units": 256, "num_phonemes": 39, "batch_size": 4,
                    "relu_clip": 20.0, "learning_rate": 1e-3,
                    "min_phoneme_frames": 3, "max_phoneme_frames": 8},
        "paper": {"num_frames": 150, "num_features": 26, "context": 5,
                  "hidden_units": 2048, "num_phonemes": 39, "batch_size": 16,
                  "relu_clip": 20.0, "learning_rate": 1e-3,
                  "min_phoneme_frames": 3, "max_phoneme_frames": 8},
    }

    def _clipped_relu(self, x: Tensor) -> Tensor:
        return minimum(relu(x), self.config["relu_clip"])

    def _context_windows(self, frames: Tensor) -> Tensor:
        """Stack +/- context frames onto each frame's feature vector."""
        context = self.config["context"]
        if context == 0:
            return frames
        padded = pad(frames, [(0, 0), (context, context), (0, 0)],
                     name="context_pad")
        batch, time_steps, features = frames.shape
        shifted = [slice_(padded, (0, offset, 0),
                          (batch, time_steps, features),
                          name=f"context_{offset}")
                   for offset in range(2 * context + 1)]
        return concat(shifted, axis=2, name="context_stack")

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticTIMIT(
            num_frames=cfg["num_frames"], num_features=cfg["num_features"],
            num_phonemes=cfg["num_phonemes"],
            min_phoneme_frames=cfg["min_phoneme_frames"],
            max_phoneme_frames=cfg["max_phoneme_frames"], seed=self.seed)
        batch = cfg["batch_size"]
        time_steps = cfg["num_frames"]
        hidden = cfg["hidden_units"]
        num_classes = cfg["num_phonemes"] + 1  # plus CTC blank

        self.frames = placeholder((batch, time_steps, cfg["num_features"]),
                                  name="frames")
        self.labels = placeholder((batch, self.dataset.max_labels),
                                  dtype=np.int32, name="labels")
        self.label_lengths = placeholder((batch,), dtype=np.int32,
                                         name="label_lengths")
        self.input_lengths = placeholder((batch,), dtype=np.int32,
                                         name="input_lengths")

        # Layers 1-3: dense over (batch x time) rows of context windows.
        net = self._context_windows(self.frames)
        net = reshape(net, (batch * time_steps, net.shape[-1]),
                      name="fold_time")
        for index in range(1, 4):
            net = layers.dense(net, hidden, self.init_rng,
                               activation=self._clipped_relu,
                               name=f"dense{index}")

        # Layer 4: one bidirectional vanilla-recurrent layer.
        net = reshape(net, (batch, time_steps, hidden), name="unfold_time")
        step_inputs = [squeeze(piece, [1]) for piece in
                       split(net, time_steps, axis=1, name="time_slice")]
        with name_scope("birnn"):
            forward = rnn.BasicRNNCell(hidden, hidden, self.init_rng,
                                       clip=cfg["relu_clip"], name="forward")
            backward = rnn.BasicRNNCell(hidden, hidden, self.init_rng,
                                        clip=cfg["relu_clip"],
                                        name="backward")
            recurrent_out = rnn.bidirectional_rnn(forward, backward,
                                                  step_inputs)

        # Layer 5 + output layer over the time-major concatenation.
        net = concat(recurrent_out, axis=0, name="time_major")
        net = layers.dense(net, hidden, self.init_rng,
                           activation=self._clipped_relu, name="dense5")
        logits = layers.dense(net, num_classes, self.init_rng, name="logits")
        self.logits = reshape(logits, (time_steps, batch, num_classes),
                              name="ctc_logits")

        with name_scope("loss"):
            per_example = ctc_loss(self.logits, self.labels,
                                   self.label_lengths, self.input_lengths)
            self._loss_fetch = reduce_mean(per_example, name="ctc_mean")

        self._inference_fetch = log_softmax(self.logits, name="frame_scores")
        self._train_fetch = AdamOptimizer(
            cfg["learning_rate"]).minimize(self._loss_fetch)
        self.blank_index = num_classes - 1

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.frames: batch["frames"],
                self.labels: batch["labels"],
                self.label_lengths: batch["label_lengths"],
                self.input_lengths: batch["input_lengths"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Phoneme error rate under CTC best-path decoding."""
        from repro.framework.ops import ctc_greedy_decode
        errors = total = 0
        for _ in range(batches):
            feed = self.sample_feed(training=False)
            scores = self.session.run(self._inference_fetch, feed_dict=feed)
            decoded = ctc_greedy_decode(scores, blank=self.blank_index)
            labels = feed[self.labels]
            lengths = feed[self.label_lengths]
            for index, hypothesis in enumerate(decoded):
                reference = labels[index, :lengths[index]].tolist()
                errors += _edit_distance(hypothesis, reference)
                total += len(reference)
        return {"phoneme_error_rate": errors / total}


def _edit_distance(a: list[int], b: list[int]) -> int:
    """Levenshtein distance between two phoneme sequences."""
    table = np.zeros((len(a) + 1, len(b) + 1), dtype=np.int64)
    table[:, 0] = np.arange(len(a) + 1)
    table[0, :] = np.arange(len(b) + 1)
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            table[i, j] = min(table[i - 1, j] + 1, table[i, j - 1] + 1,
                              table[i - 1, j - 1] + cost)
    return int(table[-1, -1])
