"""alexnet: the Krizhevsky et al. (2012) deep convolutional network.

The watershed ImageNet classifier — five convolutional layers (the first
two followed by local response normalization and max-pooling), three
fully-connected layers with dropout, and a softmax classifier. The paper
includes it for continuity with prior architecture work and as the 2012
anchor of the alexnet -> vgg -> residual longitudinal comparison: its
two large fully-connected layers contribute ~11% of runtime, a share
that shrinks to ~7% in vgg and under 1% in residual (Section V-B).

Configurations scale image resolution, channel counts, and the dense
widths; ``paper`` uses the original 224x224 geometry.
"""

from __future__ import annotations

import numpy as np

from repro.data.imagenet import SyntheticImageNet
from repro.framework import initializers, layers
from repro.framework.graph import name_scope
from repro.framework.ops import (argmax, dropout, flatten, lrn, matmul,
                                 max_pool, one_hot, placeholder, reduce_mean,
                                 relu, softmax, softmax_cross_entropy_with_logits)
from repro.framework.optimizers import MomentumOptimizer

from .base import FathomModel, WorkloadMetadata


class AlexNet(FathomModel):
    name = "alexnet"
    metadata = WorkloadMetadata(
        name="alexnet", year=2012, reference="Krizhevsky et al. [33]",
        neuronal_style="Convolutional, Full", layers=5,
        learning_task="Supervised", dataset="ImageNet",
        description=("Image classifier. Watershed for deep learning by "
                     "beating hand-tuned image systems at ILSVRC 2012."))

    # "init" selects weight initialization: the original's fixed-stddev
    # gaussian ("gaussian", faithful at paper scale) or He-scaled normals
    # ("he"), which the scaled-down configs need to keep activations
    # alive through the deep stack.
    configs = {
        "tiny": {"image_size": 32, "num_classes": 10, "batch_size": 4,
                 "channel_scale": 0.125, "dense_units": 64,
                 "dropout_rate": 0.5, "learning_rate": 0.01, "init": "he"},
        "default": {"image_size": 64, "num_classes": 100, "batch_size": 8,
                    "channel_scale": 0.25, "dense_units": 512,
                    "dropout_rate": 0.5, "learning_rate": 0.01,
                    "init": "he"},
        "paper": {"image_size": 224, "num_classes": 1000, "batch_size": 128,
                  "channel_scale": 1.0, "dense_units": 4096,
                  "dropout_rate": 0.5, "learning_rate": 0.01,
                  "init": "gaussian"},
    }

    def _kernel_init(self):
        if self.config["init"] == "gaussian":
            return initializers.truncated_normal(0.01)
        return initializers.he_normal

    # (filters at scale 1.0, kernel, stride, use LRN+pool after)
    _CONV_PLAN = [(96, 11, 4, True), (256, 5, 1, True), (384, 3, 1, False),
                  (384, 3, 1, False), (256, 3, 1, True)]

    def build(self) -> None:
        cfg = self.config
        self.dataset = SyntheticImageNet(
            image_size=cfg["image_size"], num_classes=cfg["num_classes"],
            seed=self.seed)
        batch = cfg["batch_size"]
        self.images = placeholder(
            (batch, cfg["image_size"], cfg["image_size"], 3), name="images")
        self.labels = placeholder((batch,), dtype=np.int32, name="labels")

        scale = cfg["channel_scale"]
        net = self.images
        for index, (filters, kernel, stride, normalize) in enumerate(
                self._CONV_PLAN, start=1):
            net = layers.conv2d_layer(
                net, max(8, int(filters * scale)), kernel, self.init_rng,
                strides=stride, padding="SAME", activation=relu,
                kernel_init=self._kernel_init(),
                name=f"conv{index}")
            if normalize:
                net = lrn(net, depth_radius=2, name=f"lrn{index}")
                if net.shape[1] >= 4:
                    net = max_pool(net, ksize=(3, 3), strides=(2, 2),
                                   padding="VALID", name=f"pool{index}")

        net = flatten(net)
        for index in (6, 7):
            net = layers.dense(net, cfg["dense_units"], self.init_rng,
                               activation=relu,
                               kernel_init=self._kernel_init(),
                               name=f"fc{index}")
            net = dropout(net, cfg["dropout_rate"], name=f"drop{index}")
        logits = layers.dense(net, cfg["num_classes"], self.init_rng,
                              kernel_init=self._kernel_init(),
                              name="fc8")

        with name_scope("loss"):
            targets = one_hot(self.labels, cfg["num_classes"])
            self._loss_fetch = reduce_mean(
                softmax_cross_entropy_with_logits(logits, targets))
        self._inference_fetch = softmax(logits, name="predictions")
        self.predicted_class = argmax(logits, axis=-1)
        self._train_fetch = MomentumOptimizer(
            cfg["learning_rate"], momentum=0.9).minimize(self._loss_fetch)

    def sample_feed(self, training: bool = True):
        batch = self.dataset.sample_batch(self.batch_size)
        return {self.images: batch["images"], self.labels: batch["labels"]}

    def evaluate(self, batches: int = 4) -> dict[str, float]:
        """Top-1 classification accuracy vs chance."""
        from .base import classification_accuracy
        return classification_accuracy(self, self.labels, batches)
