"""Fathom: reference workloads for modern deep learning methods.

A from-scratch reproduction of Adolf et al., IISWC 2016. The package
provides:

* :mod:`repro.framework` — a TensorFlow-style dataflow framework with
  operation-level tracing, symbolic autodiff, and analytic device models;
* :mod:`repro.workloads` — the eight Fathom reference models behind the
  paper's standard model interface;
* :mod:`repro.data` — seeded synthetic stand-ins for each dataset;
* :mod:`repro.rl` — the Atari-substitute arcade environment, replay
  buffer, and DQN agent used by ``deepq``;
* :mod:`repro.profiling` — op-level tracing and the Fig. 3 taxonomy;
* :mod:`repro.analysis` — everything needed to regenerate the paper's
  tables and figures (dominance curves, similarity clustering,
  training-vs-inference, parallelism sweeps, the architecture survey).
"""

__version__ = "1.0.0"

from . import analysis, data, framework, profiling, rl, workloads

__all__ = ["framework", "workloads", "data", "rl", "profiling", "analysis"]
