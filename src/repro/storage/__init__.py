"""Durable checkpoint storage: fault-injectable blob stores + replication.

The storage tier obeys the same rule as serving and the cluster: inject
the failure, then survive it. Three layers:

* :mod:`~repro.storage.blobstore` — virtual blob stores (in-memory and
  local-dir) on the injectable clock, with hook points for the
  ``storage`` fault family (:class:`~repro.framework.faults.
  StorageFaultSpec`): torn writes, bit rot, stale reads, disk-full,
  slow I/O, outages.
* :mod:`~repro.storage.replicated` — the
  :class:`ReplicatedCheckpointStore`: quorum commits, digest-verified
  reads with failover and read-repair, background scrubbing, and
  keep-last-K retention.
* :mod:`~repro.storage.events` — :class:`StorageEvent` narration on the
  session tracer.

The chaos campaign's ``storage`` harness drives all of it under the
``durability`` oracle: any *committed* checkpoint restores bitwise
despite injected storage faults, and an interrupted commit never
restores partially.
"""

from .blobstore import BlobStore, LocalDirStore, MemoryStore
from .events import STORAGE_EVENT_KINDS, StorageEvent
from .replicated import (CheckpointQuorumError, CheckpointRecord,
                         ReplicatedCheckpointStore, ScrubReport,
                         open_local_store, state_digests)

__all__ = [
    "BlobStore",
    "LocalDirStore",
    "MemoryStore",
    "STORAGE_EVENT_KINDS",
    "StorageEvent",
    "CheckpointQuorumError",
    "CheckpointRecord",
    "ReplicatedCheckpointStore",
    "ScrubReport",
    "open_local_store",
    "state_digests",
]
