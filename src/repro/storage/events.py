"""Storage events: the durability layer's narration records.

Every consequential storage action — a quorum commit, a failed replica
write, a failover on read, a read-repair, a scrub healing a rotted blob,
garbage collection — is recorded as a :class:`StorageEvent` on the
session tracer, alongside failure, degradation, serving, cluster, and
campaign events. ``repro trace`` then tells the whole durability story
inline with the rest of the run.

The ``store`` field doubles as the family marker the tracer uses to
distinguish storage events from the other event families (mirroring
``pass_name`` for degradation, ``outcome`` for serving, ``worker`` for
cluster, and ``oracle`` for campaign events).
"""

from __future__ import annotations

from dataclasses import dataclass

#: every kind a StorageEvent may carry
STORAGE_EVENT_KINDS = (
    "commit",                # checkpoint reached quorum and is durable
    "commit_failed",         # checkpoint missed quorum; not durable
    "replica_write_failed",  # one store rejected its copy
    "failover",              # a read skipped a bad/unavailable replica
    "corrupt_replica",       # a digest check caught a damaged copy
    "read_repair",           # a bad replica was rewritten from a good one
    "scrub",                 # a scrub pass finished
    "scrub_heal",            # scrubbing healed a damaged replica
    "unrecoverable",         # no intact replica remains for a checkpoint
    "gc",                    # superseded checkpoints were collected
)


@dataclass(frozen=True)
class StorageEvent:
    """One durability-relevant action in the checkpoint storage layer.

    Attributes:
        step: the checkpoint id involved, or -1 for whole-archive
            actions (scrub passes, garbage collection).
        kind: one of :data:`STORAGE_EVENT_KINDS`.
        store: the blob-store id acted on, or -1 when the action spans
            the replication group (commit, scrub, gc). Also the family
            marker field — every StorageEvent has it, no other event
            family does.
        key: the blob key involved, or "" for group-level actions.
        seconds_lost: virtual seconds the action consumed (failover
            retries, repair writes); 0.0 when untimed.
        detail: one human-readable sentence.
    """

    step: int
    kind: str
    store: int
    key: str
    seconds_lost: float
    detail: str

    def __post_init__(self):
        if self.kind not in STORAGE_EVENT_KINDS:
            raise ValueError(
                f"unknown storage event kind {self.kind!r}; expected "
                f"one of {STORAGE_EVENT_KINDS}")

    def signature(self) -> tuple:
        """Stable identity for cross-run comparisons (drops timing)."""
        return (self.step, self.kind, self.store, self.key)
