"""Virtual blob stores: the fault-injectable substrate checkpoints live on.

A :class:`BlobStore` is a flat key → bytes namespace with five
operations (put/get/delete/list/exists), an injectable clock charging a
fixed per-operation cost, and hook points for a
:class:`~repro.framework.faults.StorageFaultInjector` — so torn writes,
bit rot, stale reads, full disks, slow I/O, and outages can all be
scheduled deterministically against either backend:

* :class:`MemoryStore` — a dict of bytes; what the chaos campaigns and
  benchmarks run on (no real I/O, virtual clock, exact determinism).
* :class:`LocalDirStore` — one file per blob under a root directory,
  written atomically; what ``--checkpoint-replicas`` uses on disk.

Fault-hook contract (every mutation of visible state goes through it):

1. ``on_op`` gates the operation — outages and full disks raise here,
   slow I/O sleeps on the store's clock;
2. ``corruptions`` returns at-rest bit-rot actions, applied to blobs the
   store already holds *before* the operation proceeds;
3. ``on_put`` may truncate the bytes being written (torn write);
   ``on_get`` may substitute the key's previous version (stale read);
4. ``end_op`` closes the operation's matching window (the injector's
   global op counter advances).

``list`` and ``exists`` are deliberately *not* gated: enumeration is a
metadata operation the durability layer relies on to discover what might
be restorable even while data-path operations are failing.
"""

from __future__ import annotations

import os

from ..framework.checkpoint import atomic_write_bytes
from ..framework.clock import Clock, SystemClock
from ..framework.errors import BlobNotFoundError
from ..framework.faults import StorageFaultInjector


def _check_key(key: str) -> str:
    """Reject keys that could escape a store's namespace."""
    if not key or key.startswith("/") or ".." in key.split("/"):
        raise ValueError(f"invalid blob key {key!r}")
    return key


class BlobStore:
    """Base class: clock accounting, fault hooks, operation counters.

    Subclasses implement the raw byte plumbing (``_write``, ``_read``,
    ``_delete``, ``_keys``, ``_has``, ``_corrupt``); this class owns the
    operation protocol so both backends fault identically.

    Attributes:
        store_id: this store's id within a replication group (targets
            ``StorageFaultSpec.store``).
        counters: operation tallies (``puts``/``gets``/``deletes``).
    """

    def __init__(self, store_id: int = 0, clock: Clock | None = None,
                 op_seconds: float = 0.0):
        self.store_id = store_id
        self.clock = clock if clock is not None else SystemClock()
        self.op_seconds = float(op_seconds)
        self.counters = {"puts": 0, "gets": 0, "deletes": 0}
        self._faults: StorageFaultInjector | None = None
        #: key -> previous bytes, for injected stale reads
        self._history: dict[str, bytes] = {}

    def attach_faults(self, injector: StorageFaultInjector) -> None:
        """Arm an injector against this store (and lend it our clock)."""
        injector.attach_clock(self.clock)
        self._faults = injector

    def detach_faults(self) -> None:
        self._faults = None

    # -- the operation protocol --------------------------------------------

    def _run_op(self, op: str, key: str | None, action):
        if self.op_seconds:
            self.clock.sleep(self.op_seconds)
        injector = self._faults
        if injector is None:
            return action(None)
        try:
            injector.on_op(self.store_id, op, key)
            for rotted, position in injector.corruptions(
                    self.store_id, tuple(self._keys())):
                self._corrupt(rotted, position)
            return action(injector)
        finally:
            injector.end_op()

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, overwriting any previous blob."""
        _check_key(key)

        def action(injector):
            final = bytes(data)
            if injector is not None:
                final = injector.on_put(self.store_id, key, final)
            if self._has(key):
                self._history[key] = self._read(key)
            self._write(key, final)
            self.counters["puts"] += 1

        return self._run_op("put", key, action)

    def get(self, key: str) -> bytes:
        """Return the blob under ``key``.

        Raises :class:`~repro.framework.errors.BlobNotFoundError` when
        the key does not exist.
        """
        _check_key(key)

        def action(injector):
            if not self._has(key):
                raise BlobNotFoundError(
                    f"store {self.store_id}: no blob {key!r}", key=key)
            blob = self._read(key)
            if injector is not None:
                blob = injector.on_get(self.store_id, key, blob,
                                       self._history.get(key))
            self.counters["gets"] += 1
            return blob

        return self._run_op("get", key, action)

    def delete(self, key: str) -> None:
        """Remove the blob under ``key`` (missing keys are a no-op)."""
        _check_key(key)

        def action(injector):
            if self._has(key):
                self._delete(key)
                self._history.pop(key, None)
                self.counters["deletes"] += 1

        return self._run_op("delete", key, action)

    def list(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted. Never faulted."""
        return sorted(k for k in self._keys() if k.startswith(prefix))

    def exists(self, key: str) -> bool:
        """Whether ``key`` holds a blob. Never faulted."""
        _check_key(key)
        return self._has(key)

    # -- backend plumbing --------------------------------------------------

    def _write(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def _read(self, key: str) -> bytes:
        raise NotImplementedError

    def _delete(self, key: str) -> None:
        raise NotImplementedError

    def _keys(self):
        raise NotImplementedError

    def _has(self, key: str) -> bool:
        raise NotImplementedError

    def _corrupt(self, key: str, position_seed: int) -> None:
        """Flip one byte of a blob at rest (injected bit rot)."""
        blob = bytearray(self._read(key))
        if not blob:
            return
        blob[position_seed % len(blob)] ^= 0xFF
        self._write(key, bytes(blob))


class MemoryStore(BlobStore):
    """An in-memory blob store: a dict of bytes on the injectable clock.

    The chaos and benchmark substrate — no real I/O, so a campaign's
    entire storage history is an exact, replayable function of the fault
    schedule and the virtual clock.
    """

    def __init__(self, store_id: int = 0, clock: Clock | None = None,
                 op_seconds: float = 0.0):
        super().__init__(store_id, clock, op_seconds)
        self._blobs: dict[str, bytes] = {}

    def _write(self, key: str, data: bytes) -> None:
        self._blobs[key] = data

    def _read(self, key: str) -> bytes:
        return self._blobs[key]

    def _delete(self, key: str) -> None:
        del self._blobs[key]

    def _keys(self):
        return list(self._blobs)

    def _has(self, key: str) -> bool:
        return key in self._blobs


class LocalDirStore(BlobStore):
    """One file per blob under a root directory, written atomically.

    Key separators (``/``) map to subdirectories; every file write goes
    through :func:`~repro.framework.checkpoint.atomic_write_bytes`, so
    even a *real* crash mid-put leaves either the old blob or the new
    one — injected torn writes model the stores that lack this barrier.
    """

    def __init__(self, root: str | os.PathLike, store_id: int = 0,
                 clock: Clock | None = None, op_seconds: float = 0.0):
        super().__init__(store_id, clock, op_seconds)
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, *key.split("/"))

    def _write(self, key: str, data: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, data)

    def _read(self, key: str) -> bytes:
        with open(self._path(key), "rb") as handle:
            return handle.read()

    def _delete(self, key: str) -> None:
        os.unlink(self._path(key))

    def _keys(self):
        found = []
        for dirpath, _, filenames in os.walk(self.root):
            rel = os.path.relpath(dirpath, self.root)
            parts = [] if rel == "." else rel.split(os.sep)
            for name in filenames:
                found.append("/".join(parts + [name]))
        return found

    def _has(self, key: str) -> bool:
        return os.path.isfile(self._path(key))
